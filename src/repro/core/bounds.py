"""Section 4 bounds: imperfect testing and back-to-back testing.

§4.1 — with an imperfect oracle and/or imperfect fixing (and no new faults
introduced), per-demand scores are sandwiched between the perfect-testing
scores and the untested scores, so every failure probability is too:

    perfect-testing value  ≤  imperfect-testing value  ≤  untested value.

§4.2 — back-to-back testing is bracketed by two output-model extremes:
the *optimistic* model (coincident failures never identical) reproduces the
perfect-oracle results exactly, and the *pessimistic* score-level worst
case leaves the system pfd at its untested value ("back-to-back testing
does not improve system reliability at all").

These bounds are verified by simulation: the measured quantity must lie in
the analytic envelope.  :class:`BoundsReport` packages one such check.

The measured quantities route through the Monte-Carlo layer's engine
dispatch (``engine="auto" | "batch" | "scalar"``): imperfect oracles and
fixing run on the vectorized §4.1 kernel of :mod:`repro.mc.batch`, and
back-to-back testing on its demand-ordered block kernel, with the scalar
per-replication loop kept as an explicit escape hatch and reference.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..demand import UsageProfile
from ..errors import ModelError
from ..populations import VersionPopulation
from ..rng import as_generator, spawn_many
from ..testing import (
    BackToBackComparator,
    FixingPolicy,
    Oracle,
    SuiteGenerator,
    apply_testing,
    back_to_back_testing,
)
from ..types import SeedLike
from ..versions import (
    optimistic_outputs,
    pessimistic_outputs,
    shared_fault_outputs,
)
from .regimes import TestingRegime
from .marginal import marginal_system_pfd
from .tested import TestedPopulationView

__all__ = [
    "BoundsReport",
    "imperfect_version_envelope",
    "imperfect_system_envelope",
    "imperfect_testing_bounds",
    "imperfect_system_bounds",
    "BackToBackEnvelope",
    "back_to_back_envelope",
]

_DEFAULT_REPLICATIONS = 400
_DEFAULT_SUITE_SAMPLES = 256


@dataclass(frozen=True)
class BoundsReport:
    """An analytic envelope together with a measured value.

    Attributes
    ----------
    lower:
        Perfect-testing prediction (best achievable under the §3 model).
    upper:
        Untested prediction (testing at its most ineffective).
    measured:
        Monte-Carlo estimate of the imperfect-testing quantity.
    n_replications:
        Replications behind the measurement.
    label:
        What quantity is being bounded.
    """

    lower: float
    upper: float
    measured: float
    n_replications: int
    label: str

    def holds(self, slack: float = 0.0) -> bool:
        """True iff ``lower − slack ≤ measured ≤ upper + slack``.

        ``slack`` absorbs Monte-Carlo noise; scale it to the standard error
        of the measurement.
        """
        return self.lower - slack <= self.measured <= self.upper + slack

    @property
    def width(self) -> float:
        """Envelope width ``upper − lower``."""
        return self.upper - self.lower


def imperfect_version_envelope(
    population: VersionPopulation,
    generator: SuiteGenerator,
    profile: UsageProfile,
    n_suites: int = _DEFAULT_SUITE_SAMPLES,
    rng: SeedLike = None,
) -> tuple:
    """The §4.1 version-level envelope ``(perfect, untested)``.

    The analytic bracket every imperfect-testing measurement must respect:
    lower bound ``E_Q[ζ(X)]`` (perfect testing, via the tested-population
    view's suite sample), upper bound ``E_Q[θ(X)]`` (no testing, exact).
    Shared by :func:`imperfect_testing_bounds` and the adaptive
    measurement path, so the two can never disagree on the envelope.
    """
    population.space.require_same(profile.space)
    view = TestedPopulationView(population, generator)
    lower = view.marginal_pfd(profile, n_suites=n_suites, rng=rng)
    return lower, population.pfd(profile)


def imperfect_system_envelope(
    regime: TestingRegime,
    population_a: VersionPopulation,
    profile: UsageProfile,
    population_b: VersionPopulation | None = None,
    n_suites: int = _DEFAULT_SUITE_SAMPLES,
    rng: SeedLike = None,
) -> tuple:
    """The §4.1 system-level envelope ``(perfect, untested)``.

    Lower bound: the regime's perfect-testing 1-out-of-2 system pfd
    (eqs. (22)–(25)); upper bound: the untested system pfd
    ``E_Q[θ_A θ_B]`` (exact).  Shared by :func:`imperfect_system_bounds`
    and the adaptive measurement path.
    """
    population_b = population_b if population_b is not None else population_a
    population_a.space.require_same(profile.space)
    lower = marginal_system_pfd(
        regime,
        population_a,
        profile,
        population_b,
        n_suites=n_suites,
        rng=rng,
    ).system_pfd
    theta_a = population_a.difficulty()
    theta_b = population_b.difficulty()
    return lower, profile.expectation(theta_a * theta_b)


def imperfect_testing_bounds(
    population: VersionPopulation,
    generator: SuiteGenerator,
    profile: UsageProfile,
    oracle: Oracle,
    fixing: FixingPolicy,
    n_replications: int = _DEFAULT_REPLICATIONS,
    n_suites: int = _DEFAULT_SUITE_SAMPLES,
    rng: SeedLike = None,
    engine: str = "auto",
    chunk_size: int | None = None,
    n_jobs: int = 1,
) -> BoundsReport:
    """Version-level §4.1 bound: mean post-test pfd under imperfect testing.

    The measured value averages, over random (version, suite) pairs, the
    pfd of the version after testing with the given imperfect oracle and
    fixing policy — estimated by :func:`repro.mc.simulate_version_pfd` on
    the requested engine (the vectorized §4.1 kernel under ``"auto"`` /
    ``"batch"``).  The envelope is ``[E_Q[ζ(X)], E_Q[θ(X)]]``.
    """
    from ..mc.experiments import simulate_version_pfd

    if n_replications < 1:
        raise ModelError(f"n_replications must be >= 1, got {n_replications}")
    population.space.require_same(profile.space)
    rng = as_generator(rng)
    bound_stream, sim_stream = spawn_many(rng, 2)

    lower, upper = imperfect_version_envelope(
        population, generator, profile, n_suites=n_suites, rng=bound_stream
    )

    measured = simulate_version_pfd(
        population,
        generator,
        profile,
        n_replications=n_replications,
        rng=sim_stream,
        oracle=oracle,
        fixing=fixing,
        engine=engine,
        chunk_size=chunk_size,
        n_jobs=n_jobs,
    ).mean
    return BoundsReport(
        lower=lower,
        upper=upper,
        measured=measured,
        n_replications=n_replications,
        label="version pfd under imperfect testing",
    )


def imperfect_system_bounds(
    regime: TestingRegime,
    population_a: VersionPopulation,
    profile: UsageProfile,
    oracle: Oracle,
    fixing: FixingPolicy,
    population_b: VersionPopulation | None = None,
    n_replications: int = _DEFAULT_REPLICATIONS,
    n_suites: int = _DEFAULT_SUITE_SAMPLES,
    rng: SeedLike = None,
    engine: str = "auto",
    chunk_size: int | None = None,
    n_jobs: int = 1,
) -> BoundsReport:
    """System-level §4.1 bound: 1-out-of-2 pfd under imperfect testing.

    Envelope: perfect-testing system pfd of the regime (eqs. (22)–(25)) as
    the lower bound, untested system pfd (eq. (6)/(9)) as the upper bound.
    The measurement routes through
    :func:`repro.mc.simulate_marginal_system_pfd` (Rao–Blackwellised) on
    the requested engine.
    """
    from ..mc.experiments import simulate_marginal_system_pfd as simulate_marginal

    if n_replications < 1:
        raise ModelError(f"n_replications must be >= 1, got {n_replications}")
    population_b = population_b if population_b is not None else population_a
    population_a.space.require_same(profile.space)
    rng = as_generator(rng)
    bound_stream, sim_stream = spawn_many(rng, 2)

    lower, upper = imperfect_system_envelope(
        regime,
        population_a,
        profile,
        population_b,
        n_suites=n_suites,
        rng=bound_stream,
    )

    measured = simulate_marginal(
        regime,
        population_a,
        profile,
        population_b,
        n_replications=n_replications,
        rng=sim_stream,
        oracle=oracle,
        fixing=fixing,
        engine=engine,
        chunk_size=chunk_size,
        n_jobs=n_jobs,
    ).mean
    return BoundsReport(
        lower=lower,
        upper=upper,
        measured=measured,
        n_replications=n_replications,
        label=f"system pfd under imperfect testing ({regime.label})",
    )


@dataclass(frozen=True)
class BackToBackEnvelope:
    """Back-to-back testing outcomes under the three output models (§4.2).

    All quantities are means over the same replications (version pair and
    suite draws are shared across modes, so differences are purely due to
    the output model).

    Attributes
    ----------
    untested_system_pfd:
        Mean system pfd before any testing (the §4.2 pessimistic bound on
        what back-to-back testing achieves for the system).
    perfect_system_pfd:
        Mean system pfd after same-suite testing with a perfect oracle.
    optimistic_system_pfd / pessimistic_system_pfd / shared_fault_system_pfd:
        Mean system pfd after back-to-back testing under each output model.
    optimistic_version_pfd / pessimistic_version_pfd / shared_fault_version_pfd:
        Mean per-channel (averaged over the two channels) post-test pfd.
    untested_version_pfd:
        Mean per-channel pfd before testing.
    n_replications:
        Number of (version pair, suite) replications.
    """

    untested_system_pfd: float
    perfect_system_pfd: float
    optimistic_system_pfd: float
    pessimistic_system_pfd: float
    shared_fault_system_pfd: float
    untested_version_pfd: float
    optimistic_version_pfd: float
    pessimistic_version_pfd: float
    shared_fault_version_pfd: float
    n_replications: int

    @property
    def optimistic_matches_perfect(self) -> bool:
        """§4.2: the optimistic model must reproduce perfect-oracle results.

        Under "coincident failures are never identical" every failure
        produces a mismatch, so detection coincides with a perfect oracle;
        the equality is exact, not statistical, because the comparison uses
        shared draws.
        """
        return abs(self.optimistic_system_pfd - self.perfect_system_pfd) <= 1e-12

    @property
    def ordering_holds(self) -> bool:
        """Envelope ordering: perfect ≤ {shared-fault, pessimistic} ≤ untested.

        Detection under the pessimistic model is a subset of detection
        under shared-fault, which is a subset of optimistic detection, so
        post-test system pfds are ordered the opposite way (more detection,
        lower pfd) — all within the untested/perfect envelope.
        """
        tol = 1e-12
        return (
            self.perfect_system_pfd
            <= self.optimistic_system_pfd + tol
            <= self.shared_fault_system_pfd + tol
            <= self.pessimistic_system_pfd + tol
            <= self.untested_system_pfd + tol
        )


def back_to_back_envelope(
    population_a: VersionPopulation,
    generator: SuiteGenerator,
    profile: UsageProfile,
    population_b: VersionPopulation | None = None,
    fixing: FixingPolicy | None = None,
    n_replications: int = _DEFAULT_REPLICATIONS,
    rng: SeedLike = None,
    engine: str = "auto",
    chunk_size: int | None = None,
    n_jobs: int = 1,
) -> BackToBackEnvelope:
    """Simulate §4.2: back-to-back testing under all three output models.

    Every replication draws one version pair and one shared suite, then
    runs back-to-back testing three times (optimistic, pessimistic,
    shared-fault comparators) plus a perfect-oracle same-suite run, all on
    identical inputs, so the envelope comparisons are paired.

    With ``engine="auto"`` (default) or ``"batch"`` the whole envelope runs
    on the vectorized block kernel of
    :func:`repro.mc.back_to_back_envelope_batch`; ``"scalar"`` keeps the
    per-replication reference loop, which is also the automatic fallback
    for custom fixing policies.  ``"compiled"`` runs the native
    counter-RNG kernel of
    :func:`repro.mc.kernels.back_to_back_envelope_compiled` (requires the
    ``[compiled]`` extra; never chosen by ``"auto"``).
    """
    from ..mc.batch import back_to_back_envelope_batch, back_to_back_supported

    if engine not in ("auto", "batch", "compiled", "fastest", "scalar"):
        raise ModelError(
            "engine must be one of ('auto', 'batch', 'compiled', 'fastest', "
            f"'scalar'), got {engine!r}"
        )
    if engine == "fastest":
        from ..mc.experiments import resolve_fastest

        engine = resolve_fastest()
    if engine == "compiled":
        from ..mc.kernels import back_to_back_envelope_compiled, require_compiled

        require_compiled()
        return back_to_back_envelope_compiled(
            population_a,
            generator,
            profile,
            population_b,
            fixing=fixing,
            n_replications=n_replications,
            rng=rng,
            chunk_size=chunk_size,
            n_jobs=n_jobs,
        )
    if engine == "batch" and not back_to_back_supported(fixing):
        raise ModelError(
            "engine='batch' cannot model custom fixing policy "
            f"{type(fixing).__name__}; use engine='auto' or engine='scalar'"
        )
    if engine != "scalar" and back_to_back_supported(fixing):
        return back_to_back_envelope_batch(
            population_a,
            generator,
            profile,
            population_b,
            fixing=fixing,
            n_replications=n_replications,
            rng=rng,
            chunk_size=chunk_size,
            n_jobs=n_jobs,
        )
    if n_replications < 1:
        raise ModelError(f"n_replications must be >= 1, got {n_replications}")
    population_b = population_b if population_b is not None else population_a
    population_a.space.require_same(profile.space)
    rng = as_generator(rng)

    comparators = {
        "optimistic": BackToBackComparator(optimistic_outputs()),
        "pessimistic": BackToBackComparator(pessimistic_outputs()),
        "shared": BackToBackComparator(shared_fault_outputs()),
    }
    sums = {
        "untested_system": 0.0,
        "perfect_system": 0.0,
        "optimistic_system": 0.0,
        "pessimistic_system": 0.0,
        "shared_system": 0.0,
        "untested_version": 0.0,
        "optimistic_version": 0.0,
        "pessimistic_version": 0.0,
        "shared_version": 0.0,
    }

    def system_pfd(first, second) -> float:
        mask = first.failure_mask & second.failure_mask
        return float(profile.probabilities[mask].sum())

    for replication_stream in spawn_many(rng, n_replications):
        streams = spawn_many(replication_stream, 3)
        version_a = population_a.sample(streams[0])
        version_b = population_b.sample(streams[1])
        suite = generator.sample(streams[2])

        sums["untested_system"] += system_pfd(version_a, version_b)
        sums["untested_version"] += 0.5 * (
            version_a.pfd(profile) + version_b.pfd(profile)
        )

        perfect_a = apply_testing(version_a, suite).after
        perfect_b = apply_testing(version_b, suite).after
        sums["perfect_system"] += system_pfd(perfect_a, perfect_b)

        for mode, comparator in comparators.items():
            outcome_a, outcome_b = back_to_back_testing(
                version_a, version_b, suite, comparator, fixing
            )
            sums[f"{mode}_system"] += system_pfd(outcome_a.after, outcome_b.after)
            sums[f"{mode}_version"] += 0.5 * (
                outcome_a.after.pfd(profile) + outcome_b.after.pfd(profile)
            )

    scale = 1.0 / n_replications
    return BackToBackEnvelope(
        untested_system_pfd=sums["untested_system"] * scale,
        perfect_system_pfd=sums["perfect_system"] * scale,
        optimistic_system_pfd=sums["optimistic_system"] * scale,
        pessimistic_system_pfd=sums["pessimistic_system"] * scale,
        shared_fault_system_pfd=sums["shared_system"] * scale,
        untested_version_pfd=sums["untested_version"] * scale,
        optimistic_version_pfd=sums["optimistic_version"] * scale,
        pessimistic_version_pfd=sums["pessimistic_version"] * scale,
        shared_fault_version_pfd=sums["shared_version"] * scale,
        n_replications=n_replications,
    )
