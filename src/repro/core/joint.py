"""Joint failure probability on a fixed demand — eqs. (15)–(21).

:func:`joint_failure_probability` evaluates, for any regime and population
pair, the per-demand probability that *both tested versions fail*, together
with its decomposition into the independence part (product of tested
difficulties) and the dependence excess (variance or covariance over the
suite measure).  The decomposition is the paper's analytical story: the
excess is identically zero for independent-draw regimes and equals
``Var_T(ξ)`` / ``Cov_T(ξ_A, ξ_B)`` for the shared-suite regime.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..populations import VersionPopulation
from ..rng import as_generator, spawn_many
from ..types import SeedLike
from .regimes import (
    ForcedTestingDiversity,
    IndependentSuites,
    SameSuite,
    TestingRegime,
)
from .tested import TestedPopulationView, cross_suite_moments

__all__ = ["JointFailureDecomposition", "joint_failure_probability"]

_DEFAULT_SUITE_SAMPLES = 512


@dataclass(frozen=True)
class JointFailureDecomposition:
    """Per-demand decomposition of the post-test joint failure probability.

    Attributes
    ----------
    joint:
        ``P(both tested versions fail on x)`` per demand.
    independence_part:
        ``ζ₁(x) ζ₂(x)`` — the conditional-independence prediction.
    excess:
        ``joint − independence_part``: zero for independent-suite regimes,
        ``Var_T(ξ(x,T))`` for same-suite/same-population (eq. (20)),
        ``Cov_T(ξ_A(x,T), ξ_B(x,T))`` for same-suite/forced design (eq. (21)).
    zeta_a, zeta_b:
        The two channels' tested difficulty functions.
    regime_label:
        Human-readable regime name.
    exact:
        True when suite-measure integration was exact (enumerable ``M``).
    """

    joint: np.ndarray
    independence_part: np.ndarray
    excess: np.ndarray
    zeta_a: np.ndarray
    zeta_b: np.ndarray
    regime_label: str
    exact: bool

    def joint_on(self, demand: int) -> float:
        """Joint failure probability on one demand."""
        return float(self.joint[demand])

    @property
    def max_excess(self) -> float:
        """Largest per-demand dependence excess."""
        return float(self.excess.max(initial=0.0))

    @property
    def conditional_independence_holds(self) -> bool:
        """True iff the excess vanishes on every demand (within tolerance)."""
        return bool(np.all(np.abs(self.excess) <= 1e-12))


def joint_failure_probability(
    regime: TestingRegime,
    population_a: VersionPopulation,
    population_b: VersionPopulation | None = None,
    n_suites: int = _DEFAULT_SUITE_SAMPLES,
    rng: SeedLike = None,
) -> JointFailureDecomposition:
    """Evaluate eqs. (16)–(21) for the given regime and populations.

    Parameters
    ----------
    regime:
        The testing regime (suite sharing structure).
    population_a:
        Channel A's development measure.
    population_b:
        Channel B's development measure; omit (or pass the same object) for
        the single-methodology setting.
    n_suites:
        Suite draws when the measure is not enumerable.
    rng:
        Randomness for the sampling path.

    Returns
    -------
    JointFailureDecomposition
        Joint probability with its independence/excess decomposition.
    """
    population_b = population_b if population_b is not None else population_a
    rng = as_generator(rng)

    if isinstance(regime, SameSuite):
        if population_b is population_a:
            moments = TestedPopulationView(
                population_a, regime.generator
            ).suite_moments(n_suites=n_suites, rng=rng)
            joint = moments.second_moment
            zeta_a = moments.zeta
            zeta_b = moments.zeta
            exact = moments.exact
        else:
            cross = cross_suite_moments(
                population_a,
                population_b,
                regime.generator,
                n_suites=n_suites,
                rng=rng,
            )
            joint = cross.cross_moment
            zeta_a = cross.zeta_a
            zeta_b = cross.zeta_b
            exact = cross.exact
    elif isinstance(regime, IndependentSuites):
        stream_a, stream_b = spawn_many(rng, 2)
        view_a = TestedPopulationView(population_a, regime.generator)
        moments_a = view_a.suite_moments(n_suites=n_suites, rng=stream_a)
        zeta_a = moments_a.zeta
        if population_b is population_a:
            zeta_b = zeta_a
            exact = moments_a.exact
        else:
            moments_b = TestedPopulationView(
                population_b, regime.generator
            ).suite_moments(n_suites=n_suites, rng=stream_b)
            zeta_b = moments_b.zeta
            exact = moments_a.exact and moments_b.exact
        joint = zeta_a * zeta_b
    elif isinstance(regime, ForcedTestingDiversity):
        stream_a, stream_b = spawn_many(rng, 2)
        moments_a = TestedPopulationView(
            population_a, regime.generator_a
        ).suite_moments(n_suites=n_suites, rng=stream_a)
        moments_b = TestedPopulationView(
            population_b, regime.generator_b
        ).suite_moments(n_suites=n_suites, rng=stream_b)
        zeta_a = moments_a.zeta
        zeta_b = moments_b.zeta
        joint = zeta_a * zeta_b
        exact = moments_a.exact and moments_b.exact
    else:
        raise TypeError(f"unknown testing regime: {type(regime).__name__}")

    independence = zeta_a * zeta_b
    return JointFailureDecomposition(
        joint=joint,
        independence_part=independence,
        excess=joint - independence,
        zeta_a=zeta_a,
        zeta_b=zeta_b,
        regime_label=regime.label,
        exact=exact,
    )
