"""Marginal system probability of failure — eqs. (22)–(25).

The marginal pfd of a 1-out-of-2 system built from two tested versions is
the usage-weighted integral of the per-demand joint failure probability.
The paper decomposes it differently per regime:

* independent suites, same population (eq. (22))::

      P = E_Q[ζ(X)²] = E[Θ_T]² + Var(Θ_T)

* same suite, same population (eq. (23))::

      P = E_Q[ζ(X)² + Var_T(ξ(X,T))]
        = E[Θ_T]² + Var(Θ_T) + E_Q[Var_T(ξ(X,T))]   ≥ eq. (22)

* independent suites, forced design diversity (eq. (24))::

      P = E[Θ_TA] E[Θ_TB] + Cov(Θ_TA, Θ_TB)

* same suite, forced design diversity (eq. (25))::

      P = eq. (24) + E_Q[Cov_T(ξ_A(X,T), ξ_B(X,T))]

where ``Θ_T = ζ(X)`` is the tested difficulty evaluated at a random demand.
:func:`marginal_system_pfd` returns all the pieces so experiments can verify
each decomposition term separately.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..demand import UsageProfile
from ..populations import VersionPopulation
from ..types import SeedLike
from .joint import joint_failure_probability
from .regimes import TestingRegime

__all__ = ["MarginalDecomposition", "marginal_system_pfd"]

_DEFAULT_SUITE_SAMPLES = 512


@dataclass(frozen=True)
class MarginalDecomposition:
    """The marginal system pfd and the paper's decomposition terms.

    Attributes
    ----------
    system_pfd:
        ``P(both tested versions fail on X)`` — the 1-out-of-2 system pfd.
    independence_product:
        ``E[Θ_TA] · E[Θ_TB]`` — the naive "independent channels" predictor
        built from the two marginal pfds.
    difficulty_covariance:
        ``Cov(Θ_TA, Θ_TB)`` over demands — ``Var(Θ_T)`` in the
        same-population case.  This is the *EL/LM-style* penalty that
        exists even with independent suites.
    suite_dependence:
        ``E_Q[Cov_T(ξ_A(X,T), ξ_B(X,T))]`` — the *testing-induced* penalty;
        zero unless the channels share the suite.  Equals
        ``E_Q[Var_T(ξ(X,T))]`` in the same-population case.
    pfd_a, pfd_b:
        Marginal post-test pfds of the channels, ``E[Θ_TA]``, ``E[Θ_TB]``.
    regime_label, exact:
        Provenance, as in the joint decomposition.
    """

    system_pfd: float
    independence_product: float
    difficulty_covariance: float
    suite_dependence: float
    pfd_a: float
    pfd_b: float
    regime_label: str
    exact: bool

    @property
    def conditional_independence_pfd(self) -> float:
        """``E_Q[ζ_A(X) ζ_B(X)]`` — the eq. (22)/(24) prediction.

        What the system pfd *would* be if the channels were tested
        independently (conditional independence preserved).
        """
        return (
            self.independence_product + self.difficulty_covariance
        )

    @property
    def total_excess_over_independence(self) -> float:
        """System pfd minus the naive independent-channels product."""
        return self.system_pfd - self.independence_product

    def reconstructed(self) -> float:
        """Re-assemble the pfd from its parts (consistency check)."""
        return (
            self.independence_product
            + self.difficulty_covariance
            + self.suite_dependence
        )

    def conditional_prob_a_fails_given_b_failed(self) -> float:
        """``P(tested Π_A fails | tested Π_B failed on X)``.

        The post-testing analogue of eqs. (7)/(10): the system pfd divided
        by channel B's marginal pfd.  Exceeds ``pfd_a`` whenever the
        combined dependence (difficulty covariance plus suite-induced
        covariance) is positive — the operational meaning of "the versions
        have been made more alike".

        Raises
        ------
        ProbabilityError
            If channel B never fails (nothing to condition on).
        """
        from ..errors import ProbabilityError

        if self.pfd_b <= 0.0:
            raise ProbabilityError(
                "conditional probability undefined: tested channel B "
                "never fails"
            )
        return self.system_pfd / self.pfd_b

    def dependence_amplification(self) -> float:
        """``P(A fails | B failed) / P(A fails)`` for the tested pair.

        1 means the channels fail independently; the paper's results say
        this exceeds 1 for same-population pairs (eq. (22)) and grows
        further under a shared suite (eq. (23)).  Returns 1 for a
        never-failing system (no dependence to amplify).
        """
        if self.pfd_a <= 0.0 or self.pfd_b <= 0.0:
            return 1.0
        return self.conditional_prob_a_fails_given_b_failed() / self.pfd_a


def marginal_system_pfd(
    regime: TestingRegime,
    population_a: VersionPopulation,
    profile: UsageProfile,
    population_b: VersionPopulation | None = None,
    n_suites: int = _DEFAULT_SUITE_SAMPLES,
    rng: SeedLike = None,
) -> MarginalDecomposition:
    """Evaluate eqs. (22)–(25) for the given regime, populations and profile.

    Parameters
    ----------
    regime:
        Suite-sharing structure of the testing process.
    population_a, population_b:
        Development measures for the two channels (one for both if
        ``population_b`` is omitted).
    profile:
        The usage measure ``Q`` defining the random demand.
    n_suites, rng:
        Sampling controls for non-enumerable suite measures.
    """
    population_a.space.require_same(profile.space)
    decomposition = joint_failure_probability(
        regime,
        population_a,
        population_b,
        n_suites=n_suites,
        rng=rng,
    )
    system_pfd = profile.expectation(decomposition.joint)
    pfd_a = profile.expectation(decomposition.zeta_a)
    pfd_b = profile.expectation(decomposition.zeta_b)
    covariance = profile.covariance(decomposition.zeta_a, decomposition.zeta_b)
    suite_dependence = profile.expectation(decomposition.excess)
    return MarginalDecomposition(
        system_pfd=system_pfd,
        independence_product=pfd_a * pfd_b,
        difficulty_covariance=covariance,
        suite_dependence=suite_dependence,
        pfd_a=pfd_a,
        pfd_b=pfd_b,
        regime_label=decomposition.regime_label,
        exact=decomposition.exact,
    )
