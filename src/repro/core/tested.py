"""Tested-population quantities — the paper's §3 definitions (12)–(14).

For a version population with measure ``S``, a suite measure ``M`` and
perfect detection/fixing:

* ``ς(π, x) = Σ_Ξ υ(π, x, t) M(t)``  — eq. (12): failure probability of a
  *particular* version on ``x`` under a random suite;
* ``ξ(x, t) = Σ_℘ υ(π, x, t) S(π)``  — eq. (13): failure probability of a
  random version on ``x`` after testing with a *particular* suite;
* ``η(π, t) = Σ_F υ(π, x, t) Q(x)``  — per-version post-test unreliability;
* ``ζ(x) = E_{S,M}[υ(Π, x, T)]``      — eq. (14): the tested counterpart of
  the difficulty function, with ``θ(x) ≥ ζ(x)`` demand-wise.

The same machinery yields the suite-moment vectors the joint-failure results
need: ``E_T[ξ(x,T)²]`` (eq. (20)) and ``E_T[ξ_A(x,T) ξ_B(x,T)]`` (eq. (21)).
:class:`TestedPopulationView` evaluates all of these exactly when the suite
measure is enumerable and by suite-sampling otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..demand import UsageProfile
from ..errors import ModelError, NotEnumerableError
from ..populations import VersionPopulation
from ..rng import as_generator
from ..testing import SuiteGenerator, TestSuite, apply_testing
from ..types import SeedLike
from ..versions import Version

__all__ = ["SuiteMoments", "TestedPopulationView", "cross_suite_moments"]

_DEFAULT_SUITE_SAMPLES = 512


@dataclass(frozen=True)
class SuiteMoments:
    """First and second moments of ``ξ(x, T)`` over the suite measure.

    Attributes
    ----------
    zeta:
        ``ζ(x) = E_T[ξ(x,T)]`` per demand — eq. (14).
    second_moment:
        ``E_T[ξ(x,T)²]`` per demand — the same-suite joint probability of
        eq. (20).
    n_suites:
        Number of suites integrated (support size when exact, sample count
        when estimated).
    exact:
        True when computed by enumeration of the suite measure.
    """

    zeta: np.ndarray
    second_moment: np.ndarray
    n_suites: int
    exact: bool

    @property
    def variance(self) -> np.ndarray:
        """``Var_T(ξ(x,T))`` per demand — the dependence induced by a common suite."""
        return np.maximum(self.second_moment - self.zeta**2, 0.0)


@dataclass(frozen=True)
class CrossSuiteMoments:
    """Joint moments of ``(ξ_A(x,T), ξ_B(x,T))`` under one shared suite draw.

    Attributes
    ----------
    zeta_a, zeta_b:
        Per-methodology tested difficulty functions.
    cross_moment:
        ``E_T[ξ_A(x,T) ξ_B(x,T)]`` per demand — eq. (21) joint probability.
    n_suites, exact:
        As in :class:`SuiteMoments`.
    """

    zeta_a: np.ndarray
    zeta_b: np.ndarray
    cross_moment: np.ndarray
    n_suites: int
    exact: bool

    @property
    def covariance(self) -> np.ndarray:
        """``Cov_T(ξ_A(x,T), ξ_B(x,T))`` per demand — may take either sign."""
        return self.cross_moment - self.zeta_a * self.zeta_b


class TestedPopulationView(object):
    """A version population viewed through a testing process.

    Parameters
    ----------
    population:
        The development measure ``S`` (must compute ``ξ(x, t)`` exactly;
        both provided populations do).
    generator:
        The suite measure ``M``.

    Notes
    -----
    Exactness policy: methods integrate over the suite measure by
    enumeration when ``generator.enumerate()`` is available, and otherwise
    fall back to i.i.d. suite sampling with ``n_suites`` draws (an rng is
    then required for reproducibility).  The returned objects record which
    path was taken.
    """

    __test__ = False  # prevent pytest collection (library class)

    def __init__(
        self, population: VersionPopulation, generator: SuiteGenerator
    ) -> None:
        population.space.require_same(generator.space)
        self._population = population
        self._generator = generator

    @property
    def population(self) -> VersionPopulation:
        """The underlying development measure ``S``."""
        return self._population

    @property
    def generator(self) -> SuiteGenerator:
        """The underlying suite measure ``M``."""
        return self._generator

    # ------------------------------------------------------------------
    # the paper's per-object quantities
    # ------------------------------------------------------------------
    def xi(self, suite: TestSuite) -> np.ndarray:
        """``ξ(x, t)`` for a fixed suite — eq. (13), exact."""
        return self._population.tested_difficulty(suite.unique_demands)

    def varsigma(
        self,
        version: Version,
        n_suites: int = _DEFAULT_SUITE_SAMPLES,
        rng: SeedLike = None,
    ) -> np.ndarray:
        """``ς(π, x)`` for a fixed version — eq. (12), per demand.

        Exact when the suite measure is enumerable, else a suite-sampling
        estimate with ``n_suites`` draws.
        """
        try:
            pairs = list(self._generator.enumerate())
        except NotEnumerableError:
            pairs = None
        accumulator = np.zeros(self._population.space.size, dtype=np.float64)
        if pairs is not None:
            for suite, probability in pairs:
                outcome = apply_testing(version, suite)
                accumulator += probability * outcome.after.failure_mask
            return accumulator
        if n_suites < 1:
            raise ModelError(f"n_suites must be >= 1, got {n_suites}")
        generator = as_generator(rng)
        for suite in self._generator.sample_many(n_suites, generator):
            outcome = apply_testing(version, suite)
            accumulator += outcome.after.failure_mask
        return accumulator / n_suites

    def eta(self, version: Version, suite: TestSuite, profile: UsageProfile) -> float:
        """``η(π, t)`` — post-test unreliability of one version, one suite."""
        outcome = apply_testing(version, suite)
        return outcome.after.pfd(profile)

    def suite_moments(
        self,
        n_suites: int = _DEFAULT_SUITE_SAMPLES,
        rng: SeedLike = None,
    ) -> SuiteMoments:
        """``ζ(x)`` and ``E_T[ξ(x,T)²]`` in one pass over the suite measure."""
        try:
            pairs = list(self._generator.enumerate())
        except NotEnumerableError:
            pairs = None
        size = self._population.space.size
        first = np.zeros(size, dtype=np.float64)
        second = np.zeros(size, dtype=np.float64)
        if pairs is not None:
            for suite, probability in pairs:
                xi = self.xi(suite)
                first += probability * xi
                second += probability * xi**2
            return SuiteMoments(first, second, len(pairs), exact=True)
        if n_suites < 1:
            raise ModelError(f"n_suites must be >= 1, got {n_suites}")
        generator = as_generator(rng)
        for suite in self._generator.sample_many(n_suites, generator):
            xi = self.xi(suite)
            first += xi
            second += xi**2
        return SuiteMoments(
            first / n_suites, second / n_suites, n_suites, exact=False
        )

    def zeta(
        self,
        n_suites: int = _DEFAULT_SUITE_SAMPLES,
        rng: SeedLike = None,
    ) -> np.ndarray:
        """``ζ(x)`` — eq. (14), the tested difficulty function."""
        return self.suite_moments(n_suites=n_suites, rng=rng).zeta

    def efficiency(
        self,
        n_suites: int = _DEFAULT_SUITE_SAMPLES,
        rng: SeedLike = None,
    ) -> np.ndarray:
        """``θ(x) − ζ(x)`` per demand — the paper's testing-efficiency gap.

        Non-negative everywhere (testing cannot make a random version worse
        under perfect detection/fixing); identically zero for a useless
        suite measure.
        """
        theta = self._population.difficulty()
        zeta = self.zeta(n_suites=n_suites, rng=rng)
        return theta - zeta

    def marginal_pfd(
        self,
        profile: UsageProfile,
        n_suites: int = _DEFAULT_SUITE_SAMPLES,
        rng: SeedLike = None,
    ) -> float:
        """``E_Q[ζ(X)]`` — mean post-test unreliability of a random version."""
        return profile.expectation(self.zeta(n_suites=n_suites, rng=rng))


def cross_suite_moments(
    population_a: VersionPopulation,
    population_b: VersionPopulation,
    generator: SuiteGenerator,
    n_suites: int = _DEFAULT_SUITE_SAMPLES,
    rng: SeedLike = None,
) -> CrossSuiteMoments:
    """Moments of ``(ξ_A(x,T), ξ_B(x,T))`` under one shared suite draw.

    The eq. (21) ingredients for the same-suite, forced-design-diversity
    regime: both methodologies' tested difficulties are evaluated on the
    *same* suite realisation, which is exactly what couples the channels.
    """
    population_a.space.require_same(generator.space)
    population_b.space.require_same(generator.space)
    try:
        pairs = list(generator.enumerate())
    except NotEnumerableError:
        pairs = None
    size = generator.space.size
    first_a = np.zeros(size, dtype=np.float64)
    first_b = np.zeros(size, dtype=np.float64)
    cross = np.zeros(size, dtype=np.float64)
    if pairs is not None:
        for suite, probability in pairs:
            xi_a = population_a.tested_difficulty(suite.unique_demands)
            xi_b = population_b.tested_difficulty(suite.unique_demands)
            first_a += probability * xi_a
            first_b += probability * xi_b
            cross += probability * xi_a * xi_b
        return CrossSuiteMoments(first_a, first_b, cross, len(pairs), exact=True)
    if n_suites < 1:
        raise ModelError(f"n_suites must be >= 1, got {n_suites}")
    rng = as_generator(rng)
    for suite in generator.sample_many(n_suites, rng):
        xi_a = population_a.tested_difficulty(suite.unique_demands)
        xi_b = population_b.tested_difficulty(suite.unique_demands)
        first_a += xi_a
        first_b += xi_b
        cross += xi_a * xi_b
    return CrossSuiteMoments(
        first_a / n_suites,
        first_b / n_suites,
        cross / n_suites,
        n_suites,
        exact=False,
    )
