"""The Eckhardt–Lee model (paper §1, eqs. (1)–(7)).

Given the difficulty function ``θ(x)`` of a version population and the usage
profile ``Q``, the EL model describes the joint failure behaviour of two
versions selected independently from that population:

* on a fixed demand ``x`` the versions fail independently — eq. (4):
  ``P(both fail on x) = θ(x)²``;
* on a random demand ``X`` they do not — eq. (6):
  ``P(both fail on X) = E[Θ²] = E[Θ]² + Var(Θ)``;
* the excess over independence is exactly ``Var(Θ)``, zero only when the
  difficulty function is constant (eq. (7) equality condition).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..demand import UsageProfile
from ..errors import IncompatibleSpaceError, ProbabilityError
from ..populations import VersionPopulation

__all__ = ["ELModel"]

_CONST_TOLERANCE = 1e-12


@dataclass(frozen=True)
class ELModel:
    """The Eckhardt–Lee diversity model over a concrete difficulty function.

    Parameters
    ----------
    difficulty:
        Per-demand failure probability ``θ(x)`` of a randomly developed
        version (eq. (1)); values in ``[0, 1]``.
    profile:
        Usage measure ``Q`` over the same demand space.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.demand import DemandSpace, uniform_profile
    >>> space = DemandSpace(2)
    >>> model = ELModel(np.array([0.1, 0.3]), uniform_profile(space))
    >>> round(model.prob_fail(), 4)
    0.2
    >>> round(model.prob_both_fail(), 4)  # E[Θ²] = (0.01 + 0.09) / 2
    0.05
    >>> model.prob_both_fail() > model.prob_fail() ** 2
    True
    """

    difficulty: np.ndarray
    profile: UsageProfile
    _theta: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        theta = np.asarray(self.difficulty, dtype=np.float64)
        if theta.shape != (self.profile.space.size,):
            raise IncompatibleSpaceError(
                f"difficulty length {theta.shape} does not match demand "
                f"space size {self.profile.space.size}"
            )
        if np.any(theta < 0.0) or np.any(theta > 1.0) or np.any(~np.isfinite(theta)):
            raise ProbabilityError("difficulty values must lie in [0, 1]")
        object.__setattr__(self, "difficulty", theta)
        object.__setattr__(self, "_theta", theta)

    @classmethod
    def from_population(
        cls, population: VersionPopulation, profile: UsageProfile
    ) -> "ELModel":
        """Build the model from an exactly-computable population."""
        population.space.require_same(profile.space)
        return cls(population.difficulty(), profile)

    @classmethod
    def from_difficulty(
        cls, difficulty: Sequence[float] | np.ndarray, profile: UsageProfile
    ) -> "ELModel":
        """Build the model from a raw difficulty vector."""
        return cls(np.asarray(difficulty, dtype=np.float64), profile)

    # ------------------------------------------------------------------
    # scalar quantities of the paper
    # ------------------------------------------------------------------
    def prob_fail(self) -> float:
        """``P(Π fails on X) = E[Θ]`` — eq. (2)."""
        return self.profile.expectation(self._theta)

    def prob_both_fail_on(self, demand: int) -> float:
        """``P(both fail on x) = θ(x)²`` — eq. (4), fixed demand."""
        index = self.profile.space.validate_demand(demand)
        return float(self._theta[index] ** 2)

    def prob_both_fail(self) -> float:
        """``P(both fail on X) = E[Θ²]`` — eq. (6), random demand."""
        return self.profile.expectation(self._theta**2)

    def variance(self) -> float:
        """``Var(Θ)`` — the excess over independence in eq. (6)."""
        return self.profile.variance(self._theta)

    def independence_prediction(self) -> float:
        """``E[Θ]²`` — what naive independence would predict."""
        return self.prob_fail() ** 2

    def conditional_prob_fail_given_failed(self) -> float:
        """``P(Π₂ fails | Π₁ failed) = Var(Θ)/E[Θ] + E[Θ]`` — eq. (7).

        Raises
        ------
        ProbabilityError
            If ``E[Θ] = 0`` (a certainly-correct population has no failures
            to condition on).
        """
        mean = self.prob_fail()
        if mean <= 0.0:
            raise ProbabilityError(
                "conditional probability undefined: P(fail) is zero"
            )
        return self.variance() / mean + mean

    def independence_excess_ratio(self) -> float:
        """``Var(Θ) / E[Θ]²`` — relative penalty over independence.

        The paper's headline: this is strictly positive unless ``θ`` is
        constant over the support of ``Q``, so assuming independent version
        failures is optimistic by exactly this factor.
        """
        mean = self.prob_fail()
        if mean <= 0.0:
            return 0.0
        return self.variance() / mean**2

    def prob_all_fail(self, n_versions: int) -> float:
        """``P(all n fail on X) = E[Θⁿ]`` — the 1-out-of-n generalisation.

        The EL argument extends verbatim: conditionally on ``X = x`` the
        ``n`` versions fail independently with probability ``θ(x)ⁿ``.
        """
        if n_versions < 1:
            raise ProbabilityError(f"n_versions must be >= 1, got {n_versions}")
        return self.profile.expectation(self._theta**n_versions)

    def is_constant_difficulty(self, tolerance: float = _CONST_TOLERANCE) -> bool:
        """True iff ``θ(x)`` is constant over the support of ``Q``.

        The only case in which eq. (7) holds with equality — "it seems
        likely that this will never be the case" (paper §1) — but the
        library supports constructing it (ablation A4).
        """
        support = self.profile.support
        if support.size == 0:
            return True
        values = self._theta[support]
        return bool(values.max() - values.min() <= tolerance)
