"""Fault-tolerant system wrappers built from diverse versions.

The paper studies 1-out-of-2 software: the system fails on a demand only if
*both* versions fail on it (a demand is handled correctly if at least one
channel handles it correctly — the standard model for a two-channel
protection system with a perfect adjudicator).  :class:`OneOutOfTwoSystem`
wraps a concrete version pair; :class:`OneOutOfNSystem` generalises to
``n`` channels.  These operate on *realised* versions; population-level
(system-on-average) quantities live in :mod:`repro.core.marginal`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from ..demand import UsageProfile
from ..errors import IncompatibleSpaceError, ModelError
from ..versions import Version

__all__ = ["OneOutOfTwoSystem", "OneOutOfNSystem"]


@dataclass(frozen=True)
class OneOutOfTwoSystem:
    """A two-channel 1-out-of-2 system over a concrete version pair."""

    first: Version
    second: Version

    def __post_init__(self) -> None:
        if self.first.universe is not self.second.universe:
            raise IncompatibleSpaceError(
                "both channels must share one fault universe"
            )

    @property
    def failure_mask(self) -> np.ndarray:
        """Boolean demand mask: True where the *system* fails (both channels fail)."""
        return self.first.failure_mask & self.second.failure_mask

    @property
    def common_failure_demands(self) -> np.ndarray:
        """Demand indices of coincident failures."""
        return np.flatnonzero(self.failure_mask).astype(np.int64)

    def fails_on(self, demand: int) -> bool:
        """True iff both channels fail on ``demand``."""
        return bool(self.first.fails_on(demand) and self.second.fails_on(demand))

    def pfd(self, profile: UsageProfile) -> float:
        """System probability of failure on a random demand."""
        self.first.universe.space.require_same(profile.space)
        return float(profile.probabilities[self.failure_mask].sum())

    def channel_pfds(self, profile: UsageProfile) -> Tuple[float, float]:
        """Per-channel pfds ``(pfd_A, pfd_B)``."""
        return self.first.pfd(profile), self.second.pfd(profile)

    def diversity_gain(self, profile: UsageProfile) -> float:
        """Best channel pfd minus system pfd — what diversity buys.

        Zero when the channels' failure sets coincide (the paper's
        back-to-back worst-case limit, where "the system behave[s] exactly
        as each version does").
        """
        pfd_a, pfd_b = self.channel_pfds(profile)
        return min(pfd_a, pfd_b) - self.pfd(profile)

    def with_channels(self, first: Version, second: Version) -> "OneOutOfTwoSystem":
        """A new system with replaced channels (e.g. after testing)."""
        return OneOutOfTwoSystem(first, second)


@dataclass(frozen=True)
class OneOutOfNSystem:
    """An ``n``-channel 1-out-of-n system: fails iff every channel fails.

    The EL analysis extends to ``n`` channels with ``E[Θⁿ]`` (see
    :meth:`repro.core.el.ELModel.prob_all_fail`); this wrapper provides the
    realised-version counterpart.
    """

    channels: tuple

    def __post_init__(self) -> None:
        channels = tuple(self.channels)
        if len(channels) < 1:
            raise ModelError("a system needs at least one channel")
        universe = channels[0].universe
        for index, channel in enumerate(channels):
            if not isinstance(channel, Version):
                raise ModelError(f"channel {index} is not a Version")
            if channel.universe is not universe:
                raise IncompatibleSpaceError(
                    "all channels must share one fault universe"
                )
        object.__setattr__(self, "channels", channels)

    @classmethod
    def of(cls, channels: Sequence[Version]) -> "OneOutOfNSystem":
        """Build from any sequence of versions."""
        return cls(tuple(channels))

    @property
    def n_channels(self) -> int:
        """Number of diverse channels."""
        return len(self.channels)

    @property
    def failure_mask(self) -> np.ndarray:
        """True where every channel fails."""
        mask = self.channels[0].failure_mask.copy()
        for channel in self.channels[1:]:
            mask &= channel.failure_mask
        return mask

    def fails_on(self, demand: int) -> bool:
        """True iff all channels fail on ``demand``."""
        return all(channel.fails_on(demand) for channel in self.channels)

    def pfd(self, profile: UsageProfile) -> float:
        """System probability of failure on a random demand."""
        self.channels[0].universe.space.require_same(profile.space)
        return float(profile.probabilities[self.failure_mask].sum())
