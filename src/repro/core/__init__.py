"""Core models: the paper's probabilistic framework.

* :mod:`repro.core.score` — the score functions ``υ(π,x)`` and ``υ(π,x,t)``.
* :mod:`repro.core.el` — the Eckhardt–Lee model (eqs. (1)–(7)).
* :mod:`repro.core.lm` — the Littlewood–Miller model (eqs. (8)–(10)).
* :mod:`repro.core.tested` — tested-population quantities ``ς``, ``ξ``,
  ``η``, ``ζ`` (eqs. (12)–(14)) with exact and sampled evaluation.
* :mod:`repro.core.regimes` — testing regimes as first-class objects.
* :mod:`repro.core.joint` — joint failure probability on a fixed demand for
  every regime (eqs. (15)–(21)).
* :mod:`repro.core.marginal` — marginal system pfd (eqs. (22)–(25)).
* :mod:`repro.core.bounds` — §4 bounds (imperfect oracle/fixing,
  back-to-back envelope).
* :mod:`repro.core.systems` — 1-out-of-2 / 1-out-of-N system wrappers.
"""

from .score import score_after_perfect_testing, score_before_testing
from .el import ELModel
from .lm import LMModel
from .tested import SuiteMoments, TestedPopulationView, cross_suite_moments
from .regimes import (
    CoverageAwareRegime,
    ForcedTestingDiversity,
    IndependentSuites,
    SameSuite,
    TestingRegime,
)
from .joint import JointFailureDecomposition, joint_failure_probability
from .marginal import MarginalDecomposition, marginal_system_pfd
from .bounds import (
    BackToBackEnvelope,
    BoundsReport,
    back_to_back_envelope,
    imperfect_system_bounds,
    imperfect_system_envelope,
    imperfect_testing_bounds,
    imperfect_version_envelope,
)
from .systems import OneOutOfNSystem, OneOutOfTwoSystem

__all__ = [
    "score_before_testing",
    "score_after_perfect_testing",
    "ELModel",
    "LMModel",
    "TestedPopulationView",
    "SuiteMoments",
    "cross_suite_moments",
    "TestingRegime",
    "IndependentSuites",
    "SameSuite",
    "ForcedTestingDiversity",
    "CoverageAwareRegime",
    "JointFailureDecomposition",
    "joint_failure_probability",
    "MarginalDecomposition",
    "marginal_system_pfd",
    "BoundsReport",
    "BackToBackEnvelope",
    "imperfect_testing_bounds",
    "imperfect_system_bounds",
    "imperfect_version_envelope",
    "imperfect_system_envelope",
    "back_to_back_envelope",
    "OneOutOfTwoSystem",
    "OneOutOfNSystem",
]
