"""The Littlewood–Miller model (paper §1, eqs. (8)–(10)).

Forced design diversity: versions are drawn independently from *different*
methodologies ``A`` and ``B`` with difficulty functions ``θ_A``, ``θ_B``.
On a random demand,

    P(both fail) = E[Θ_A Θ_B] = E[Θ_A] E[Θ_B] + Cov(Θ_A, Θ_B)     (eq. (9))

so — unlike the single-methodology EL case where the excess term is a
variance and necessarily non-negative — the covariance can be *negative*,
and "it is possible in this model to do even better than the (unattainable)
goal of independent performance of versions".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..demand import UsageProfile
from ..errors import IncompatibleSpaceError, ProbabilityError
from ..populations import MethodologyPair

__all__ = ["LMModel"]


@dataclass(frozen=True)
class LMModel:
    """The Littlewood–Miller forced-diversity model.

    Parameters
    ----------
    difficulty_a, difficulty_b:
        Per-demand difficulty functions ``θ_A(x)``, ``θ_B(x)``.
    profile:
        Usage measure ``Q``.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.demand import DemandSpace, uniform_profile
    >>> space = DemandSpace(2)
    >>> profile = uniform_profile(space)
    >>> # complementary difficulty: A hard where B easy and vice versa
    >>> model = LMModel(np.array([0.4, 0.0]), np.array([0.0, 0.4]), profile)
    >>> model.covariance() < 0
    True
    >>> model.prob_both_fail() < model.independence_prediction()
    True
    """

    difficulty_a: np.ndarray
    difficulty_b: np.ndarray
    profile: UsageProfile
    _theta_a: np.ndarray = field(init=False, repr=False, compare=False)
    _theta_b: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        size = self.profile.space.size
        arrays = []
        for label, values in (("A", self.difficulty_a), ("B", self.difficulty_b)):
            theta = np.asarray(values, dtype=np.float64)
            if theta.shape != (size,):
                raise IncompatibleSpaceError(
                    f"difficulty_{label.lower()} length {theta.shape} does "
                    f"not match demand space size {size}"
                )
            if np.any(theta < 0) or np.any(theta > 1) or np.any(~np.isfinite(theta)):
                raise ProbabilityError(
                    f"difficulty_{label.lower()} values must lie in [0, 1]"
                )
            arrays.append(theta)
        object.__setattr__(self, "difficulty_a", arrays[0])
        object.__setattr__(self, "difficulty_b", arrays[1])
        object.__setattr__(self, "_theta_a", arrays[0])
        object.__setattr__(self, "_theta_b", arrays[1])

    @classmethod
    def from_pair(cls, pair: MethodologyPair, profile: UsageProfile) -> "LMModel":
        """Build the model from a forced-diversity methodology pair."""
        pair.universe.space.require_same(profile.space)
        theta_a, theta_b = pair.difficulties()
        return cls(theta_a, theta_b, profile)

    @classmethod
    def from_difficulties(
        cls,
        difficulty_a: Sequence[float] | np.ndarray,
        difficulty_b: Sequence[float] | np.ndarray,
        profile: UsageProfile,
    ) -> "LMModel":
        """Build the model from raw difficulty vectors."""
        return cls(
            np.asarray(difficulty_a, dtype=np.float64),
            np.asarray(difficulty_b, dtype=np.float64),
            profile,
        )

    # ------------------------------------------------------------------
    # scalar quantities of the paper
    # ------------------------------------------------------------------
    def prob_fail_a(self) -> float:
        """``P(Π_A fails on X) = E[Θ_A]``."""
        return self.profile.expectation(self._theta_a)

    def prob_fail_b(self) -> float:
        """``P(Π_B fails on X) = E[Θ_B]``."""
        return self.profile.expectation(self._theta_b)

    def prob_both_fail_on(self, demand: int) -> float:
        """``P(both fail on x) = θ_A(x) θ_B(x)`` — fixed-demand independence."""
        index = self.profile.space.validate_demand(demand)
        return float(self._theta_a[index] * self._theta_b[index])

    def prob_both_fail(self) -> float:
        """``P(both fail on X) = E[Θ_A Θ_B]`` — eq. (9)."""
        return self.profile.expectation(self._theta_a * self._theta_b)

    def covariance(self) -> float:
        """``Cov(Θ_A, Θ_B)`` — the forced-diversity key term."""
        return self.profile.covariance(self._theta_a, self._theta_b)

    def independence_prediction(self) -> float:
        """``E[Θ_A] E[Θ_B]`` — the naive-independence system pfd."""
        return self.prob_fail_a() * self.prob_fail_b()

    def conditional_prob_a_fails_given_b_failed(self) -> float:
        """``P(Π_A fails | Π_B failed)`` — eq. (10).

        Exceeds ``P(Π_A fails)`` iff the covariance is positive.
        """
        mean_b = self.prob_fail_b()
        if mean_b <= 0.0:
            raise ProbabilityError(
                "conditional probability undefined: P(B fails) is zero"
            )
        return self.covariance() / mean_b + self.prob_fail_a()

    def beats_independence(self) -> bool:
        """True iff the pair is *more* reliable than independence predicts.

        Equivalent to a negative difficulty covariance — the LM headline
        result that forced diversity can beat the independence benchmark.
        """
        return self.covariance() < 0.0

    def worst_case_is_el(self) -> bool:
        """Check the paper's remark that EL is the worst case under exchangeable
        methodologies.

        For the homogeneous pair (``θ_A = θ_B``) the covariance equals
        ``Var(Θ)`` and eq. (9) collapses to eq. (6); this predicate returns
        True when the model's joint probability is no worse than that EL
        bound computed from the *average* difficulty, by Cauchy–Schwarz:
        ``E[Θ_A Θ_B] ≤ sqrt(E[Θ_A²] E[Θ_B²])``.
        """
        el_bound = np.sqrt(
            self.profile.expectation(self._theta_a**2)
            * self.profile.expectation(self._theta_b**2)
        )
        return bool(self.prob_both_fail() <= el_bound + 1e-12)
