"""Testing regimes as first-class objects.

The paper's §3 case analysis enumerates how the two channels' test suites
are related:

* :class:`IndependentSuites` — each channel tested on its own draw from the
  same measure ``M`` (§3.1);
* :class:`ForcedTestingDiversity` — each channel tested on a draw from its
  *own* measure ``M_TA`` / ``M_TB`` (§3.2);
* :class:`SameSuite` — both channels tested on one shared draw (§3.3), the
  acceptance-testing / back-to-back situation that induces dependence.

A regime knows how to (a) draw the pair of suites for one replication of the
generative process — used by the Monte-Carlo layer — and (b) compute the
per-demand joint failure probability of eqs. (16)–(21) from population
moments — used by the analytic layer.  Keeping both on one object guarantees
the two layers describe the same experiment.
"""

from __future__ import annotations

import abc
from typing import Tuple

import numpy as np

from ..errors import ModelError
from ..populations import VersionPopulation
from ..rng import as_generator, spawn_many
from ..testing import SuiteGenerator, TestSuite
from ..types import SeedLike
from .tested import TestedPopulationView, cross_suite_moments

__all__ = [
    "TestingRegime",
    "IndependentSuites",
    "SameSuite",
    "ForcedTestingDiversity",
    "CoverageAwareRegime",
]

_DEFAULT_SUITE_SAMPLES = 512


class TestingRegime(abc.ABC):
    """How the two channels' test suites are generated and shared."""

    __test__ = False  # prevent pytest collection (library class)

    @abc.abstractmethod
    def draw_suites(self, rng: SeedLike = None) -> Tuple[TestSuite, TestSuite]:
        """Draw the suite pair ``(t₁, t₂)`` for one replication."""

    def draw_suite_masks(
        self, count: int, rng: SeedLike = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Draw ``count`` suite pairs as two ``[count, space]`` mask blocks.

        Row ``r`` of the two returned boolean matrices is the demand mask of
        the pair ``(t₁, t₂)`` for replication ``r``, preserving the regime's
        coupling (a shared-suite regime returns the *same* block twice).
        This is the regime's contribution to the batch Monte-Carlo engine;
        the default loops :meth:`draw_suites`, concrete regimes override
        with block draws through their generators.
        """
        if count < 0:
            raise ModelError(f"count must be non-negative, got {count}")
        generator = as_generator(rng)
        if count == 0:
            # size the empty blocks from a throwaway draw, matching the
            # (0, space) shape the concrete overrides return
            suite_a, _ = self.draw_suites(generator)
            empty = np.zeros((0, suite_a.space.size), dtype=bool)
            return empty, empty
        first = None
        second = None
        for row, stream in enumerate(spawn_many(generator, count)):
            suite_a, suite_b = self.draw_suites(stream)
            if first is None:
                first = np.zeros((count, suite_a.space.size), dtype=bool)
                second = np.zeros((count, suite_a.space.size), dtype=bool)
            first[row] = suite_a.mask()
            second[row] = suite_b.mask()
        return first, second

    def draw_suite_counts(
        self, count: int, rng: SeedLike = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Draw ``count`` suite pairs as two ``[count, space]`` count blocks.

        The occurrence-count analogue of :meth:`draw_suite_masks`: entry
        ``(r, x)`` is how often suite ``r`` executes demand ``x``, with the
        regime's coupling preserved (a shared-suite regime returns the same
        block twice).  This is the suite representation of the
        imperfect-oracle/imperfect-fixing batch kernels, where repeated
        executions are repeated detection opportunities.  The default loops
        :meth:`draw_suites`; concrete regimes override with block draws.
        """
        if count < 0:
            raise ModelError(f"count must be non-negative, got {count}")
        generator = as_generator(rng)
        if count == 0:
            suite_a, _ = self.draw_suites(generator)
            empty = np.zeros((0, suite_a.space.size), dtype=np.int64)
            return empty, empty
        first = None
        second = None
        for row, stream in enumerate(spawn_many(generator, count)):
            suite_a, suite_b = self.draw_suites(stream)
            if first is None:
                first = np.zeros((count, suite_a.space.size), dtype=np.int64)
                second = np.zeros((count, suite_a.space.size), dtype=np.int64)
            np.add.at(first[row], suite_a.demands, 1)
            np.add.at(second[row], suite_b.demands, 1)
        return first, second

    @abc.abstractmethod
    def joint_per_demand(
        self,
        population_a: VersionPopulation,
        population_b: VersionPopulation,
        n_suites: int = _DEFAULT_SUITE_SAMPLES,
        rng: SeedLike = None,
    ) -> np.ndarray:
        """Per-demand ``P(both tested versions fail on x)`` under this regime.

        Implements the matching equation of the paper — (16)–(19) for the
        independent-draw regimes, (20)/(21) for the shared-suite regime.
        Pass the same population twice for the single-methodology setting.
        """

    @property
    @abc.abstractmethod
    def shares_suite(self) -> bool:
        """True iff both channels receive the same suite realisation."""

    @property
    @abc.abstractmethod
    def label(self) -> str:
        """Short human-readable regime name for reports."""


class CoverageAwareRegime(TestingRegime):
    """A regime whose testing is limited by structural coverage.

    Decorates any base regime: suite drawing and the analytic
    ``joint_per_demand`` are delegated unchanged, but the regime carries a
    matched coverage (oracle, fixing) pair — e.g. from
    :func:`repro.coverage.coverage_testing_pair` — as the *default testing
    policies* of the experiment.  The Monte-Carlo entry points pick the
    pair up whenever the caller supplies no explicit oracle/fixing, so
    "test under regime R with coverage C" is a single object.

    The pair is only validated structurally (both members must expose the
    same ``fault_detection_probs`` tuple, the batch planner's recognition
    contract) — this module never imports :mod:`repro.coverage`.
    """

    def __init__(self, base: TestingRegime, oracle, fixing) -> None:
        if not isinstance(base, TestingRegime):
            raise ModelError(
                f"base must be a TestingRegime, got {type(base).__name__}"
            )
        oracle_probs = getattr(oracle, "fault_detection_probs", None)
        fixing_probs = getattr(fixing, "fault_detection_probs", None)
        if oracle_probs is None or fixing_probs is None or (
            tuple(float(p) for p in oracle_probs)
            != tuple(float(p) for p in fixing_probs)
        ):
            raise ModelError(
                "CoverageAwareRegime needs a matched coverage pair: oracle "
                "and fixing exposing the same fault_detection_probs (see "
                "repro.coverage.coverage_testing_pair)"
            )
        self._base = base
        self._oracle = oracle
        self._fixing = fixing

    @property
    def base(self) -> TestingRegime:
        """The decorated suite-drawing regime."""
        return self._base

    @property
    def testing_policies(self):
        """The default ``(oracle, fixing)`` pair for this regime."""
        return self._oracle, self._fixing

    @property
    def shares_suite(self) -> bool:
        return self._base.shares_suite

    @property
    def label(self) -> str:
        return f"coverage-aware {self._base.label}"

    def draw_suites(self, rng: SeedLike = None) -> Tuple[TestSuite, TestSuite]:
        return self._base.draw_suites(rng)

    def draw_suite_masks(
        self, count: int, rng: SeedLike = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        return self._base.draw_suite_masks(count, rng)

    def draw_suite_counts(
        self, count: int, rng: SeedLike = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        return self._base.draw_suite_counts(count, rng)

    def joint_per_demand(
        self,
        population_a: VersionPopulation,
        population_b: VersionPopulation,
        n_suites: int = _DEFAULT_SUITE_SAMPLES,
        rng: SeedLike = None,
    ) -> np.ndarray:
        return self._base.joint_per_demand(
            population_a, population_b, n_suites=n_suites, rng=rng
        )


class IndependentSuites(TestingRegime):
    """Both channels tested on independent draws from one measure ``M``.

    Paper §3.1: conditional independence of version failures survives
    testing — eq. (16) (same population) / eq. (17) (forced design
    diversity).
    """

    def __init__(self, generator: SuiteGenerator) -> None:
        self._generator = generator

    @property
    def generator(self) -> SuiteGenerator:
        """The shared suite measure ``M``."""
        return self._generator

    @property
    def shares_suite(self) -> bool:
        return False

    @property
    def label(self) -> str:
        return "independent suites"

    def draw_suites(self, rng: SeedLike = None) -> Tuple[TestSuite, TestSuite]:
        generator = as_generator(rng)
        stream_a, stream_b = spawn_many(generator, 2)
        return self._generator.sample(stream_a), self._generator.sample(stream_b)

    def draw_suite_masks(
        self, count: int, rng: SeedLike = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        generator = as_generator(rng)
        stream_a, stream_b = spawn_many(generator, 2)
        return (
            self._generator.sample_demand_masks(count, stream_a),
            self._generator.sample_demand_masks(count, stream_b),
        )

    def draw_suite_counts(
        self, count: int, rng: SeedLike = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        generator = as_generator(rng)
        stream_a, stream_b = spawn_many(generator, 2)
        return (
            self._generator.sample_demand_counts(count, stream_a),
            self._generator.sample_demand_counts(count, stream_b),
        )

    def joint_per_demand(
        self,
        population_a: VersionPopulation,
        population_b: VersionPopulation,
        n_suites: int = _DEFAULT_SUITE_SAMPLES,
        rng: SeedLike = None,
    ) -> np.ndarray:
        generator = as_generator(rng)
        stream_a, stream_b = spawn_many(generator, 2)
        zeta_a = TestedPopulationView(population_a, self._generator).zeta(
            n_suites=n_suites, rng=stream_a
        )
        if population_b is population_a:
            zeta_b = zeta_a
        else:
            zeta_b = TestedPopulationView(population_b, self._generator).zeta(
                n_suites=n_suites, rng=stream_b
            )
        return zeta_a * zeta_b


class SameSuite(TestingRegime):
    """Both channels tested on one shared suite draw.

    Paper §3.3: "the use of a common test suite has induced dependence in
    their failure behaviour" — eq. (20) (same population, excess
    ``Var_T(ξ)``) / eq. (21) (forced design diversity, excess
    ``Cov_T(ξ_A, ξ_B)``).
    """

    def __init__(self, generator: SuiteGenerator) -> None:
        self._generator = generator

    @property
    def generator(self) -> SuiteGenerator:
        """The suite measure ``M`` both channels share."""
        return self._generator

    @property
    def shares_suite(self) -> bool:
        return True

    @property
    def label(self) -> str:
        return "same suite"

    def draw_suites(self, rng: SeedLike = None) -> Tuple[TestSuite, TestSuite]:
        suite = self._generator.sample(as_generator(rng))
        return suite, suite

    def draw_suite_masks(
        self, count: int, rng: SeedLike = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        masks = self._generator.sample_demand_masks(count, as_generator(rng))
        return masks, masks

    def draw_suite_counts(
        self, count: int, rng: SeedLike = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        counts = self._generator.sample_demand_counts(count, as_generator(rng))
        return counts, counts

    def joint_per_demand(
        self,
        population_a: VersionPopulation,
        population_b: VersionPopulation,
        n_suites: int = _DEFAULT_SUITE_SAMPLES,
        rng: SeedLike = None,
    ) -> np.ndarray:
        if population_b is population_a:
            moments = TestedPopulationView(
                population_a, self._generator
            ).suite_moments(n_suites=n_suites, rng=rng)
            return moments.second_moment
        cross = cross_suite_moments(
            population_a,
            population_b,
            self._generator,
            n_suites=n_suites,
            rng=rng,
        )
        return cross.cross_moment


class ForcedTestingDiversity(TestingRegime):
    """Each channel tested on an independent draw from its own measure.

    Paper §3.2: two generation procedures ``M_TA`` and ``M_TB``;
    conditional independence is again preserved — eq. (18) / eq. (19).
    """

    def __init__(
        self, generator_a: SuiteGenerator, generator_b: SuiteGenerator
    ) -> None:
        generator_a.space.require_same(generator_b.space)
        self._generator_a = generator_a
        self._generator_b = generator_b

    @property
    def generator_a(self) -> SuiteGenerator:
        """Channel A's suite measure ``M_TA``."""
        return self._generator_a

    @property
    def generator_b(self) -> SuiteGenerator:
        """Channel B's suite measure ``M_TB``."""
        return self._generator_b

    @property
    def shares_suite(self) -> bool:
        return False

    @property
    def label(self) -> str:
        return "forced testing diversity"

    def draw_suites(self, rng: SeedLike = None) -> Tuple[TestSuite, TestSuite]:
        generator = as_generator(rng)
        stream_a, stream_b = spawn_many(generator, 2)
        return (
            self._generator_a.sample(stream_a),
            self._generator_b.sample(stream_b),
        )

    def draw_suite_masks(
        self, count: int, rng: SeedLike = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        generator = as_generator(rng)
        stream_a, stream_b = spawn_many(generator, 2)
        return (
            self._generator_a.sample_demand_masks(count, stream_a),
            self._generator_b.sample_demand_masks(count, stream_b),
        )

    def draw_suite_counts(
        self, count: int, rng: SeedLike = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        generator = as_generator(rng)
        stream_a, stream_b = spawn_many(generator, 2)
        return (
            self._generator_a.sample_demand_counts(count, stream_a),
            self._generator_b.sample_demand_counts(count, stream_b),
        )

    def joint_per_demand(
        self,
        population_a: VersionPopulation,
        population_b: VersionPopulation,
        n_suites: int = _DEFAULT_SUITE_SAMPLES,
        rng: SeedLike = None,
    ) -> np.ndarray:
        generator = as_generator(rng)
        stream_a, stream_b = spawn_many(generator, 2)
        zeta_a = TestedPopulationView(population_a, self._generator_a).zeta(
            n_suites=n_suites, rng=stream_a
        )
        zeta_b = TestedPopulationView(population_b, self._generator_b).zeta(
            n_suites=n_suites, rng=stream_b
        )
        return zeta_a * zeta_b
