"""Failure-output models for back-to-back testing.

Back-to-back testing (paper §4.2) detects a failure only when the two
versions' outputs *differ*.  If exactly one version fails the outputs always
differ (wrong vs correct).  When both fail coincidentally, detection depends
on whether the two wrong outputs are identical.  The paper brackets this
with two extremes and we add the natural intermediate model:

* **optimistic** — coincident failures are never identical: mismatch is
  guaranteed, so back-to-back behaves exactly like a perfect oracle;
* **pessimistic** — coincident failures are always identical: no mismatch,
  so coincident failures are invisible to back-to-back testing;
* **shared-fault** — outputs are identical iff the same set of faults causes
  both failures: versions that fail on a demand because they contain the
  *same* fault produce the same wrong output, while failures from different
  faults produce different wrong outputs.  This sits between the bounds and
  is the mechanism by which common faults erode back-to-back detection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..errors import ModelError
from .version import Version

__all__ = [
    "FailureOutputModel",
    "optimistic_outputs",
    "pessimistic_outputs",
    "shared_fault_outputs",
    "OPTIMISTIC",
    "PESSIMISTIC",
    "SHARED_FAULT",
]

OPTIMISTIC = "optimistic"
PESSIMISTIC = "pessimistic"
SHARED_FAULT = "shared-fault"

_MODES = (OPTIMISTIC, PESSIMISTIC, SHARED_FAULT)


@dataclass(frozen=True)
class FailureOutputModel:
    """Decides whether two coincident failures are identical.

    Parameters
    ----------
    mode:
        One of ``"optimistic"``, ``"pessimistic"``, ``"shared-fault"``.

    Notes
    -----
    The model is deliberately deterministic given the versions' fault sets;
    all randomness in a back-to-back experiment then flows from version and
    suite selection, keeping the bounds analysis clean.
    """

    mode: str

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ModelError(
                f"unknown output-model mode {self.mode!r}; expected one of {_MODES}"
            )

    def identical_failure(
        self, first: Version, second: Version, demand: int
    ) -> bool:
        """True iff both versions fail on ``demand`` with identical outputs.

        Returns ``False`` whenever at least one version succeeds on the
        demand — identical *correct* outputs are not failures.
        """
        if not (first.fails_on(demand) and second.fails_on(demand)):
            return False
        if self.mode == OPTIMISTIC:
            return False
        if self.mode == PESSIMISTIC:
            return True
        causes_first = first.faults_causing_failure(demand)
        causes_second = second.faults_causing_failure(demand)
        return bool(np.array_equal(causes_first, causes_second))

    def mismatch(self, first: Version, second: Version, demand: int) -> bool:
        """True iff a back-to-back comparator flags ``demand``.

        A mismatch occurs when the versions disagree: exactly one fails, or
        both fail non-identically.
        """
        fails_first = first.fails_on(demand)
        fails_second = second.fails_on(demand)
        if fails_first != fails_second:
            return True
        if not (fails_first and fails_second):
            return False
        return not self.identical_failure(first, second, demand)


def optimistic_outputs() -> FailureOutputModel:
    """Coincident failures always distinguishable (upper-bound detection)."""
    return FailureOutputModel(OPTIMISTIC)


def pessimistic_outputs() -> FailureOutputModel:
    """Coincident failures always identical (lower-bound detection)."""
    return FailureOutputModel(PESSIMISTIC)


def shared_fault_outputs() -> FailureOutputModel:
    """Identical outputs iff the same faults caused both failures."""
    return FailureOutputModel(SHARED_FAULT)
