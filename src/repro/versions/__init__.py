"""Program-version substrate.

A program version ``π`` is modelled by the set of faults it contains
(:class:`Version`).  Its score function ``υ(π, x)`` — 1 if it fails on
demand ``x``, 0 otherwise — is the union of its faults' failure regions.
:mod:`repro.versions.outputs` adds the output-level model needed by
back-to-back testing, where detection depends on whether two failing
versions produce *identical* wrong outputs.
"""

from .version import Version
from .outputs import (
    OPTIMISTIC,
    PESSIMISTIC,
    SHARED_FAULT,
    FailureOutputModel,
    optimistic_outputs,
    pessimistic_outputs,
    shared_fault_outputs,
)

__all__ = [
    "Version",
    "FailureOutputModel",
    "optimistic_outputs",
    "pessimistic_outputs",
    "shared_fault_outputs",
    "OPTIMISTIC",
    "PESSIMISTIC",
    "SHARED_FAULT",
]
