"""A program version as a set of faults.

The score function of the paper,

    υ(π, x) = 1 if π fails on x, 0 otherwise,

is realised as: π fails on x iff some fault of π covers x.  Debugging is a
*set operation*: removing a fault deletes its whole failure region from the
version's failure set, matching the paper's perfect-fixing mechanics where
"removing a fault will result in many demands ... being transformed into
ones that can [be executed correctly]".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..demand import UsageProfile
from ..errors import IncompatibleSpaceError
from ..faults import FaultUniverse

__all__ = ["Version"]


@dataclass(frozen=True)
class Version:
    """An immutable program version over a fault universe.

    Parameters
    ----------
    universe:
        The fault universe the version draws from.
    fault_ids:
        Identifiers of the faults this version contains.  The empty set is
        a correct program.

    Notes
    -----
    Versions are value objects: equality and hashing follow the fault set,
    so two versions with the same faults are the same version (the paper's
    population ``℘`` is a set of *distinct* programs; measures put
    probability on them).
    """

    universe: FaultUniverse
    fault_ids: np.ndarray
    _failure_mask: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        ids = self.universe.validate_fault_ids(self.fault_ids)
        object.__setattr__(self, "fault_ids", ids)
        object.__setattr__(self, "_failure_mask", self.universe.union_mask(ids))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Version):
            return NotImplemented
        return self.universe is other.universe and np.array_equal(
            self.fault_ids, other.fault_ids
        )

    def __hash__(self) -> int:
        return hash((id(self.universe), self.fault_ids.tobytes()))

    @classmethod
    def correct(cls, universe: FaultUniverse) -> "Version":
        """The fault-free version."""
        return cls(universe, np.empty(0, dtype=np.int64))

    @classmethod
    def with_all_faults(cls, universe: FaultUniverse) -> "Version":
        """The version containing every fault in the universe."""
        return cls(universe, np.arange(len(universe), dtype=np.int64))

    @property
    def n_faults(self) -> int:
        """Number of faults in the version."""
        return int(self.fault_ids.size)

    @property
    def is_correct(self) -> bool:
        """True iff the version contains no faults."""
        return self.fault_ids.size == 0

    @property
    def failure_mask(self) -> np.ndarray:
        """Boolean demand mask: True where the version fails."""
        return self._failure_mask

    @property
    def failure_set(self) -> np.ndarray:
        """Demand indices on which the version fails."""
        return np.flatnonzero(self._failure_mask).astype(np.int64)

    def score(self, demand: int) -> int:
        """The paper's score ``υ(π, x)``: 1 if the version fails on ``x``."""
        return int(self._failure_mask[self.universe.space.validate_demand(demand)])

    def scores(self, demands: Sequence[int] | np.ndarray) -> np.ndarray:
        """Vectorised scores over many demands (0/1 int array)."""
        demands = self.universe.space.validate_demands(demands)
        return self._failure_mask[demands].astype(np.int64)

    def fails_on(self, demand: int) -> bool:
        """Boolean form of :meth:`score`."""
        return bool(self.score(demand))

    def faults_causing_failure(self, demand: int) -> np.ndarray:
        """The paper's ``O_x`` for this version: its faults covering ``demand``."""
        demand = self.universe.space.validate_demand(demand)
        if self.fault_ids.size == 0:
            return np.empty(0, dtype=np.int64)
        covering = self.universe.coverage[self.fault_ids, demand]
        return self.fault_ids[covering]

    def pfd(self, profile: UsageProfile) -> float:
        """Probability of failure on demand under usage profile ``Q``.

        This is the paper's ``η(π, ∅)`` (per-version unreliability before
        testing): ``sum_x υ(π, x) Q(x)``.
        """
        self.universe.space.require_same(profile.space)
        return float(profile.probabilities[self._failure_mask].sum())

    def without_faults(self, fault_ids: Sequence[int] | np.ndarray) -> "Version":
        """A new version with the given faults removed (perfect fixing).

        Removing faults the version does not contain is a no-op, matching
        the testing engine's semantics: fixing acts on detected faults,
        which are necessarily present.
        """
        removed = self.universe.validate_fault_ids(fault_ids)
        keep = np.setdiff1d(self.fault_ids, removed, assume_unique=True)
        return Version(self.universe, keep)

    def with_faults(self, fault_ids: Sequence[int] | np.ndarray) -> "Version":
        """A new version with additional faults (imperfect-fixing regressions)."""
        added = self.universe.validate_fault_ids(fault_ids)
        merged = np.union1d(self.fault_ids, added)
        return Version(self.universe, merged)

    def shares_fault_with(self, other: "Version") -> bool:
        """True iff the two versions contain at least one common fault."""
        if self.universe is not other.universe:
            raise IncompatibleSpaceError(
                "versions belong to different fault universes"
            )
        return bool(np.intersect1d(self.fault_ids, other.fault_ids).size)
