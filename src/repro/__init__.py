"""repro — reproduction of Popov & Littlewood, DSN 2004.

*The Effect of Testing on Reliability of Fault-Tolerant Software* models how
debugging changes the reliability of multi-version (design-diverse)
fault-tolerant software.  This library implements the paper's full
probabilistic framework plus the generative substrates needed to exercise
it: demand spaces and usage profiles, fault universes with failure regions,
version populations (the development measures ``S``), test-suite generators
(the testing measures ``M``), perfect and imperfect oracles and fixing,
back-to-back testing, exact analytics, Monte-Carlo estimation, and
reliability-growth studies.

Quickstart
----------
>>> import repro
>>> space = repro.DemandSpace(200)
>>> profile = repro.uniform_profile(space)
>>> universe = repro.clustered_universe(space, n_faults=30, region_size=6, rng=1)
>>> population = repro.BernoulliFaultPopulation.uniform(universe, 0.2)
>>> model = repro.ELModel.from_population(population, profile)
>>> model.prob_both_fail() >= model.prob_fail() ** 2  # Eckhardt-Lee inequality
True

See ``examples/`` for complete scenario scripts and ``DESIGN.md`` for the
paper-to-module map.
"""

from ._version import __version__
from .errors import (
    ConvergenceError,
    EmptyPopulationError,
    IncompatibleSpaceError,
    ModelError,
    NotEnumerableError,
    ProbabilityError,
    ReproError,
)
from .demand import (
    DemandPartition,
    DemandSpace,
    UsageProfile,
    custom_profile,
    geometric_profile,
    mixture_profile,
    uniform_profile,
    zipf_profile,
)
from .faults import (
    Fault,
    FaultUniverse,
    blockwise_universe,
    clustered_universe,
    difficulty_from_bernoulli,
    disjoint_universe,
    overlapping_pair,
    tested_difficulty_given_suite,
    uniform_random_universe,
    zipf_sized_universe,
)
from .versions import (
    FailureOutputModel,
    Version,
    optimistic_outputs,
    pessimistic_outputs,
    shared_fault_outputs,
)
from .populations import (
    BernoulliFaultPopulation,
    FinitePopulation,
    Methodology,
    MethodologyPair,
    VersionPopulation,
)
from .testing import (
    BackToBackComparator,
    EnumerableSuiteGenerator,
    ExhaustiveSuiteGenerator,
    ImperfectFixing,
    ImperfectOracle,
    OperationalSuiteGenerator,
    Oracle,
    PartitionCoverageGenerator,
    PerfectFixing,
    PerfectOracle,
    SuiteGenerator,
    TestSuite,
    TestingOutcome,
    WeightedDebugGenerator,
    WithoutReplacementGenerator,
    apply_testing,
    back_to_back_testing,
)
from .core import (
    BoundsReport,
    ELModel,
    ForcedTestingDiversity,
    IndependentSuites,
    LMModel,
    OneOutOfTwoSystem,
    SameSuite,
    TestedPopulationView,
    TestingRegime,
    imperfect_testing_bounds,
    joint_failure_probability,
    marginal_system_pfd,
)
from .adaptive import AdaptiveReport, PrecisionTarget

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "ModelError",
    "ProbabilityError",
    "IncompatibleSpaceError",
    "NotEnumerableError",
    "ConvergenceError",
    "EmptyPopulationError",
    # demand
    "DemandSpace",
    "UsageProfile",
    "DemandPartition",
    "uniform_profile",
    "zipf_profile",
    "geometric_profile",
    "custom_profile",
    "mixture_profile",
    # faults
    "Fault",
    "FaultUniverse",
    "uniform_random_universe",
    "clustered_universe",
    "blockwise_universe",
    "disjoint_universe",
    "zipf_sized_universe",
    "overlapping_pair",
    "difficulty_from_bernoulli",
    "tested_difficulty_given_suite",
    # versions
    "Version",
    "FailureOutputModel",
    "optimistic_outputs",
    "pessimistic_outputs",
    "shared_fault_outputs",
    # populations
    "VersionPopulation",
    "BernoulliFaultPopulation",
    "FinitePopulation",
    "Methodology",
    "MethodologyPair",
    # testing
    "TestSuite",
    "SuiteGenerator",
    "OperationalSuiteGenerator",
    "WithoutReplacementGenerator",
    "PartitionCoverageGenerator",
    "WeightedDebugGenerator",
    "ExhaustiveSuiteGenerator",
    "EnumerableSuiteGenerator",
    "Oracle",
    "PerfectOracle",
    "ImperfectOracle",
    "BackToBackComparator",
    "PerfectFixing",
    "ImperfectFixing",
    "apply_testing",
    "back_to_back_testing",
    "TestingOutcome",
    # core
    "ELModel",
    "LMModel",
    "TestedPopulationView",
    "TestingRegime",
    "IndependentSuites",
    "SameSuite",
    "ForcedTestingDiversity",
    "OneOutOfTwoSystem",
    "joint_failure_probability",
    "marginal_system_pfd",
    # adaptive precision engine
    "AdaptiveReport",
    "PrecisionTarget",
    "BoundsReport",
    "imperfect_testing_bounds",
]
