"""Common clarifications as shared restricted test suites (paper §5).

"If an ambiguity is discovered by one of the teams, and a common
clarification is sent to all development teams, this can conceptually be
modelled as running the same 'test suite' against all versions.  The
difference ... is that the common test suite is not generated to cover the
whole demand space ... but instead will affect a (possibly small) sub-set
of the demand space."

Model: the specification has a set of *candidate ambiguities*, each
identified with the demand region it affects.  During development exactly
one (or none) surfaces and is clarified for **all** teams — a random shared
event.  Resolving an ambiguity behaves exactly like perfect testing on its
region: every fault of every channel whose failure region meets the
clarified demands is repaired.  The induced suite measure is enumerable, so
the whole core applies: a *random* common clarification adds the eq. (20)
variance penalty, while a *deterministic* one (everyone always learns the
same thing) adds none.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core import SameSuite, IndependentSuites, marginal_system_pfd
from ..demand import DemandSpace, UsageProfile
from ..errors import ModelError, ProbabilityError
from ..populations import VersionPopulation
from ..testing import EnumerableSuiteGenerator, TestSuite

__all__ = ["ClarificationProcess", "ClarificationEffect", "clarification_effect"]


class ClarificationProcess(object):
    """A suite measure over candidate specification ambiguities.

    Parameters
    ----------
    space:
        The demand space.
    regions:
        One demand region per candidate ambiguity; clarifying ambiguity
        ``i`` repairs (perfectly tests) region ``i``.
    probabilities:
        Probability that each ambiguity is the one discovered; if they sum
        to less than one, the remainder is the probability that *no*
        ambiguity surfaces (an empty suite).
    """

    def __init__(
        self,
        space: DemandSpace,
        regions: Sequence[Sequence[int]],
        probabilities: Sequence[float],
    ) -> None:
        regions = list(regions)
        probs = np.asarray(list(probabilities), dtype=np.float64)
        if len(regions) != probs.size:
            raise ModelError(
                f"got {len(regions)} regions but {probs.size} probabilities"
            )
        if np.any(probs < 0.0) or np.any(~np.isfinite(probs)):
            raise ProbabilityError("probabilities must be finite and >= 0")
        total = float(probs.sum())
        if total > 1.0 + 1e-9:
            raise ProbabilityError(
                f"ambiguity probabilities sum to {total:.6f} > 1"
            )
        suites = [TestSuite.of(space, region) for region in regions]
        weights = probs.tolist()
        if total < 1.0 - 1e-12:
            suites.append(TestSuite.empty(space))
            weights.append(1.0 - total)
        self._space = space
        self._generator = EnumerableSuiteGenerator(
            space, suites, np.asarray(weights)
        )

    @property
    def space(self) -> DemandSpace:
        """The demand space clarifications act on."""
        return self._space

    @property
    def generator(self) -> EnumerableSuiteGenerator:
        """The clarification process as an (enumerable) suite measure."""
        return self._generator

    def shared(self) -> SameSuite:
        """The paper's scenario: one clarification broadcast to all teams."""
        return SameSuite(self._generator)

    def per_team(self) -> IndependentSuites:
        """The counterfactual: each team discovers ambiguities on its own.

        Independent discovery is what the clarification *replaces*; the gap
        between the two regimes is the diversity cost of broadcasting.
        """
        return IndependentSuites(self._generator)


@dataclass(frozen=True)
class ClarificationEffect:
    """System-level effect of a clarification process.

    Attributes
    ----------
    untested_pfd:
        System pfd with no clarification at all.
    shared_pfd:
        System pfd when the clarification is broadcast to both teams
        (the paper's common-clarification scenario).
    per_team_pfd:
        System pfd when each team resolves its own (independently
        discovered) ambiguity.
    dependence_penalty:
        ``shared_pfd − per_team_pfd`` = ``E_Q[Var_T(ξ)]`` over the
        clarification measure; zero iff the clarification is deterministic.
    """

    untested_pfd: float
    shared_pfd: float
    per_team_pfd: float
    dependence_penalty: float

    @property
    def clarification_helps(self) -> bool:
        """True iff broadcasting still beats doing nothing."""
        return self.shared_pfd <= self.untested_pfd + 1e-15


def clarification_effect(
    process: ClarificationProcess,
    population: VersionPopulation,
    profile: UsageProfile,
    population_b: VersionPopulation | None = None,
) -> ClarificationEffect:
    """Quantify a clarification process on a two-channel system.

    All three quantities are exact (the clarification measure is
    enumerable); the paper's eqs. (22)–(25) supply the decompositions.
    """
    population_b = population_b if population_b is not None else population
    theta_a = population.difficulty()
    theta_b = population_b.difficulty()
    untested = profile.expectation(theta_a * theta_b)
    shared = marginal_system_pfd(
        process.shared(), population, profile, population_b
    ).system_pfd
    per_team = marginal_system_pfd(
        process.per_team(), population, profile, population_b
    ).system_pfd
    return ClarificationEffect(
        untested_pfd=untested,
        shared_pfd=shared,
        per_team_pfd=per_team,
        dependence_penalty=shared - per_team,
    )
