"""Stopping rules for operational testing (the paper's §2, citing its ref. [3]).

"Usually, the size of the test suite ... is determined with respect to some
stopping rule which gives the tester sufficiently high confidence that the
goal (e.g. targeted reliability) has been achieved" — Littlewood & Wright's
conservative stopping rules for safety-critical software.

Two standard rules are provided, both for the demand-based (pfd) setting
this library models:

* **classical zero-failure demonstration** — if ``n`` operational demands
  execute without failure, then with confidence ``c`` the pfd is below
  ``1 − (1 − c)^(1/n)`` (the exact frequentist bound from
  ``(1 − p)^n ≤ 1 − c``);
* **conservative Bayesian bound** — with a ``Beta(a, b)`` prior on the pfd
  and ``n`` failure-free demands, the posterior is ``Beta(a, b + n)`` and
  the bound is its ``c``-quantile.  ``a = b = 1`` (uniform prior) is the
  textbook conservative choice.

These connect the library's suite-size axis to the reliability targets a
tester would actually contract for.
"""

from __future__ import annotations

import math

from scipy import stats

from ..errors import ModelError, ProbabilityError

__all__ = [
    "classical_pfd_upper_bound",
    "bayes_pfd_upper_bound",
    "tests_needed_for_target",
    "replications_for_half_width",
]


def _check_confidence(confidence: float) -> None:
    if not 0.0 < confidence < 1.0:
        raise ProbabilityError(
            f"confidence must be in (0, 1), got {confidence}"
        )


def classical_pfd_upper_bound(n_failure_free: int, confidence: float) -> float:
    """Frequentist pfd bound after ``n`` failure-free operational demands.

    The largest ``p`` not rejected at level ``confidence`` by ``n``
    failure-free observations: ``p = 1 − (1 − confidence)^(1/n)``.

    Examples
    --------
    >>> round(classical_pfd_upper_bound(2302, 0.90), 4)  # the classic 1e-3
    0.001
    """
    _check_confidence(confidence)
    if n_failure_free < 1:
        raise ModelError(
            f"n_failure_free must be >= 1, got {n_failure_free}"
        )
    return 1.0 - (1.0 - confidence) ** (1.0 / n_failure_free)


def bayes_pfd_upper_bound(
    n_failure_free: int,
    confidence: float,
    prior_a: float = 1.0,
    prior_b: float = 1.0,
) -> float:
    """Bayesian pfd bound: ``c``-quantile of ``Beta(a, b + n)``.

    With the uniform prior (``a = b = 1``) the posterior is
    ``Beta(1, n + 1)``, whose ``c``-quantile is ``1 − (1 − c)^(1/(n+1))`` —
    exactly the classical bound credited with one extra test.  Informative
    priors (larger ``b``) tighten the bound; pessimistic priors (larger
    ``a``) loosen it, which is how the conservative rules of the paper's
    ref. [3] are expressed in this form.
    """
    _check_confidence(confidence)
    if n_failure_free < 0:
        raise ModelError(
            f"n_failure_free must be >= 0, got {n_failure_free}"
        )
    if prior_a <= 0 or prior_b <= 0:
        raise ModelError("Beta prior parameters must be positive")
    return float(
        stats.beta.ppf(confidence, prior_a, prior_b + n_failure_free)
    )


def tests_needed_for_target(target_pfd: float, confidence: float) -> int:
    """Failure-free demands needed to demonstrate ``target_pfd`` classically.

    Solves ``(1 − target)^n ≤ 1 − confidence`` for the smallest integer
    ``n`` — the familiar "to claim 10⁻³ with 90% confidence you need about
    2300 failure-free demands" calculation, and the reason the paper's
    cost-of-execution scenario (§3.4.1) is the realistic one: demonstrated
    reliability is paid for in test executions.
    """
    _check_confidence(confidence)
    if not 0.0 < target_pfd < 1.0:
        raise ProbabilityError(
            f"target_pfd must be in (0, 1), got {target_pfd}"
        )
    n = math.log(1.0 - confidence) / math.log(1.0 - target_pfd)
    return int(math.ceil(n))


def replications_for_half_width(
    std: float, half_width: float, confidence: float
) -> int:
    """Observations needed for a normal CI half-width of ``half_width``.

    The Monte-Carlo counterpart of :func:`tests_needed_for_target`: solves
    ``z(confidence) · σ / √n ≤ half_width`` for the smallest integer
    ``n``.  The adaptive controller (:mod:`repro.adaptive.controller`)
    uses this to *project* its next round size from the sample standard
    deviation instead of blindly doubling — and, in the sweep layer's
    Neyman allocation, to translate per-point variance estimates into
    replication budgets.  A zero (degenerate) standard deviation needs one
    observation; an infinite one is reported as the caller's cue to fall
    back to geometric escalation.
    """
    _check_confidence(confidence)
    if half_width <= 0.0:
        raise ModelError(f"half_width must be > 0, got {half_width}")
    if std < 0.0 or math.isnan(std):
        raise ModelError(f"std must be a non-negative number, got {std}")
    if std == 0.0:
        return 1
    if math.isinf(std):
        raise ModelError("std must be finite")
    z = float(stats.norm.ppf(0.5 + confidence / 2.0))
    return max(1, int(math.ceil((z * std / half_width) ** 2)))
