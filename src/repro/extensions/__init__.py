"""Extensions sketched in the paper's conclusion (§5).

The paper closes by observing that its shared-suite formalism "seems
applicable to modelling any kind of commonality", naming two instances and
leaving "detailed modelling ... for the future".  This package provides
that modelling, as thin, principled adapters over the core machinery:

* :mod:`repro.extensions.clarification` — a **common clarification** sent to
  all teams is a shared "test suite" restricted to the sub-space of demands
  the ambiguity affects.  Uncertainty about *which* ambiguity surfaces makes
  the clarification process a suite measure, and all of eqs. (16)–(25)
  apply verbatim.
* :mod:`repro.extensions.mistakes` — a **common mistake** (e.g. a wrong
  instruction on how to resolve an ambiguity) is the dual event: instead of
  fixing scores it *sets scores to 1* on the affected demands, in every
  channel.  Modelled as a shared fault forced into both populations, with
  an optional *blind oracle* that cannot recognise the mistaken behaviour
  as failure (the judge shares the misconception).
* :mod:`repro.extensions.stopping` — the **stopping rules** for operational
  testing the paper leans on in §2 (its ref. [3], Littlewood & Wright):
  classical zero-failure demonstration and a conservative Bayesian bound,
  connecting suite size to demonstrated pfd.
* :mod:`repro.extensions.campaign` — **combined activities**: ordered
  campaigns mixing testing stages, back-to-back sessions, clarifications
  and mistakes over one realised two-channel system, per the paper's
  closing paragraph ("the effect of applying more than one activity").
"""

from .clarification import (
    ClarificationProcess,
    clarification_effect,
)
from .mistakes import (
    SpecificationMistake,
    BlindSpotOracle,
    mistake_effect,
)
from .stopping import (
    bayes_pfd_upper_bound,
    classical_pfd_upper_bound,
    replications_for_half_width,
    tests_needed_for_target,
)
from .campaign import (
    Activity,
    BackToBackActivity,
    CampaignStep,
    CampaignTrajectory,
    ClarificationActivity,
    DevelopmentCampaign,
    IndependentTestingActivity,
    MistakeActivity,
    PerTeamClarificationActivity,
    SharedTestingActivity,
)

__all__ = [
    "ClarificationProcess",
    "clarification_effect",
    "SpecificationMistake",
    "BlindSpotOracle",
    "mistake_effect",
    "classical_pfd_upper_bound",
    "bayes_pfd_upper_bound",
    "tests_needed_for_target",
    "replications_for_half_width",
    "Activity",
    "SharedTestingActivity",
    "IndependentTestingActivity",
    "BackToBackActivity",
    "ClarificationActivity",
    "PerTeamClarificationActivity",
    "MistakeActivity",
    "CampaignStep",
    "CampaignTrajectory",
    "DevelopmentCampaign",
]
