"""Common specification mistakes (paper §5).

"Another instance of the 'same test suite' approach ... is the
representation of common mistakes (e.g. giving incorrect instructions to
all teams about how to resolve ambiguities in the specification).  The
difference in this case ... is that the 'common test' will result in
setting the scores of all demands affected to 1 (i.e. make versions produce
incorrect results) instead of fixing the mistakes."

Model: a mistake is a designated fault whose presence probability is forced
to **one in every methodology** — all teams follow the same wrong
instruction, so all versions fail identically on the mistake's region.
Two consequences follow and are both implemented:

* the mistake is a *common-mode* fault: it contributes ``Q(R_m)`` to the
  system pfd outright and produces identical coincident failures (so
  back-to-back testing cannot see it — the shared-fault output model
  already captures that);
* the oracle may share the misconception: a :class:`BlindSpotOracle` fails
  to recognise the mistaken behaviour as failure, so no amount of testing
  removes the mistake.  With a *correct* (independent) oracle the mistake
  is an ordinary fault and testing can find it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core import SameSuite, marginal_system_pfd
from ..demand import UsageProfile
from ..errors import ModelError
from ..populations import BernoulliFaultPopulation
from ..rng import as_generator
from ..testing import Oracle, SuiteGenerator
from ..types import SeedLike
from ..versions import Version

__all__ = [
    "SpecificationMistake",
    "BlindSpotOracle",
    "BlindSpotFixing",
    "MistakeEffect",
    "mistake_effect",
]


@dataclass(frozen=True)
class SpecificationMistake:
    """A common wrong instruction, identified with fault ids in a universe.

    Parameters
    ----------
    fault_ids:
        The faults every team acquires by following the instruction.
    """

    fault_ids: tuple

    def __post_init__(self) -> None:
        ids = tuple(int(i) for i in self.fault_ids)
        if not ids:
            raise ModelError("a mistake must involve at least one fault")
        if any(i < 0 for i in ids):
            raise ModelError("fault ids must be >= 0")
        object.__setattr__(self, "fault_ids", ids)

    def apply_to(
        self, population: BernoulliFaultPopulation
    ) -> BernoulliFaultPopulation:
        """The population after the mistake: those faults become certain."""
        universe = population.universe
        ids = universe.validate_fault_ids(np.asarray(self.fault_ids))
        probs = population.presence_probs
        probs[ids] = 1.0
        return BernoulliFaultPopulation(universe, probs)

    def region_mask(self, population: BernoulliFaultPopulation) -> np.ndarray:
        """Demand mask of the mistake's combined failure region."""
        return population.universe.union_mask(np.asarray(self.fault_ids))

    def blind_oracle(self) -> "BlindSpotOracle":
        """An oracle sharing the misconception: blind to these faults."""
        return BlindSpotOracle(self.fault_ids)

    def blind_fixing(self) -> "BlindSpotFixing":
        """Fixing that never repairs the mistaken behaviour."""
        return BlindSpotFixing(self.fault_ids)


@dataclass(frozen=True)
class BlindSpotOracle(Oracle):
    """An oracle that cannot see failures caused *solely* by blind faults.

    The judge was written from the same (wrong) specification: behaviour
    the mistake mandates looks correct to it.  A failure is detected only
    if at least one *other* fault contributes to it.
    """

    blind_fault_ids: tuple

    def __post_init__(self) -> None:
        ids = tuple(int(i) for i in self.blind_fault_ids)
        object.__setattr__(self, "blind_fault_ids", ids)

    def detects(
        self, version: Version, demand: int, rng: np.random.Generator
    ) -> bool:
        causes = version.faults_causing_failure(demand)
        visible = np.setdiff1d(
            causes, np.asarray(self.blind_fault_ids, dtype=np.int64)
        )
        return bool(visible.size > 0)


@dataclass(frozen=True)
class BlindSpotFixing:
    """Fixing that repairs only faults the team can recognise as wrong.

    The counterpart of :class:`BlindSpotOracle` on the repair side: even
    when a visible fault reveals a failure, the debugging that follows
    still considers the mandated (mistaken) behaviour correct, so blind
    faults are never removed.  Together the blind oracle and blind fixing
    make the mistake permanently undetectable — the hard common-mode floor.
    """

    blind_fault_ids: tuple

    def __post_init__(self) -> None:
        ids = tuple(int(i) for i in self.blind_fault_ids)
        object.__setattr__(self, "blind_fault_ids", ids)

    def faults_removed(
        self, version: Version, demand: int, rng: np.random.Generator
    ) -> np.ndarray:
        causes = version.faults_causing_failure(demand)
        return np.setdiff1d(
            causes, np.asarray(self.blind_fault_ids, dtype=np.int64)
        )


@dataclass(frozen=True)
class MistakeEffect:
    """System-level effect of a common specification mistake.

    Attributes
    ----------
    clean_pfd:
        System pfd without the mistake, after shared-suite testing.
    mistaken_correct_oracle_pfd:
        With the mistake, tested under an oracle that *can* see it.
    mistaken_blind_oracle_pfd:
        With the mistake, tested under the blind oracle (MC estimate).
    mistake_region_mass:
        ``Q(R_m)`` — the hard floor the undetectable mistake puts under
        the system pfd.
    """

    clean_pfd: float
    mistaken_correct_oracle_pfd: float
    mistaken_blind_oracle_pfd: float
    mistake_region_mass: float

    @property
    def floor_respected(self) -> bool:
        """Blind-oracle system pfd can never drop below ``Q(R_m)``."""
        return self.mistaken_blind_oracle_pfd >= self.mistake_region_mass - 1e-12


def mistake_effect(
    mistake: SpecificationMistake,
    population: BernoulliFaultPopulation,
    generator: SuiteGenerator,
    profile: UsageProfile,
    n_replications: int = 300,
    n_suites: int = 512,
    rng: SeedLike = None,
    engine: str = "auto",
    chunk_size: int | None = None,
    n_jobs: int = 1,
) -> MistakeEffect:
    """Quantify a common mistake on a shared-suite-tested 1oo2 system.

    The clean and correct-oracle quantities are analytic (the mistaken
    population is just another Bernoulli population); the blind-oracle
    quantity needs simulation because blind detection depends on which
    *other* faults each realised version contains.  The simulation routes
    through :func:`repro.mc.simulate_marginal_system_pfd` — the matched
    blind oracle/fixing pair runs on the batch engine's blind-spot closure
    under ``engine="auto"``/``"batch"``.
    """
    from ..mc.experiments import simulate_marginal_system_pfd
    from ..rng import spawn_many

    rng = as_generator(rng)
    streams = spawn_many(rng, 3)
    regime = SameSuite(generator)
    clean = marginal_system_pfd(
        regime, population, profile, n_suites=n_suites, rng=streams[0]
    ).system_pfd
    mistaken = mistake.apply_to(population)
    correct_oracle = marginal_system_pfd(
        regime, mistaken, profile, n_suites=n_suites, rng=streams[1]
    ).system_pfd

    blind = simulate_marginal_system_pfd(
        regime,
        mistaken,
        profile,
        n_replications=n_replications,
        rng=streams[2],
        oracle=mistake.blind_oracle(),
        fixing=mistake.blind_fixing(),
        engine=engine,
        chunk_size=chunk_size,
        n_jobs=n_jobs,
    ).mean
    region_mass = float(
        profile.probabilities[mistake.region_mask(population)].sum()
    )
    return MistakeEffect(
        clean_pfd=clean,
        mistaken_correct_oracle_pfd=correct_oracle,
        mistaken_blind_oracle_pfd=blind,
        mistake_region_mass=region_mass,
    )
