"""Combined development activities (paper §5, closing paragraph).

"In practical software development a combination of different activities is
utilised which introduce sources of dependence between the channels.  We
intend to study the effect of applying more than one activity to the
diverse channels and the interplay between their individual characteristics
(e.g. efficacy) and mutual diversity."

A :class:`DevelopmentCampaign` is an ordered sequence of *activities*
applied to a concrete two-channel system: shared or independent testing
stages, back-to-back sessions, clarification broadcasts, and mistake
injections.  Running a campaign yields a step-by-step trajectory of channel
and system reliability, making the interplay the paper asks about directly
observable; averaging over version pairs gives the population view.

The population view (:meth:`DevelopmentCampaign.mean_final_system_pfd`)
runs on the batch Monte-Carlo engine by default: every built-in activity
also implements :meth:`Activity.apply_batch`, transforming whole
fault-matrix blocks with the kernels of :mod:`repro.mc.batch`, so a
campaign sweep costs a handful of matrix operations per activity instead
of a Python loop per version pair.  Custom activities without a batch form
(or testing stages with custom oracle/fixing policies) automatically fall
back to the scalar trajectory loop.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..demand import UsageProfile
from ..errors import ModelError
from ..rng import as_generator, spawn_many
from ..testing import (
    BackToBackComparator,
    FixingPolicy,
    Oracle,
    SuiteGenerator,
    apply_testing,
    back_to_back_testing,
)
from ..types import SeedLike
from ..versions import Version
from ..populations import VersionPopulation
from .clarification import ClarificationProcess
from .mistakes import SpecificationMistake

__all__ = [
    "Activity",
    "SharedTestingActivity",
    "IndependentTestingActivity",
    "BackToBackActivity",
    "ClarificationActivity",
    "PerTeamClarificationActivity",
    "MistakeActivity",
    "CampaignStep",
    "CampaignTrajectory",
    "DevelopmentCampaign",
]


class Activity(abc.ABC):
    """One step of a development campaign, acting on a version pair."""

    @property
    @abc.abstractmethod
    def kind(self) -> str:
        """Short label for trajectory reports."""

    @abc.abstractmethod
    def apply(
        self,
        version_a: Version,
        version_b: Version,
        rng: np.random.Generator,
    ) -> Tuple[Version, Version]:
        """Run the activity; return the evolved version pair."""

    @property
    def supports_batch(self) -> bool:
        """True iff :meth:`apply_batch` is implemented for this activity.

        Campaign drivers check this before choosing the vectorized path;
        custom activities default to False and keep campaigns on the scalar
        trajectory loop.
        """
        return False

    def apply_batch(
        self,
        faults_a: np.ndarray,
        faults_b: np.ndarray,
        universe_a,
        universe_b,
        rng: np.random.Generator,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Run the activity on whole ``(R, F)`` fault-matrix blocks.

        The block counterpart of :meth:`apply`: row ``r`` of the two
        matrices is replication ``r``'s version pair.  Implementations must
        preserve the scalar activity's randomness *structure* (what is
        shared between channels vs drawn independently), not its exact
        stream consumption.
        """
        raise ModelError(
            f"{type(self).__name__} has no batch implementation; run the "
            "campaign with engine='scalar'"
        )


def _testing_plan_of(oracle, fixing):
    from ..mc.batch import _testing_plan

    return _testing_plan(oracle, fixing)


def _apply_plan_block(plan, faults, generator, universe, suite_rng, test_rng):
    """Test one channel's block: draw the plan's suite representation, close."""
    from ..mc.batch import _apply_plan_batch, _plan_needs_counts

    if _plan_needs_counts(plan):
        block = generator.sample_demand_counts(faults.shape[0], suite_rng)
    else:
        block = generator.sample_demand_masks(faults.shape[0], suite_rng)
    return _apply_plan_batch(plan, faults, block, universe, test_rng)


class SharedTestingActivity(Activity):
    """One suite drawn from ``M`` and run against both channels."""

    def __init__(
        self,
        generator: SuiteGenerator,
        oracle: Oracle | None = None,
        fixing: FixingPolicy | None = None,
    ) -> None:
        self._generator = generator
        self._oracle = oracle
        self._fixing = fixing

    @property
    def kind(self) -> str:
        return "shared testing"

    def apply(self, version_a, version_b, rng):
        streams = spawn_many(rng, 3)
        suite = self._generator.sample(streams[0])
        after_a = apply_testing(
            version_a, suite, self._oracle, self._fixing, rng=streams[1]
        ).after
        after_b = apply_testing(
            version_b, suite, self._oracle, self._fixing, rng=streams[2]
        ).after
        return after_a, after_b

    @property
    def supports_batch(self) -> bool:
        return _testing_plan_of(self._oracle, self._fixing) is not None

    def apply_batch(self, faults_a, faults_b, universe_a, universe_b, rng):
        from ..mc.batch import _apply_plan_batch, _plan_needs_counts

        plan = _testing_plan_of(self._oracle, self._fixing)
        if plan is None:
            return super().apply_batch(faults_a, faults_b, universe_a, universe_b, rng)
        streams = spawn_many(rng, 3)
        if _plan_needs_counts(plan):
            block = self._generator.sample_demand_counts(
                faults_a.shape[0], streams[0]
            )
        else:
            block = self._generator.sample_demand_masks(
                faults_a.shape[0], streams[0]
            )
        after_a = _apply_plan_batch(plan, faults_a, block, universe_a, streams[1])
        after_b = _apply_plan_batch(plan, faults_b, block, universe_b, streams[2])
        return after_a, after_b


class IndependentTestingActivity(Activity):
    """Each channel tested on its own draw from ``M``."""

    def __init__(
        self,
        generator: SuiteGenerator,
        oracle: Oracle | None = None,
        fixing: FixingPolicy | None = None,
    ) -> None:
        self._generator = generator
        self._oracle = oracle
        self._fixing = fixing

    @property
    def kind(self) -> str:
        return "independent testing"

    def apply(self, version_a, version_b, rng):
        streams = spawn_many(rng, 4)
        suite_a = self._generator.sample(streams[0])
        suite_b = self._generator.sample(streams[1])
        after_a = apply_testing(
            version_a, suite_a, self._oracle, self._fixing, rng=streams[2]
        ).after
        after_b = apply_testing(
            version_b, suite_b, self._oracle, self._fixing, rng=streams[3]
        ).after
        return after_a, after_b

    @property
    def supports_batch(self) -> bool:
        return _testing_plan_of(self._oracle, self._fixing) is not None

    def apply_batch(self, faults_a, faults_b, universe_a, universe_b, rng):
        plan = _testing_plan_of(self._oracle, self._fixing)
        if plan is None:
            return super().apply_batch(faults_a, faults_b, universe_a, universe_b, rng)
        streams = spawn_many(rng, 4)
        after_a = _apply_plan_block(
            plan, faults_a, self._generator, universe_a, streams[0], streams[2]
        )
        after_b = _apply_plan_block(
            plan, faults_b, self._generator, universe_b, streams[1], streams[3]
        )
        return after_a, after_b


class BackToBackActivity(Activity):
    """A cross-checking session on one shared suite (no external oracle)."""

    def __init__(
        self,
        generator: SuiteGenerator,
        comparator: BackToBackComparator,
        fixing: FixingPolicy | None = None,
    ) -> None:
        self._generator = generator
        self._comparator = comparator
        self._fixing = fixing

    @property
    def kind(self) -> str:
        return "back-to-back"

    def apply(self, version_a, version_b, rng):
        streams = spawn_many(rng, 2)
        suite = self._generator.sample(streams[0])
        outcome_a, outcome_b = back_to_back_testing(
            version_a,
            version_b,
            suite,
            self._comparator,
            self._fixing,
            rng=streams[1],
        )
        return outcome_a.after, outcome_b.after

    @property
    def supports_batch(self) -> bool:
        from ..mc.batch import back_to_back_supported

        return back_to_back_supported(self._fixing)

    def apply_batch(self, faults_a, faults_b, universe_a, universe_b, rng):
        from ..mc.batch import back_to_back_batch

        streams = spawn_many(rng, 2)
        sequences = self._generator.sample_demand_sequences(
            faults_a.shape[0], streams[0]
        )
        return back_to_back_batch(
            faults_a,
            faults_b,
            sequences,
            universe_a,
            universe_b,
            self._comparator,
            self._fixing,
            rng=streams[1],
        )


class ClarificationActivity(Activity):
    """A clarification drawn from the process and broadcast to both teams."""

    def __init__(self, process: ClarificationProcess) -> None:
        self._process = process

    @property
    def kind(self) -> str:
        return "clarification"

    def apply(self, version_a, version_b, rng):
        suite = self._process.generator.sample(rng)
        after_a = apply_testing(version_a, suite).after
        after_b = apply_testing(version_b, suite).after
        return after_a, after_b

    @property
    def supports_batch(self) -> bool:
        return True

    def apply_batch(self, faults_a, faults_b, universe_a, universe_b, rng):
        from ..mc.batch import apply_testing_batch

        masks = self._process.generator.sample_demand_masks(
            faults_a.shape[0], rng
        )
        return (
            apply_testing_batch(faults_a, masks, universe_a),
            apply_testing_batch(faults_b, masks, universe_b),
        )


class PerTeamClarificationActivity(Activity):
    """Each team independently discovers and resolves its own ambiguity.

    The diversity-preserving counterfactual to
    :class:`ClarificationActivity`: two independent draws from the same
    clarification process, one per channel.
    """

    def __init__(self, process: ClarificationProcess) -> None:
        self._process = process

    @property
    def kind(self) -> str:
        return "per-team clarification"

    def apply(self, version_a, version_b, rng):
        streams = spawn_many(rng, 2)
        suite_a = self._process.generator.sample(streams[0])
        suite_b = self._process.generator.sample(streams[1])
        after_a = apply_testing(version_a, suite_a).after
        after_b = apply_testing(version_b, suite_b).after
        return after_a, after_b

    @property
    def supports_batch(self) -> bool:
        return True

    def apply_batch(self, faults_a, faults_b, universe_a, universe_b, rng):
        from ..mc.batch import apply_testing_batch

        streams = spawn_many(rng, 2)
        masks_a = self._process.generator.sample_demand_masks(
            faults_a.shape[0], streams[0]
        )
        masks_b = self._process.generator.sample_demand_masks(
            faults_b.shape[0], streams[1]
        )
        return (
            apply_testing_batch(faults_a, masks_a, universe_a),
            apply_testing_batch(faults_b, masks_b, universe_b),
        )


class MistakeActivity(Activity):
    """A wrong common instruction: the mistake's faults enter both channels."""

    def __init__(self, mistake: SpecificationMistake) -> None:
        self._mistake = mistake

    @property
    def kind(self) -> str:
        return "common mistake"

    def apply(self, version_a, version_b, rng):
        ids = np.asarray(self._mistake.fault_ids, dtype=np.int64)
        return version_a.with_faults(ids), version_b.with_faults(ids)

    @property
    def supports_batch(self) -> bool:
        return True

    def apply_batch(self, faults_a, faults_b, universe_a, universe_b, rng):
        after_a = np.array(faults_a, dtype=bool)
        after_b = np.array(faults_b, dtype=bool)
        after_a[:, universe_a.validate_fault_ids(np.asarray(self._mistake.fault_ids))] = True
        after_b[:, universe_b.validate_fault_ids(np.asarray(self._mistake.fault_ids))] = True
        return after_a, after_b


@dataclass(frozen=True)
class CampaignStep:
    """System state after one campaign activity.

    ``step`` 0 is the initial state with ``kind = "initial"``.
    """

    step: int
    kind: str
    pfd_a: float
    pfd_b: float
    system_pfd: float
    faults_a: int
    faults_b: int


@dataclass(frozen=True)
class CampaignTrajectory:
    """The per-step history of one campaign run."""

    steps: tuple

    def __post_init__(self) -> None:
        object.__setattr__(self, "steps", tuple(self.steps))

    def __len__(self) -> int:
        return len(self.steps)

    def __getitem__(self, index: int) -> CampaignStep:
        return self.steps[index]

    @property
    def final(self) -> CampaignStep:
        """State after the last activity."""
        return self.steps[-1]

    def system_pfds(self) -> np.ndarray:
        """System pfd by step."""
        return np.array([step.system_pfd for step in self.steps])

    def degrading_steps(self) -> List[CampaignStep]:
        """Steps that made the *system* worse (only mistakes can)."""
        out = []
        for previous, current in zip(self.steps, self.steps[1:]):
            if current.system_pfd > previous.system_pfd + 1e-15:
                out.append(current)
        return out


class DevelopmentCampaign(object):
    """An ordered sequence of activities applied to a two-channel system."""

    def __init__(self, activities: Sequence[Activity]) -> None:
        activities = list(activities)
        if not activities:
            raise ModelError("a campaign needs at least one activity")
        for index, activity in enumerate(activities):
            if not isinstance(activity, Activity):
                raise ModelError(f"item {index} is not an Activity")
        self._activities = activities

    @property
    def activities(self) -> List[Activity]:
        """The campaign plan (copy)."""
        return list(self._activities)

    def run(
        self,
        version_a: Version,
        version_b: Version,
        profile: UsageProfile,
        rng: SeedLike = None,
    ) -> CampaignTrajectory:
        """Run the campaign on one concrete version pair."""
        rng = as_generator(rng)

        def snapshot(step: int, kind: str, a: Version, b: Version) -> CampaignStep:
            joint = a.failure_mask & b.failure_mask
            return CampaignStep(
                step=step,
                kind=kind,
                pfd_a=a.pfd(profile),
                pfd_b=b.pfd(profile),
                system_pfd=float(profile.probabilities[joint].sum()),
                faults_a=a.n_faults,
                faults_b=b.n_faults,
            )

        current_a, current_b = version_a, version_b
        steps = [snapshot(0, "initial", current_a, current_b)]
        for index, activity in enumerate(self._activities, start=1):
            current_a, current_b = activity.apply(
                current_a, current_b, as_generator(rng)
            )
            steps.append(snapshot(index, activity.kind, current_a, current_b))
        return CampaignTrajectory(tuple(steps))

    @property
    def supports_batch(self) -> bool:
        """True iff every activity in the plan has a batch implementation."""
        return all(activity.supports_batch for activity in self._activities)

    def mean_final_system_pfd_estimator(
        self,
        population_a: VersionPopulation,
        profile: UsageProfile,
        population_b: VersionPopulation | None = None,
        n_replications: int = 200,
        rng: SeedLike = None,
        engine: str = "auto",
        chunk_size: int | None = None,
        n_jobs: int = 1,
    ):
        """The final-system-pfd average as a full :class:`MeanEstimator`.

        The estimator form carries the spread alongside the mean, so sweep
        records and experiment tables can report confidence half-widths
        for campaign comparisons, not just point values.

        With ``engine="auto"`` (default) or ``"batch"`` and a fully
        batch-capable plan (:attr:`supports_batch`), the whole average is
        computed on fault-matrix blocks — each activity transforms the
        entire replication block at once.  ``"scalar"`` (or any custom
        activity in the plan) keeps the per-pair trajectory loop.
        """
        if engine not in ("auto", "batch", "fastest", "scalar"):
            raise ModelError(
                "engine must be one of ('auto', 'batch', 'fastest', "
                f"'scalar'), got {engine!r}"
            )
        if engine == "fastest":
            # the campaign layer has no compiled kernels; the alias means
            # "the fastest path this plan supports", which is exactly auto
            engine = "auto"
        if engine == "batch" and not self.supports_batch:
            unsupported = [
                activity.kind
                for activity in self._activities
                if not activity.supports_batch
            ]
            raise ModelError(
                "engine='batch' requires every activity to support the "
                f"batch path; unsupported: {unsupported}"
            )
        if n_replications < 1:
            raise ModelError(
                f"n_replications must be >= 1, got {n_replications}"
            )
        population_b = population_b if population_b is not None else population_a
        rng = as_generator(rng)
        if engine != "scalar" and self.supports_batch:
            from ..mc.batch import _accumulate_mean, _plan_chunks, run_tasks
            from functools import partial

            tasks = _plan_chunks(n_replications, chunk_size, rng)
            kernel = partial(
                _campaign_chunk, self, population_a, population_b, profile
            )
            return _accumulate_mean(run_tasks(kernel, tasks, n_jobs))
        from ..mc.estimator import MeanEstimator

        estimator = MeanEstimator()
        for replication in spawn_many(rng, n_replications):
            streams = spawn_many(replication, 3)
            version_a = population_a.sample(streams[0])
            version_b = population_b.sample(streams[1])
            trajectory = self.run(version_a, version_b, profile, streams[2])
            estimator.add(trajectory.final.system_pfd)
        return estimator

    def mean_final_system_pfd(
        self,
        population_a: VersionPopulation,
        profile: UsageProfile,
        population_b: VersionPopulation | None = None,
        n_replications: int = 200,
        rng: SeedLike = None,
        engine: str = "auto",
        chunk_size: int | None = None,
        n_jobs: int = 1,
    ) -> float:
        """Average final system pfd over random version pairs.

        Point-value form of :meth:`mean_final_system_pfd_estimator` (same
        randomness: a given ``rng`` yields the identical mean).
        """
        return self.mean_final_system_pfd_estimator(
            population_a,
            profile,
            population_b=population_b,
            n_replications=n_replications,
            rng=rng,
            engine=engine,
            chunk_size=chunk_size,
            n_jobs=n_jobs,
        ).mean


def _campaign_chunk(
    campaign: DevelopmentCampaign,
    population_a: VersionPopulation,
    population_b: VersionPopulation,
    profile: UsageProfile,
    task: Tuple[int, int],
) -> Tuple[int, float, float]:
    """One chunk of whole-campaign replications → Welford ``(n, mean, m2)``.

    Module level so process pools can pickle it.  Mirrors the scalar
    randomness structure: one stream per channel's version block, then one
    child stream per activity in plan order.
    """
    from ..mc.batch import _reduce_values

    count, seed = task
    streams = spawn_many(as_generator(seed), 3)
    faults_a = population_a.sample_fault_matrix(count, streams[0])
    faults_b = population_b.sample_fault_matrix(count, streams[1])
    universe_a = population_a.universe
    universe_b = population_b.universe
    activity_streams = spawn_many(streams[2], len(campaign.activities))
    for activity, stream in zip(campaign.activities, activity_streams):
        faults_a, faults_b = activity.apply_batch(
            faults_a, faults_b, universe_a, universe_b, stream
        )
    joint = universe_a.failure_matrix(faults_a) & universe_b.failure_matrix(
        faults_b
    )
    values = joint @ profile.probabilities
    return _reduce_values(values)
