"""Combined development activities (paper §5, closing paragraph).

"In practical software development a combination of different activities is
utilised which introduce sources of dependence between the channels.  We
intend to study the effect of applying more than one activity to the
diverse channels and the interplay between their individual characteristics
(e.g. efficacy) and mutual diversity."

A :class:`DevelopmentCampaign` is an ordered sequence of *activities*
applied to a concrete two-channel system: shared or independent testing
stages, back-to-back sessions, clarification broadcasts, and mistake
injections.  Running a campaign yields a step-by-step trajectory of channel
and system reliability, making the interplay the paper asks about directly
observable; averaging over version pairs gives the population view.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..demand import UsageProfile
from ..errors import ModelError
from ..rng import as_generator, spawn_many
from ..testing import (
    BackToBackComparator,
    FixingPolicy,
    Oracle,
    SuiteGenerator,
    apply_testing,
    back_to_back_testing,
)
from ..types import SeedLike
from ..versions import Version
from ..populations import VersionPopulation
from .clarification import ClarificationProcess
from .mistakes import SpecificationMistake

__all__ = [
    "Activity",
    "SharedTestingActivity",
    "IndependentTestingActivity",
    "BackToBackActivity",
    "ClarificationActivity",
    "PerTeamClarificationActivity",
    "MistakeActivity",
    "CampaignStep",
    "CampaignTrajectory",
    "DevelopmentCampaign",
]


class Activity(abc.ABC):
    """One step of a development campaign, acting on a version pair."""

    @property
    @abc.abstractmethod
    def kind(self) -> str:
        """Short label for trajectory reports."""

    @abc.abstractmethod
    def apply(
        self,
        version_a: Version,
        version_b: Version,
        rng: np.random.Generator,
    ) -> Tuple[Version, Version]:
        """Run the activity; return the evolved version pair."""


class SharedTestingActivity(Activity):
    """One suite drawn from ``M`` and run against both channels."""

    def __init__(
        self,
        generator: SuiteGenerator,
        oracle: Oracle | None = None,
        fixing: FixingPolicy | None = None,
    ) -> None:
        self._generator = generator
        self._oracle = oracle
        self._fixing = fixing

    @property
    def kind(self) -> str:
        return "shared testing"

    def apply(self, version_a, version_b, rng):
        streams = spawn_many(rng, 3)
        suite = self._generator.sample(streams[0])
        after_a = apply_testing(
            version_a, suite, self._oracle, self._fixing, rng=streams[1]
        ).after
        after_b = apply_testing(
            version_b, suite, self._oracle, self._fixing, rng=streams[2]
        ).after
        return after_a, after_b


class IndependentTestingActivity(Activity):
    """Each channel tested on its own draw from ``M``."""

    def __init__(
        self,
        generator: SuiteGenerator,
        oracle: Oracle | None = None,
        fixing: FixingPolicy | None = None,
    ) -> None:
        self._generator = generator
        self._oracle = oracle
        self._fixing = fixing

    @property
    def kind(self) -> str:
        return "independent testing"

    def apply(self, version_a, version_b, rng):
        streams = spawn_many(rng, 4)
        suite_a = self._generator.sample(streams[0])
        suite_b = self._generator.sample(streams[1])
        after_a = apply_testing(
            version_a, suite_a, self._oracle, self._fixing, rng=streams[2]
        ).after
        after_b = apply_testing(
            version_b, suite_b, self._oracle, self._fixing, rng=streams[3]
        ).after
        return after_a, after_b


class BackToBackActivity(Activity):
    """A cross-checking session on one shared suite (no external oracle)."""

    def __init__(
        self,
        generator: SuiteGenerator,
        comparator: BackToBackComparator,
        fixing: FixingPolicy | None = None,
    ) -> None:
        self._generator = generator
        self._comparator = comparator
        self._fixing = fixing

    @property
    def kind(self) -> str:
        return "back-to-back"

    def apply(self, version_a, version_b, rng):
        streams = spawn_many(rng, 2)
        suite = self._generator.sample(streams[0])
        outcome_a, outcome_b = back_to_back_testing(
            version_a,
            version_b,
            suite,
            self._comparator,
            self._fixing,
            rng=streams[1],
        )
        return outcome_a.after, outcome_b.after


class ClarificationActivity(Activity):
    """A clarification drawn from the process and broadcast to both teams."""

    def __init__(self, process: ClarificationProcess) -> None:
        self._process = process

    @property
    def kind(self) -> str:
        return "clarification"

    def apply(self, version_a, version_b, rng):
        suite = self._process.generator.sample(rng)
        after_a = apply_testing(version_a, suite).after
        after_b = apply_testing(version_b, suite).after
        return after_a, after_b


class PerTeamClarificationActivity(Activity):
    """Each team independently discovers and resolves its own ambiguity.

    The diversity-preserving counterfactual to
    :class:`ClarificationActivity`: two independent draws from the same
    clarification process, one per channel.
    """

    def __init__(self, process: ClarificationProcess) -> None:
        self._process = process

    @property
    def kind(self) -> str:
        return "per-team clarification"

    def apply(self, version_a, version_b, rng):
        streams = spawn_many(rng, 2)
        suite_a = self._process.generator.sample(streams[0])
        suite_b = self._process.generator.sample(streams[1])
        after_a = apply_testing(version_a, suite_a).after
        after_b = apply_testing(version_b, suite_b).after
        return after_a, after_b


class MistakeActivity(Activity):
    """A wrong common instruction: the mistake's faults enter both channels."""

    def __init__(self, mistake: SpecificationMistake) -> None:
        self._mistake = mistake

    @property
    def kind(self) -> str:
        return "common mistake"

    def apply(self, version_a, version_b, rng):
        ids = np.asarray(self._mistake.fault_ids, dtype=np.int64)
        return version_a.with_faults(ids), version_b.with_faults(ids)


@dataclass(frozen=True)
class CampaignStep:
    """System state after one campaign activity.

    ``step`` 0 is the initial state with ``kind = "initial"``.
    """

    step: int
    kind: str
    pfd_a: float
    pfd_b: float
    system_pfd: float
    faults_a: int
    faults_b: int


@dataclass(frozen=True)
class CampaignTrajectory:
    """The per-step history of one campaign run."""

    steps: tuple

    def __post_init__(self) -> None:
        object.__setattr__(self, "steps", tuple(self.steps))

    def __len__(self) -> int:
        return len(self.steps)

    def __getitem__(self, index: int) -> CampaignStep:
        return self.steps[index]

    @property
    def final(self) -> CampaignStep:
        """State after the last activity."""
        return self.steps[-1]

    def system_pfds(self) -> np.ndarray:
        """System pfd by step."""
        return np.array([step.system_pfd for step in self.steps])

    def degrading_steps(self) -> List[CampaignStep]:
        """Steps that made the *system* worse (only mistakes can)."""
        out = []
        for previous, current in zip(self.steps, self.steps[1:]):
            if current.system_pfd > previous.system_pfd + 1e-15:
                out.append(current)
        return out


class DevelopmentCampaign(object):
    """An ordered sequence of activities applied to a two-channel system."""

    def __init__(self, activities: Sequence[Activity]) -> None:
        activities = list(activities)
        if not activities:
            raise ModelError("a campaign needs at least one activity")
        for index, activity in enumerate(activities):
            if not isinstance(activity, Activity):
                raise ModelError(f"item {index} is not an Activity")
        self._activities = activities

    @property
    def activities(self) -> List[Activity]:
        """The campaign plan (copy)."""
        return list(self._activities)

    def run(
        self,
        version_a: Version,
        version_b: Version,
        profile: UsageProfile,
        rng: SeedLike = None,
    ) -> CampaignTrajectory:
        """Run the campaign on one concrete version pair."""
        rng = as_generator(rng)

        def snapshot(step: int, kind: str, a: Version, b: Version) -> CampaignStep:
            joint = a.failure_mask & b.failure_mask
            return CampaignStep(
                step=step,
                kind=kind,
                pfd_a=a.pfd(profile),
                pfd_b=b.pfd(profile),
                system_pfd=float(profile.probabilities[joint].sum()),
                faults_a=a.n_faults,
                faults_b=b.n_faults,
            )

        current_a, current_b = version_a, version_b
        steps = [snapshot(0, "initial", current_a, current_b)]
        for index, activity in enumerate(self._activities, start=1):
            current_a, current_b = activity.apply(
                current_a, current_b, as_generator(rng)
            )
            steps.append(snapshot(index, activity.kind, current_a, current_b))
        return CampaignTrajectory(tuple(steps))

    def mean_final_system_pfd(
        self,
        population_a: VersionPopulation,
        profile: UsageProfile,
        population_b: VersionPopulation | None = None,
        n_replications: int = 200,
        rng: SeedLike = None,
    ) -> float:
        """Average final system pfd over random version pairs."""
        if n_replications < 1:
            raise ModelError(
                f"n_replications must be >= 1, got {n_replications}"
            )
        population_b = population_b if population_b is not None else population_a
        rng = as_generator(rng)
        total = 0.0
        for replication in spawn_many(rng, n_replications):
            streams = spawn_many(replication, 3)
            version_a = population_a.sample(streams[0])
            version_b = population_b.sample(streams[1])
            trajectory = self.run(version_a, version_b, profile, streams[2])
            total += trajectory.final.system_pfd
        return total / n_replications
