"""Staged testing of concrete versions.

Where :mod:`repro.growth.curves` averages over the generative measures,
this module follows *one realised system* through a sequence of test
campaigns — the practitioner's view: submit the pair to acceptance testing,
fix what is found, submit again.  Each stage may use its own suite (and,
optionally, imperfect oracle/fixing); the trajectory records per-stage
reliability of both channels and of the system.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..demand import UsageProfile
from ..errors import ModelError
from ..rng import as_generator, spawn_many
from ..testing import FixingPolicy, Oracle, TestSuite, apply_testing
from ..types import SeedLike
from ..versions import Version

__all__ = ["StageRecord", "TestingTrajectory", "run_staged_testing"]


@dataclass(frozen=True)
class StageRecord:
    """State after one testing stage.

    Attributes
    ----------
    stage:
        Stage index (0 = before any testing).
    pfd_a, pfd_b:
        Channel pfds after the stage.
    system_pfd:
        1-out-of-2 system pfd after the stage.
    faults_a, faults_b:
        Fault counts remaining in each channel.
    detected_a, detected_b:
        Failures detected during the stage (0 for the initial record).
    """

    stage: int
    pfd_a: float
    pfd_b: float
    system_pfd: float
    faults_a: int
    faults_b: int
    detected_a: int
    detected_b: int


@dataclass(frozen=True)
class TestingTrajectory:
    """The full staged-testing history of one version pair."""

    __test__ = False  # prevent pytest collection (library class)

    records: Tuple[StageRecord, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "records", tuple(self.records))

    def __len__(self) -> int:
        return len(self.records)

    def __getitem__(self, index: int) -> StageRecord:
        return self.records[index]

    @property
    def initial(self) -> StageRecord:
        """State before any testing."""
        return self.records[0]

    @property
    def final(self) -> StageRecord:
        """State after the last stage."""
        return self.records[-1]

    def system_pfds(self) -> np.ndarray:
        """System pfd per stage, as an array."""
        return np.array([record.system_pfd for record in self.records])

    def version_pfds(self) -> Tuple[np.ndarray, np.ndarray]:
        """Per-channel pfd arrays ``(pfd_a_by_stage, pfd_b_by_stage)``."""
        return (
            np.array([record.pfd_a for record in self.records]),
            np.array([record.pfd_b for record in self.records]),
        )

    def is_monotone(self, tolerance: float = 1e-12) -> bool:
        """True iff no pfd ever increases across stages.

        Guaranteed under any oracle/fixing combination in this library,
        because fixing never introduces faults.
        """
        system = self.system_pfds()
        pfd_a, pfd_b = self.version_pfds()
        return bool(
            np.all(np.diff(system) <= tolerance)
            and np.all(np.diff(pfd_a) <= tolerance)
            and np.all(np.diff(pfd_b) <= tolerance)
        )


def run_staged_testing(
    version_a: Version,
    version_b: Version,
    suites: Sequence[Tuple[TestSuite, TestSuite]],
    profile: UsageProfile,
    oracle: Oracle | None = None,
    fixing: FixingPolicy | None = None,
    rng: SeedLike = None,
) -> TestingTrajectory:
    """Run a version pair through successive testing stages.

    Parameters
    ----------
    version_a, version_b:
        The initial channels.
    suites:
        One ``(suite_for_a, suite_for_b)`` pair per stage; pass the same
        suite twice for a shared-suite stage.
    profile:
        Usage measure for the recorded pfds.
    oracle, fixing, rng:
        Optional imperfect-testing components (perfect by default).
    """
    if not suites:
        raise ModelError("at least one testing stage is required")
    rng = as_generator(rng)

    def record(stage: int, a: Version, b: Version, da: int, db: int) -> StageRecord:
        joint = a.failure_mask & b.failure_mask
        return StageRecord(
            stage=stage,
            pfd_a=a.pfd(profile),
            pfd_b=b.pfd(profile),
            system_pfd=float(profile.probabilities[joint].sum()),
            faults_a=a.n_faults,
            faults_b=b.n_faults,
            detected_a=da,
            detected_b=db,
        )

    current_a = version_a
    current_b = version_b
    records: List[StageRecord] = [record(0, current_a, current_b, 0, 0)]
    for stage, (suite_a, suite_b) in enumerate(suites, start=1):
        stream_a, stream_b = spawn_many(rng, 2)
        outcome_a = apply_testing(current_a, suite_a, oracle, fixing, rng=stream_a)
        outcome_b = apply_testing(current_b, suite_b, oracle, fixing, rng=stream_b)
        current_a = outcome_a.after
        current_b = outcome_b.after
        records.append(
            record(
                stage,
                current_a,
                current_b,
                outcome_a.detected_failures,
                outcome_b.detected_failures,
            )
        )
    return TestingTrajectory(tuple(records))
