"""Reliability growth under testing.

The paper's dynamic story, quantified: how version pfd and 1-out-of-2
system pfd fall as testing effort (suite size) grows, under every testing
regime, including back-to-back testing.  This reproduces the style of the
paper's reference [5] (Djambazov & Popov, ISSRE'95 — "the effects of
testing on the reliability of single version and 1-out-of-2 software") and
provides the quantitative substrate for the §3.4.1 cost-trade-off
scenarios and the law-of-diminishing-returns observations.
"""

from .curves import (
    GrowthCurve,
    back_to_back_growth_curves,
    system_growth_curves,
    version_growth_curve,
)
from .stages import StageRecord, TestingTrajectory, run_staged_testing
from .diminishing import (
    diminishing_returns_holds,
    halving_effort,
    marginal_gains,
)

__all__ = [
    "GrowthCurve",
    "version_growth_curve",
    "system_growth_curves",
    "back_to_back_growth_curves",
    "TestingTrajectory",
    "StageRecord",
    "run_staged_testing",
    "marginal_gains",
    "halving_effort",
    "diminishing_returns_holds",
]
