"""Growth curves: pfd as a function of testing effort.

All curves share one x-axis — the number of demands in the (operational)
test suite — and a y-axis of probability of failure per demand.  Exact
values come from :class:`~repro.analytic.BernoulliExactEngine` whenever the
population is Bernoulli; back-to-back curves are inherently dynamic and are
estimated by simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from ..analytic.bernoulli_exact import BernoulliExactEngine
from ..demand import UsageProfile
from ..errors import ModelError
from ..populations import BernoulliFaultPopulation, VersionPopulation
from ..rng import as_generator, spawn_many
from ..testing import (
    BackToBackComparator,
    OperationalSuiteGenerator,
    back_to_back_testing,
)
from ..types import SeedLike
from ..versions import FailureOutputModel

__all__ = [
    "GrowthCurve",
    "version_growth_curve",
    "system_growth_curves",
    "back_to_back_growth_curves",
]


@dataclass(frozen=True)
class GrowthCurve:
    """A labelled pfd-versus-effort series.

    Attributes
    ----------
    label:
        What the series measures (e.g. ``"version pfd"``).
    sizes:
        Suite sizes (testing effort) — the x-axis.
    values:
        The pfd at each effort level — the y-axis.
    exact:
        True when values are analytic rather than simulated.
    """

    label: str
    sizes: np.ndarray
    values: np.ndarray
    exact: bool

    def __post_init__(self) -> None:
        sizes = np.asarray(self.sizes, dtype=np.int64)
        values = np.asarray(self.values, dtype=np.float64)
        if sizes.ndim != 1 or sizes.shape != values.shape:
            raise ModelError(
                f"sizes {sizes.shape} and values {values.shape} must be "
                "1-D and equal length"
            )
        if sizes.size and np.any(np.diff(sizes) <= 0):
            raise ModelError("sizes must be strictly increasing")
        object.__setattr__(self, "sizes", sizes)
        object.__setattr__(self, "values", values)

    @property
    def initial(self) -> float:
        """pfd at the smallest effort level."""
        return float(self.values[0])

    @property
    def final(self) -> float:
        """pfd at the largest effort level."""
        return float(self.values[-1])

    @property
    def total_improvement(self) -> float:
        """``initial − final`` — total pfd reduction over the sweep."""
        return self.initial - self.final

    def is_nonincreasing(self, tolerance: float = 1e-9) -> bool:
        """True iff the curve never rises by more than ``tolerance``.

        Exact curves under perfect testing are monotone by construction;
        simulated curves may need a noise tolerance.
        """
        return bool(np.all(np.diff(self.values) <= tolerance))

    def dominates(self, other: "GrowthCurve", tolerance: float = 0.0) -> bool:
        """True iff this curve is pointwise ≤ ``other`` (more reliable)."""
        if not np.array_equal(self.sizes, other.sizes):
            raise ModelError("curves have different effort grids")
        return bool(np.all(self.values <= other.values + tolerance))


def _effort_grid(sizes: Sequence[int]) -> np.ndarray:
    grid = np.asarray(list(sizes), dtype=np.int64)
    if grid.size == 0:
        raise ModelError("at least one suite size is required")
    if np.any(grid < 0):
        raise ModelError("suite sizes must be >= 0")
    if np.any(np.diff(grid) <= 0):
        raise ModelError("suite sizes must be strictly increasing")
    return grid


def version_growth_curve(
    population: BernoulliFaultPopulation,
    profile: UsageProfile,
    sizes: Sequence[int],
) -> GrowthCurve:
    """Exact mean post-test version pfd ``E_Q[ζ_n(X)]`` over an effort grid."""
    grid = _effort_grid(sizes)
    engine = BernoulliExactEngine(population.universe, profile)
    values = np.array([engine.version_pfd(population, int(n)) for n in grid])
    return GrowthCurve("version pfd", grid, values, exact=True)


def system_growth_curves(
    population_a: BernoulliFaultPopulation,
    profile: UsageProfile,
    sizes: Sequence[int],
    population_b: BernoulliFaultPopulation | None = None,
) -> Dict[str, GrowthCurve]:
    """Exact 1-out-of-2 system pfd curves under both suite-sharing regimes.

    Returns curves keyed ``"independent suites"`` and ``"same suite"``
    (eqs. (22)/(24) and (23)/(25) respectively, per effort level).  The
    same-suite curve is pointwise ≥ the independent-suites curve in the
    same-population case; under forced diversity the gap is the summed
    suite covariance and may favour either regime.
    """
    grid = _effort_grid(sizes)
    engine = BernoulliExactEngine(population_a.universe, profile)
    independent = np.array(
        [
            engine.system_pfd_independent_suites(
                population_a, int(n), population_b
            )
            for n in grid
        ]
    )
    same = np.array(
        [
            engine.system_pfd_same_suite(population_a, int(n), population_b)
            for n in grid
        ]
    )
    return {
        "independent suites": GrowthCurve(
            "system pfd (independent suites)", grid, independent, exact=True
        ),
        "same suite": GrowthCurve(
            "system pfd (same suite)", grid, same, exact=True
        ),
    }


def back_to_back_growth_curves(
    population_a: VersionPopulation,
    profile: UsageProfile,
    sizes: Sequence[int],
    output_model: FailureOutputModel,
    population_b: VersionPopulation | None = None,
    n_replications: int = 200,
    rng: SeedLike = None,
) -> Dict[str, GrowthCurve]:
    """Simulated back-to-back growth: system and mean version pfd vs effort.

    Every replication draws one version pair and one *maximal-length*
    operational suite, then replays prefixes of it for each effort level —
    a nested design that makes the curve internally consistent (the
    ``n+m``-test run extends the ``n``-test run instead of resampling).
    """
    grid = _effort_grid(sizes)
    if n_replications < 1:
        raise ModelError(f"n_replications must be >= 1, got {n_replications}")
    population_b = population_b if population_b is not None else population_a
    population_a.space.require_same(profile.space)
    rng = as_generator(rng)
    comparator = BackToBackComparator(output_model)
    generator = OperationalSuiteGenerator(profile, int(grid[-1]))

    system_totals = np.zeros(grid.size)
    version_totals = np.zeros(grid.size)
    for replication in spawn_many(rng, n_replications):
        streams = spawn_many(replication, 3)
        version_a = population_a.sample(streams[0])
        version_b = population_b.sample(streams[1])
        full_suite = generator.sample(streams[2])
        for index, n in enumerate(grid):
            prefix = full_suite.prefix(int(n))
            outcome_a, outcome_b = back_to_back_testing(
                version_a, version_b, prefix, comparator
            )
            joint = outcome_a.after.failure_mask & outcome_b.after.failure_mask
            system_totals[index] += float(profile.probabilities[joint].sum())
            version_totals[index] += 0.5 * (
                outcome_a.after.pfd(profile) + outcome_b.after.pfd(profile)
            )
    label = f"back-to-back ({output_model.mode})"
    return {
        "system": GrowthCurve(
            f"system pfd, {label}",
            grid,
            system_totals / n_replications,
            exact=False,
        ),
        "version": GrowthCurve(
            f"version pfd, {label}",
            grid,
            version_totals / n_replications,
            exact=False,
        ),
    }
