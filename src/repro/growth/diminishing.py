"""Diminishing-returns diagnostics on growth curves.

The paper leans on "the law of diminishing returns" in its §3.4.1 cost
argument — later testing removes less failure probability per test than
earlier testing, because large (easy) faults go first.  These helpers
quantify that on any :class:`~repro.growth.curves.GrowthCurve`.
"""

from __future__ import annotations

import numpy as np

from ..errors import ModelError
from .curves import GrowthCurve

__all__ = ["marginal_gains", "halving_effort", "diminishing_returns_holds"]


def marginal_gains(curve: GrowthCurve) -> np.ndarray:
    """pfd reduction per additional test, between consecutive grid points.

    Entry ``i`` is ``(values[i] − values[i+1]) / (sizes[i+1] − sizes[i])`` —
    the average improvement rate over that effort interval.
    """
    if curve.sizes.size < 2:
        raise ModelError("need at least two effort levels")
    drops = -np.diff(curve.values)
    widths = np.diff(curve.sizes).astype(np.float64)
    return drops / widths


def halving_effort(curve: GrowthCurve) -> int:
    """Smallest grid size at which the pfd has at least halved.

    Returns ``-1`` if the curve never reaches half its initial value —
    callers decide whether that is an error for their model.
    """
    if curve.initial <= 0.0:
        return int(curve.sizes[0])
    target = curve.initial / 2.0
    reached = np.flatnonzero(curve.values <= target)
    if reached.size == 0:
        return -1
    return int(curve.sizes[reached[0]])


def diminishing_returns_holds(
    curve: GrowthCurve, tolerance: float = 1e-12
) -> bool:
    """True iff the marginal gain rate never increases along the curve.

    Strict convexity is not guaranteed for arbitrary fault structures at
    every single step, but exact operational-testing curves for mixed
    region sizes are convex in the large; the tolerance absorbs
    floating-point noise and callers can relax it for simulated curves.
    """
    gains = marginal_gains(curve)
    return bool(np.all(np.diff(gains) <= tolerance))
