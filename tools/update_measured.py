#!/usr/bin/env python
"""Re-run the bundled mutation campaigns and regenerate measured data.

Runs the full mutation campaign for every corpus target under
``examples/targets/`` (or a named subset), writing per-target campaign
stores to ``examples/campaigns/<name>.jsonl`` and rewriting
``src/repro/mutation/measured.py`` from the stored outcomes::

    PYTHONPATH=src python tools/update_measured.py             # all targets
    PYTHONPATH=src python tools/update_measured.py stats leap  # a subset

Campaign stores are resumable: an interrupted run picks up where it
stopped, and re-running after a target edit executes only the work the
store does not already hold (edited targets change their content hashes,
so every mutant re-runs — that is the point).

Commit both the stores and the regenerated ``measured.py``; the
consistency test ``tests/mutation/test_measured.py`` fails when a corpus
program changes without re-measurement.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
CAMPAIGNS_DIR = REPO_ROOT / "examples" / "campaigns"
MEASURED_PATH = REPO_ROOT / "src" / "repro" / "mutation" / "measured.py"

#: campaign configuration the committed measurements are pinned to
CAMPAIGN_TIMEOUT = 20.0
CAMPAIGN_SEED = 0

_HEADER = '''"""Committed campaign measurements — GENERATED, do not edit by hand.

Regenerate with ``python tools/update_measured.py``, which runs the full
mutation campaign for every bundled corpus target (stores under
``examples/campaigns/``) and rewrites this module from the results.  The
``m*`` experiments read these measurements so that experiment runs stay
deterministic and dependency-free — no subprocess campaigns at
experiment time.

Each entry records the target's content hashes at measurement time; the
consistency test (``tests/mutation/test_measured.py``) fails when a
corpus program or its tests change without re-measuring.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..errors import ModelError
from .estimators import DetectionData

__all__ = [
    "MEASURED",
    "measured_detection_data",
    "measured_kills",
    "measured_target_names",
]

# target name -> campaign measurement (populated by tools/update_measured.py)
'''

_FOOTER = '''

def measured_target_names() -> List[str]:
    """Bundled targets with committed measurements, sorted."""
    return sorted(MEASURED)


def measured_detection_data(target: str) -> DetectionData:
    """The committed :class:`DetectionData` for one bundled target."""
    try:
        entry = MEASURED[target]
    except KeyError:
        known = ", ".join(measured_target_names()) or "<none>"
        raise ModelError(
            f"no committed measurement for target {target!r} (known: {known})"
        ) from None
    mutants = entry["mutants"]
    return DetectionData(
        counts=tuple(int(m["count"]) for m in mutants),
        n_tests=int(entry["n_tests"]),
        labels=tuple(str(m["id"]) for m in mutants),
    )


def measured_kills(target: str) -> Tuple[Tuple[int, ...], ...]:
    """Per-mutant killing-test indices for one bundled target.

    One tuple per mutant (in ``MEASURED`` order) holding the sorted
    indices — into the target's sorted baseline nodeid list — of the
    tests that detected the mutant.  Timeout/error mutants count every
    test, matching how ``detected`` is tallied by the campaign.
    """
    try:
        entry = MEASURED[target]
    except KeyError:
        known = ", ".join(measured_target_names()) or "<none>"
        raise ModelError(
            f"no committed measurement for target {target!r} (known: {known})"
        ) from None
    return tuple(tuple(m["kills"]) for m in entry["mutants"])
'''


def _render_measured(entries: dict) -> str:
    lines = [_HEADER, "MEASURED: Dict[str, dict] = {"]
    for name in sorted(entries):
        entry = entries[name]
        lines.append(f"    {name!r}: {{")
        lines.append(f"        \"n_tests\": {entry['n_tests']},")
        lines.append(f"        \"program_sha\": {entry['program_sha']!r},")
        lines.append(f"        \"tests_sha\": {entry['tests_sha']!r},")
        lines.append("        \"mutants\": [")
        for mutant in entry["mutants"]:
            kills = "(" + ", ".join(str(i) for i in mutant["kills"]) + (
                ",)" if len(mutant["kills"]) == 1 else ")"
            )
            lines.append(
                "            {"
                f"\"id\": {mutant['id']!r}, "
                f"\"op\": {mutant['op']!r}, "
                f"\"line\": {mutant['line']}, "
                f"\"count\": {mutant['count']}, "
                f"\"status\": {mutant['status']!r}, "
                f"\"kills\": {kills}"
                "},"
            )
        lines.append("        ],")
        lines.append("    },")
    lines.append("}")
    return "\n".join(lines) + _FOOTER


def run_campaigns(names) -> int:
    from repro.mutation import MutationCampaign, bundled_targets, load_outcomes
    from repro.store import ResultStore

    targets = bundled_targets()
    unknown = [name for name in names if name not in targets]
    if unknown:
        print(
            f"unknown target(s): {', '.join(unknown)} "
            f"(known: {', '.join(sorted(targets))})",
            file=sys.stderr,
        )
        return 2
    selected = names or sorted(targets)
    CAMPAIGNS_DIR.mkdir(parents=True, exist_ok=True)

    entries = {}
    for name in sorted(targets):
        target = targets[name]
        store = ResultStore(CAMPAIGNS_DIR / f"{name}.jsonl")
        if name in selected:
            campaign = MutationCampaign(
                target, store, timeout=CAMPAIGN_TIMEOUT, seed=CAMPAIGN_SEED
            )
            report = campaign.run()
            print(
                f"{name}: {report.total} mutants "
                f"({report.executed} executed, {report.cached} cached) — "
                f"{report.killed} killed, {report.survived} survived, "
                f"{report.timeouts} timeouts, {report.errors} errors; "
                f"score {report.mutation_score:.2f} "
                f"in {report.elapsed_seconds:.1f}s"
            )
        outcomes = load_outcomes(store, target)
        if not outcomes:
            print(f"{name}: no stored outcomes; skipping", file=sys.stderr)
            continue
        nodeids = sorted(outcomes[0].tests)
        entries[name] = {
            "n_tests": outcomes[0].n_tests,
            "program_sha": target.source_sha,
            "tests_sha": target.tests_sha,
            "mutants": [
                {
                    "id": outcome.mutant_id,
                    "op": outcome.operator,
                    "line": outcome.lineno,
                    "count": outcome.detected,
                    "status": outcome.status,
                    "kills": tuple(
                        index
                        for index, nodeid in enumerate(nodeids)
                        if outcome.tests.get(nodeid, "missing") != "passed"
                    ),
                }
                for outcome in outcomes
            ],
        }

    content = _render_measured(entries)
    changed = (
        not MEASURED_PATH.exists()
        or MEASURED_PATH.read_text(encoding="utf-8") != content
    )
    MEASURED_PATH.write_text(content, encoding="utf-8")
    status = "updated" if changed else "unchanged"
    print(f"{status} {MEASURED_PATH.relative_to(REPO_ROOT)}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Re-run bundled mutation campaigns; regenerate measured.py."
    )
    parser.add_argument(
        "targets",
        nargs="*",
        help="target names to re-run (default: every bundled target)",
    )
    args = parser.parse_args(argv)
    return run_campaigns(args.targets)


if __name__ == "__main__":
    sys.exit(main())
