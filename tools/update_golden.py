#!/usr/bin/env python
"""Regenerate the golden experiment snapshots under tests/experiments/golden/.

The golden suite (``tests/experiments/test_golden.py``) locks every
registered experiment's fast-mode, seed-0 output — claim verdicts, result
tables, notes — against these checked-in JSON snapshots, so a refactor
that changes any reproduced number fails loudly.  When a change is
*intended*, regenerate from the repository root::

    PYTHONPATH=src python tools/update_golden.py            # all ids
    PYTHONPATH=src python tools/update_golden.py e07 a2     # selected ids

(equivalently: ``pytest tests/experiments/test_golden.py --update-golden``)
and commit the diff — the diff *is* the review artifact: every changed
number is visible to the reviewer.

Snapshots are ``ExperimentResult.to_payload()`` serialized with sorted
keys and repr-stable floats, so regeneration on any platform produces
byte-identical files for identical results.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

GOLDEN_DIR = (
    pathlib.Path(__file__).resolve().parent.parent
    / "tests"
    / "experiments"
    / "golden"
)

#: run configuration the snapshots are pinned to; test_golden.py imports
#: these (by file path), so tool and test cannot drift apart
GOLDEN_SEED = 0
GOLDEN_FAST = True


def snapshot_path(experiment_id: str) -> pathlib.Path:
    """The checked-in snapshot file for one experiment id."""
    return GOLDEN_DIR / f"{experiment_id}.json"


def render_snapshot(payload: dict) -> str:
    """Snapshot file content for a result payload (stable key order)."""
    return json.dumps(payload, indent=2, sort_keys=True, allow_nan=False) + "\n"


def update(experiment_ids) -> int:
    from repro.experiments import run_experiment

    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for experiment_id in experiment_ids:
        result = run_experiment(experiment_id, seed=GOLDEN_SEED, fast=GOLDEN_FAST)
        path = snapshot_path(experiment_id)
        content = render_snapshot(result.to_payload())
        changed = not path.exists() or path.read_text() != content
        path.write_text(content)
        status = "updated" if changed else "unchanged"
        verdict = "PASS" if result.passed else "FAIL"
        print(f"{status:<9} {path.relative_to(GOLDEN_DIR.parent.parent.parent)}"
              f"  ({verdict}, {len(result.claims)} claims)")
    return 0


def main(argv=None) -> int:
    from repro.errors import ModelError
    from repro.experiments import all_experiment_ids

    parser = argparse.ArgumentParser(
        description="Regenerate golden experiment snapshots."
    )
    parser.add_argument(
        "ids",
        nargs="*",
        help="experiment ids to regenerate (default: every registered id)",
    )
    args = parser.parse_args(argv)
    known = all_experiment_ids()
    unknown = [eid for eid in args.ids if eid not in known]
    if unknown:
        raise ModelError(
            f"unknown experiment id(s): {unknown}; known: {', '.join(known)}"
        )
    stale = sorted(
        path.stem
        for path in GOLDEN_DIR.glob("*.json")
        if path.stem not in known
    )
    if stale and not args.ids:
        for experiment_id in stale:
            snapshot_path(experiment_id).unlink()
            print(f"removed   stale snapshot {experiment_id}.json")
    return update(args.ids or known)


if __name__ == "__main__":
    sys.exit(main())
