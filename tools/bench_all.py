#!/usr/bin/env python
"""Run the benchmark suites: ``BENCH_adaptive.json`` + ``BENCH_service.json``
+ ``BENCH_mutation.json`` + ``BENCH_kernels.json`` +
``BENCH_localization.json``.

Five suites, selectable with ``--suites`` (default: all):

* **adaptive** — the precision engine's headline numbers are *replication
  counts*: how many replications each estimand needs to reach a relative
  half-width target under plain sampling, and the speedup variance
  reduction buys (plain / VR replications-to-target), measured through
  :func:`benchmarks.bench_adaptive.measure`;
* **service** — the serving layer's load harness
  (``benchmarks/bench_service.py``): cold vs warm (cached) latency,
  request coalescing, and mixed-workload throughput/p50/p99 against an
  in-process server;
* **mutation** — the mutation harness (``benchmarks/bench_mutation.py``):
  mutant-generation throughput, a real campaign's cold-vs-warm (resume
  cache hit) ratio, and estimator fit throughput;
* **kernels** — the compiled backend (``benchmarks/bench_kernels.py``):
  njit scored kernels vs their numpy reference twins, with a >= 5x
  speedup gate when numba is installed (the record states honestly when
  it is not and no gate applies);
* **localization** — the SBFL localized-growth workload
  (``benchmarks/bench_localization.py``): vectorized counter-RNG rounds
  vs the per-replication reference path, with a >= 10x speedup gate
  (pure numpy on both sides, so it applies on every host).

::

    PYTHONPATH=src python tools/bench_all.py                 # all suites
    PYTHONPATH=src python tools/bench_all.py --suites adaptive --full
    PYTHONPATH=src python tools/bench_all.py --suites service --service-smoke
    PYTHONPATH=src python tools/bench_all.py --suites mutation
    PYTHONPATH=src python tools/bench_all.py --suites kernels
    PYTHONPATH=src python tools/bench_all.py --suites localization

``--full`` additionally runs the whole pytest-benchmark suite
(``benchmarks/``) with ``--benchmark-json`` and folds each benchmark's
mean wall-time into the adaptive record — slower, but gives the complete
trajectory point.  Exit status is non-zero when any gate fails (VR
speedup < 1, warm speedup < 50x, or broken coalescing — the same gates
CI enforces), so the files are only written from healthy runs.
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import pathlib
import subprocess
import sys
import tempfile

ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUT = ROOT / "BENCH_adaptive.json"
DEFAULT_SERVICE_OUT = ROOT / "BENCH_service.json"
DEFAULT_MUTATION_OUT = ROOT / "BENCH_mutation.json"
DEFAULT_KERNELS_OUT = ROOT / "BENCH_kernels.json"
DEFAULT_LOCALIZATION_OUT = ROOT / "BENCH_localization.json"
SUITES = ("adaptive", "service", "mutation", "kernels", "localization")


def _load_bench(name: str):
    """Import a benchmarks/*.py module by path (benchmarks/ is not a
    package); each module's registry/measure functions are the single
    source of truth for what gets benchmarked."""
    path = ROOT / "benchmarks" / f"{name}.py"
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _load_bench_adaptive():
    return _load_bench("bench_adaptive")


def run_adaptive_suite(rel_hw: float, budget: int) -> dict:
    """Replications-to-target and VR speedups for every estimand."""
    bench = _load_bench_adaptive()
    estimands = {}
    for label in sorted(bench.ESTIMANDS):
        print(f"measuring {label} (rel_hw={rel_hw}) ...", flush=True)
        record = bench.measure(label, rel_hw=rel_hw, budget=budget)
        estimands[label] = record
        print(
            f"  plain {record['replications_plain']} -> vr "
            f"{record['replications_vr']} replications "
            f"(speedup {record['vr_speedup']:.2f}x)",
            flush=True,
        )
    return estimands


def run_full_benchmarks() -> dict:
    """The pytest-benchmark suite's mean wall-times, keyed by test name."""
    with tempfile.TemporaryDirectory() as tmp:
        out = pathlib.Path(tmp) / "bench.json"
        completed = subprocess.run(
            [
                sys.executable,
                "-m",
                "pytest",
                str(ROOT / "benchmarks"),
                "-q",
                f"--benchmark-json={out}",
            ],
            cwd=ROOT,
        )
        if completed.returncode != 0:
            raise SystemExit("pytest-benchmark suite failed")
        data = json.loads(out.read_text())
    return {
        bench["name"]: {
            "mean_seconds": bench["stats"]["mean"],
            "extra_info": bench.get("extra_info", {}),
        }
        for bench in data.get("benchmarks", [])
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Consolidate the benchmark suite into BENCH_adaptive.json"
    )
    parser.add_argument(
        "--out",
        default=str(DEFAULT_OUT),
        metavar="FILE",
        help=f"output path (default {DEFAULT_OUT.name} at the repo root)",
    )
    parser.add_argument(
        "--rel-hw",
        type=float,
        default=0.05,
        help="relative half-width target for the replications-to-target "
        "measurements (default 0.05)",
    )
    parser.add_argument(
        "--budget",
        type=int,
        default=120_000,
        help="replication budget per measurement (default 120000)",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="also run the pytest-benchmark suite and record wall-times",
    )
    parser.add_argument(
        "--suites",
        default="adaptive,service,mutation,kernels,localization",
        metavar="LIST",
        help="comma-separated suites to run "
        "(default: adaptive,service,mutation,kernels,localization)",
    )
    parser.add_argument(
        "--service-out",
        default=str(DEFAULT_SERVICE_OUT),
        metavar="FILE",
        help="service-suite output path "
        f"(default {DEFAULT_SERVICE_OUT.name} at the repo root)",
    )
    parser.add_argument(
        "--service-smoke",
        action="store_true",
        help="short service burst (cheaper cold experiment, fewer requests)",
    )
    parser.add_argument(
        "--mutation-out",
        default=str(DEFAULT_MUTATION_OUT),
        metavar="FILE",
        help="mutation-suite output path "
        f"(default {DEFAULT_MUTATION_OUT.name} at the repo root)",
    )
    parser.add_argument(
        "--kernels-out",
        default=str(DEFAULT_KERNELS_OUT),
        metavar="FILE",
        help="kernels-suite output path "
        f"(default {DEFAULT_KERNELS_OUT.name} at the repo root)",
    )
    parser.add_argument(
        "--kernels-smoke",
        action="store_true",
        help="smaller kernel arrays, fewer timing repeats",
    )
    parser.add_argument(
        "--localization-out",
        default=str(DEFAULT_LOCALIZATION_OUT),
        metavar="FILE",
        help="localization-suite output path "
        f"(default {DEFAULT_LOCALIZATION_OUT.name} at the repo root)",
    )
    parser.add_argument(
        "--localization-smoke",
        action="store_true",
        help="fewer workload replications and timing repeats",
    )
    args = parser.parse_args(argv)

    suites = [name.strip() for name in args.suites.split(",") if name.strip()]
    unknown = sorted(set(suites) - set(SUITES))
    if unknown:
        parser.error(f"unknown suite(s) {unknown}; known: {list(SUITES)}")

    exit_code = 0
    if "adaptive" in suites:
        record = {
            "suite": "adaptive-precision",
            "rel_hw": args.rel_hw,
            "budget": args.budget,
            "estimands": run_adaptive_suite(args.rel_hw, args.budget),
        }
        speedups = [
            entry["vr_speedup"] for entry in record["estimands"].values()
        ]
        record["min_vr_speedup"] = min(speedups)
        record["gate_vr_speedup_ge_1"] = all(s >= 1.0 for s in speedups)
        if args.full:
            record["wall_times"] = run_full_benchmarks()

        out = pathlib.Path(args.out)
        out.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
        print(f"wrote {out}")
        if not record["gate_vr_speedup_ge_1"]:
            print(
                f"FAIL: min VR speedup {record['min_vr_speedup']:.2f} < 1",
                file=sys.stderr,
            )
            exit_code = 1
        else:
            print(
                f"min VR speedup: {record['min_vr_speedup']:.2f}x (gate: >= 1)"
            )
    if "service" in suites:
        bench_service = _load_bench("bench_service")
        service_argv = ["--out", args.service_out]
        if args.service_smoke:
            service_argv.append("--smoke")
        exit_code = max(exit_code, bench_service.main(service_argv))
    if "mutation" in suites:
        bench_mutation = _load_bench("bench_mutation")
        exit_code = max(
            exit_code, bench_mutation.main(["--out", args.mutation_out])
        )
    if "kernels" in suites:
        bench_kernels = _load_bench("bench_kernels")
        kernels_argv = ["--out", args.kernels_out]
        if args.kernels_smoke:
            kernels_argv.append("--smoke")
        exit_code = max(exit_code, bench_kernels.main(kernels_argv))
    if "localization" in suites:
        bench_localization = _load_bench("bench_localization")
        localization_argv = ["--out", args.localization_out]
        if args.localization_smoke:
            localization_argv.append("--smoke")
        exit_code = max(exit_code, bench_localization.main(localization_argv))
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
