"""Live smoke for the sharded service: router + 2 serve subprocesses.

Exercises the cluster-level contract end to end, once per store backend:

1. distinct cache keys spread across both shards (the ring actually
   partitions work);
2. simultaneous identical cold requests entering through the router
   coalesce onto exactly **one** execution cluster-wide;
3. SIGKILL one shard: the router degrades honestly (healthz reports one
   healthy shard) and keys owned by the dead shard re-route to the
   survivor;
4. restart the shard on its recorded port: the ring heals, the key
   routes home again, and the pre-kill result is served from the
   shard's persisted store (a cache hit — SIGKILL lost nothing).

Exit status is non-zero on the first violated check.  CI runs this as
the ``shard-smoke`` job; locally::

    PYTHONPATH=src python tools/shard_smoke.py [--backend jsonl|sqlite|both]
"""

import argparse
import sys
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.service import LocalCluster, ServiceClient  # noqa: E402

EXPERIMENT = "a5"
COALESCE_CLIENTS = 6


def _check(condition, label, detail=""):
    if not condition:
        print(f"FAIL: {label} {detail}".rstrip(), file=sys.stderr)
        raise SystemExit(1)
    print(f"ok: {label}")


def _wait_until(predicate, timeout=60.0, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(0.05)
    print(f"FAIL: timed out waiting for {message}", file=sys.stderr)
    raise SystemExit(1)


def _spread_check(url):
    """Seeds land on both shards; returns one seed homed on each shard."""
    home = {}
    with ServiceClient(url) as client:
        for seed in range(16):
            job = client.submit(EXPERIMENT, seed=seed, wait=True)
            home.setdefault(job["shard"], seed)
            if len(home) == 2:
                break
    _check(
        len(home) == 2,
        "distinct keys spread across both shards",
        f"(placed only on {sorted(home)})",
    )
    return home


def _coalesce_check(url):
    with ServiceClient(url) as client:
        before = client.metrics()["jobs"]
    barrier = threading.Barrier(COALESCE_CLIENTS)

    def fire(seed):
        with ServiceClient(url) as client:
            barrier.wait(timeout=60)
            return client.run(EXPERIMENT, seed=seed)

    with ThreadPoolExecutor(max_workers=COALESCE_CLIENTS) as pool:
        jobs = list(
            pool.map(fire, [990_001] * COALESCE_CLIENTS)
        )
    with ServiceClient(url) as client:
        after = client.metrics()["jobs"]
    executions = after["completed"] - before["completed"]
    _check(
        executions == 1,
        "identical requests coalesce onto one execution cluster-wide",
        f"({executions} executions for {COALESCE_CLIENTS} requests)",
    )
    _check(
        len({job["shard"] for job in jobs}) == 1,
        "coalesced requests all answered by the owning shard",
    )


def _failover_check(url, cluster, home):
    victim_name = sorted(home)[0]
    victim_seed = home[victim_name]
    survivor_name = next(name for name in home if name != victim_name)
    cluster.shard(victim_name).kill()
    with ServiceClient(url) as client:
        _wait_until(
            lambda: client.healthz()["shards_healthy"] == 1,
            message="router to notice the killed shard",
        )
        print("ok: router reports the killed shard down")
        rerouted = client.submit(EXPERIMENT, seed=victim_seed, wait=True)
        _check(
            rerouted["state"] == "done"
            and rerouted["shard"] == survivor_name,
            "dead shard's keys re-route to the survivor",
            f"(landed on {rerouted['shard']})",
        )
    cluster.shard(victim_name).restart()
    with ServiceClient(url) as client:
        _wait_until(
            lambda: client.healthz()["shards_healthy"] == 2,
            message="router to see the restarted shard",
        )
        print("ok: restarted shard rejoined the ring")
        healed = client.submit(EXPERIMENT, seed=victim_seed, wait=True)
        _check(
            healed["shard"] == victim_name,
            "healed ring routes the key back to its home shard",
            f"(landed on {healed['shard']})",
        )
        _check(
            healed["cached"] is True,
            "pre-kill result survived SIGKILL in the persisted store",
            f"(cached={healed['cached']}, source={healed.get('source')})",
        )


def _health_summary(url):
    """One line of cluster health off the router's Prometheus view."""

    def total(families, name, **labels):
        family = families.get(name)
        if family is None:
            return 0
        return sum(
            value
            for _, sample_labels, value in family["samples"]
            if all(sample_labels.get(k) == v for k, v in labels.items())
        )

    with ServiceClient(url) as client:
        families = client.metrics(format="prometheus")
    healthy = total(families, "repro_router_shards_healthy")
    configured = total(families, "repro_router_shards_total")
    completed = total(families, "repro_cluster_jobs", event="completed")
    relays = total(families, "repro_router_relays_total", outcome="ok")
    failed_relays = (
        total(families, "repro_router_relays_total") - relays
    )
    print(
        f"cluster health: {healthy:.0f}/{configured:.0f} shards healthy, "
        f"{completed:.0f} jobs completed, {relays:.0f} relays ok, "
        f"{failed_relays:.0f} relay failures"
    )


def run_smoke(backend):
    print(f"--- backend: {backend} ---")
    with tempfile.TemporaryDirectory(prefix="shard_smoke_") as tmp:
        with LocalCluster(2, tmp, store_backend=backend) as cluster:
            url = cluster.url
            print(f"cluster up: router {url}, shards s0/s1 ({backend})")
            home = _spread_check(url)
            _coalesce_check(url)
            _failover_check(url, cluster, home)
            _health_summary(url)


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="router + 2 shard subprocesses: spread, coalesce, "
        "kill/degrade/heal — per store backend"
    )
    parser.add_argument(
        "--backend",
        choices=("jsonl", "sqlite", "both"),
        default="both",
        help="store backend(s) to exercise (default: both)",
    )
    args = parser.parse_args(argv)
    backends = (
        ("jsonl", "sqlite") if args.backend == "both" else (args.backend,)
    )
    for backend in backends:
        run_smoke(backend)
    print(f"shard smoke ok ({', '.join(backends)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
