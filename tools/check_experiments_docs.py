#!/usr/bin/env python
"""Check docs/experiments.md, docs/kernels.md and docs/observability.md
against the code.

The experiment catalog must list exactly the ids returned by
``repro.experiments.all_experiment_ids()`` — no missing rows, no stale
rows — the kernel-backend page must document exactly the engine
names the CLI accepts plus every ``*_compiled`` driver ``repro.mc``
exports, and the observability page's metric catalog and span taxonomy
must cover exactly the families and span names the code registers.
Run from the repository root (CI runs it in the docs job)::

    PYTHONPATH=src python tools/check_experiments_docs.py

Exits non-zero with a diff-style report when a page is out of sync.
"""

from __future__ import annotations

import pathlib
import re
import sys

_DOCS = pathlib.Path(__file__).resolve().parent.parent / "docs"
CATALOG = _DOCS / "experiments.md"
KERNELS_DOC = _DOCS / "kernels.md"

# catalog rows carry their id as the first, backticked table cell
_ROW_PATTERN = re.compile(r"^\|\s*`([a-z][a-z0-9]*)`", re.MULTILINE)

# a row's full line, for per-row column checks
_LINE_PATTERN = re.compile(r"^\|\s*`([a-z][a-z0-9]*)`.*$", re.MULTILINE)


def documented_ids(text: str) -> list:
    """Experiment ids listed in the catalog, in order of appearance."""
    return _ROW_PATTERN.findall(text)


def documented_precision_ids(text: str) -> list:
    """Ids whose catalog row marks the adaptive `precision` knob."""
    out = []
    for match in _LINE_PATTERN.finditer(text):
        if "`precision`" in match.group(0):
            out.append(match.group(1))
    return out


def catalog_rows(text: str) -> dict:
    """Mapping of documented id -> its full catalog row line."""
    return {
        match.group(1): match.group(0)
        for match in _LINE_PATTERN.finditer(text)
    }


def undocumented_knobs(registered, rows, runner_params) -> dict:
    """Sweepable knobs missing from their experiment's catalog row.

    Every knob a runner accepts (except `precision`, which the adaptive
    column already covers) must appear backticked in that id's row, so a
    reader browsing the catalog sees what each experiment can sweep.
    """
    out = {}
    for eid in registered:
        row = rows.get(eid)
        if row is None:
            continue  # reported separately as a missing row
        knobs = [
            name for name in runner_params(eid) if name != "precision"
        ]
        missing = [name for name in knobs if f"`{name}`" not in row]
        if missing:
            out[eid] = missing
    return out


def check_kernels_doc() -> list:
    """Problems with docs/kernels.md, as printable strings.

    The page's engine-matrix rows (``| `name` |``) must be exactly the
    engine names the experiments CLI accepts, and every ``*_compiled``
    driver exported from ``repro.mc`` must be mentioned by name — so the
    backend page can never silently lag an engine rename or a new
    compiled entry point.
    """
    import repro.mc
    from repro.mc.experiments import _ENGINES

    problems = []
    if not KERNELS_DOC.exists():
        return [f"missing kernel-backend page: {KERNELS_DOC}"]
    text = KERNELS_DOC.read_text()
    documented = re.findall(r"^\|\s*`([a-z]+)`", text, re.MULTILINE)
    engines = list(_ENGINES)
    missing = [name for name in engines if name not in documented]
    extra = [name for name in documented if name not in engines]
    if missing:
        problems.append(
            f"engines accepted by the CLI but missing from the "
            f"docs/kernels.md engine matrix: {missing}"
        )
    if extra:
        problems.append(
            f"engine rows in docs/kernels.md the CLI does not accept: "
            f"{extra}"
        )
    drivers = [name for name in repro.mc.__all__ if name.endswith("_compiled")]
    unmentioned = [name for name in drivers if f"`{name}`" not in text]
    if unmentioned:
        problems.append(
            f"compiled drivers exported from repro.mc but not mentioned "
            f"in docs/kernels.md: {unmentioned}"
        )
    return problems


LOCALIZATION_DOC = _DOCS / "localization.md"


def check_localization_doc() -> list:
    """Problems with docs/localization.md, as printable strings.

    The page must mention (backticked) every public name exported from
    ``repro.coverage`` and every SBFL metric name the code accepts, so
    the subsystem page can never silently lag an API rename or a new
    metric.
    """
    import repro.coverage
    from repro.coverage.sbfl import SBFL_METRICS

    if not LOCALIZATION_DOC.exists():
        return [f"missing localization page: {LOCALIZATION_DOC}"]
    text = LOCALIZATION_DOC.read_text()
    problems = []
    # a name counts as mentioned backticked either bare (`name`) or with a
    # call signature (`name(...)`)
    unmentioned = [
        name
        for name in repro.coverage.__all__
        if not re.search(rf"`{re.escape(name)}[(`]", text)
    ]
    if unmentioned:
        problems.append(
            f"names exported from repro.coverage but not mentioned in "
            f"docs/localization.md: {unmentioned}"
        )
    unlisted = [name for name in SBFL_METRICS if f"`{name}`" not in text]
    if unlisted:
        problems.append(
            f"SBFL metrics accepted by the code but missing from "
            f"docs/localization.md: {unlisted}"
        )
    return problems


OBS_DOC = _DOCS / "observability.md"
_SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"

# instrument registrations: .counter("repro_x", ...) across line breaks
_METRIC_REG_PATTERN = re.compile(
    r'\.(?:counter|gauge|histogram)\(\s*"(repro_[a-z0-9_]+)"'
)
# span openings: span("name"|emit_span("name" (also matches _obs_span()
_SPAN_PATTERN = re.compile(r'(?:emit_span|span)\(\s*"([a-z_]+(?:\.[a-z_]+)+)"')


def registered_metric_families() -> set:
    """Every metric family name registered anywhere under src/repro."""
    names = set()
    for path in sorted(_SRC.rglob("*.py")):
        names.update(_METRIC_REG_PATTERN.findall(path.read_text()))
    return names


def emitted_span_names() -> set:
    """Every span name opened or emitted anywhere under src/repro."""
    names = set()
    for path in sorted(_SRC.rglob("*.py")):
        names.update(_SPAN_PATTERN.findall(path.read_text()))
    return names


def check_observability_doc() -> list:
    """Problems with docs/observability.md, as printable strings.

    The metric catalog must name every family the code registers (and
    nothing the code doesn't), and the span taxonomy must cover every
    span name the code emits — so the page can never silently lag a
    rename or a new instrument.
    """
    problems = []
    if not OBS_DOC.exists():
        return [f"missing observability page: {OBS_DOC}"]
    text = OBS_DOC.read_text()
    documented_metrics = set(
        re.findall(r"`(repro_[a-z0-9_]+)`", text)
    )
    registered = registered_metric_families()
    missing = sorted(registered - documented_metrics)
    stale = sorted(documented_metrics - registered)
    if missing:
        problems.append(
            f"metric families registered in code but missing from the "
            f"docs/observability.md catalog: {missing}"
        )
    if stale:
        problems.append(
            f"metric families documented in docs/observability.md but "
            f"not registered anywhere in code: {stale}"
        )
    documented_spans = set(
        re.findall(r"`([a-z_]+(?:\.[a-z_]+)+)`", text)
    )
    undocumented_spans = sorted(emitted_span_names() - documented_spans)
    if undocumented_spans:
        problems.append(
            f"span names emitted in code but missing from the "
            f"docs/observability.md taxonomy: {undocumented_spans}"
        )
    return problems


def main() -> int:
    from repro.experiments import all_experiment_ids

    registered = all_experiment_ids()
    if not CATALOG.exists():
        print(f"missing catalog: {CATALOG}", file=sys.stderr)
        return 1
    from repro.experiments import runner_params

    text = CATALOG.read_text()
    documented = documented_ids(text)
    missing = [eid for eid in registered if eid not in documented]
    extra = [eid for eid in documented if eid not in registered]
    duplicated = sorted(
        {eid for eid in documented if documented.count(eid) > 1}
    )
    # the adaptive column must mirror which runners accept a `precision`
    # knob (the adaptive precision engine's entry point)
    capable = sorted(
        eid for eid in registered if "precision" in runner_params(eid)
    )
    marked = sorted(documented_precision_ids(text))
    unmarked = [eid for eid in capable if eid not in marked]
    overmarked = [eid for eid in marked if eid not in capable]
    # every other sweepable knob must be visible in its catalog row
    missing_knobs = undocumented_knobs(
        registered, catalog_rows(text), runner_params
    )
    kernel_problems = check_kernels_doc()
    obs_problems = check_observability_doc()
    localization_problems = check_localization_doc()
    if not (
        missing
        or extra
        or duplicated
        or unmarked
        or overmarked
        or missing_knobs
        or kernel_problems
        or obs_problems
        or localization_problems
    ):
        print(
            f"docs/experiments.md in sync: {len(registered)} experiment "
            f"ids, {len(capable)} precision-capable"
        )
        print("docs/kernels.md in sync: engine matrix and compiled drivers")
        import repro.coverage

        print(
            f"docs/localization.md in sync: "
            f"{len(repro.coverage.__all__)} repro.coverage exports"
        )
        print(
            f"docs/observability.md in sync: "
            f"{len(registered_metric_families())} metric families, "
            f"{len(emitted_span_names())} span names"
        )
        return 0
    if missing:
        print(f"ids registered but not documented: {missing}", file=sys.stderr)
    if extra:
        print(f"ids documented but not registered: {extra}", file=sys.stderr)
    if duplicated:
        print(f"ids documented more than once: {duplicated}", file=sys.stderr)
    if unmarked:
        print(
            f"precision-capable ids not marked in the adaptive column: "
            f"{unmarked}",
            file=sys.stderr,
        )
    if overmarked:
        print(
            f"ids marked `precision` but without the knob: {overmarked}",
            file=sys.stderr,
        )
    for eid, knobs in sorted(missing_knobs.items()):
        print(
            f"knob(s) of {eid!r} not mentioned in its catalog row: "
            f"{knobs}",
            file=sys.stderr,
        )
    for problem in kernel_problems:
        print(problem, file=sys.stderr)
    for problem in obs_problems:
        print(problem, file=sys.stderr)
    for problem in localization_problems:
        print(problem, file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
