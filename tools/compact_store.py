#!/usr/bin/env python
"""Compact a result store: drop superseded duplicates and reclaim space.

Long-lived stores (resumed sweeps, the ``repro.service`` server) grow:
the JSONL backend is append-only, so every re-run of a point adds a line
that shadows — but never removes — the previous one, and an interrupted
append can leave a partial trailing line; the SQLite backend upserts (one
row per key) but accumulates free pages and WAL.  This tool compacts
either backend::

    PYTHONPATH=src python tools/compact_store.py --store results/
    PYTHONPATH=src python tools/compact_store.py --store results/ --dry-run
    PYTHONPATH=src python tools/compact_store.py --store results/ \
        --store-backend sqlite

Safe to run while readers are open (they see either the old or the new
state), but not while another process is appending to a JSONL store — a
record written between the read and the ``os.replace`` would be lost.
Stop writers (or the server) first.  SQLite compaction takes the write
lock itself, so concurrent writers block briefly instead of losing data.
"""

from __future__ import annotations

import argparse
import sys
import warnings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Compact a result store: drop superseded duplicate "
        "keys and unreadable/partial lines (jsonl) or checkpoint and "
        "VACUUM (sqlite)."
    )
    parser.add_argument(
        "--store",
        default="results",
        metavar="PATH",
        help="store directory, .jsonl file or .sqlite file "
        "(default: results/)",
    )
    parser.add_argument(
        "--store-backend",
        choices=("auto", "jsonl", "sqlite"),
        default="auto",
        help="backend at --store (default: auto-detect)",
    )
    parser.add_argument(
        "--dry-run",
        action="store_true",
        help="report what compaction would drop without rewriting",
    )
    args = parser.parse_args(argv)

    from repro.store import ResultStore, open_store

    store = open_store(args.store, backend=args.store_backend)
    if not store.path.exists():
        print(f"no store at {store.path}; nothing to compact")
        return 0
    if args.dry_run:
        if isinstance(store, ResultStore):
            from repro.store.store import _scan

            content = store.path.read_text(encoding="utf-8")
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                records, parsed, unreadable = _scan(content, str(store.path))
            print(
                f"{store.path}: {len(records)} records would survive "
                f"({parsed - len(records)} superseded duplicates and "
                f"{unreadable} unreadable lines would be dropped; dry run)"
            )
        else:
            print(
                f"{store.path}: {len(store)} records (sqlite keeps one row "
                "per key; compaction would checkpoint the WAL and VACUUM "
                "free pages; dry run)"
            )
        return 0
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        stats = store.compact()
    saved = stats["bytes_before"] - stats["bytes_after"]
    print(
        f"{store.path}: kept {stats['records']} records, dropped "
        f"{stats['dropped_duplicates']} superseded duplicates and "
        f"{stats['dropped_unreadable']} unreadable lines "
        f"({stats['bytes_before']} -> {stats['bytes_after']} bytes, "
        f"{saved} saved)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
