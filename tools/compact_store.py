#!/usr/bin/env python
"""Compact a result store: drop superseded duplicates and partial lines.

Long-lived stores (resumed sweeps, the ``repro.service`` server) are
append-only, so every re-run of a point adds a line that shadows — but
never removes — the previous one, and an interrupted append can leave a
partial trailing line.  This tool rewrites the JSONL atomically, keeping
exactly the records :meth:`repro.store.ResultStore.load` would serve::

    PYTHONPATH=src python tools/compact_store.py --store results/
    PYTHONPATH=src python tools/compact_store.py --store results/ --dry-run

Safe to run while readers are open (they see either the old or the new
file), but not while another process is appending — a record written
between the read and the ``os.replace`` would be lost.  Stop writers (or
the server) first.
"""

from __future__ import annotations

import argparse
import sys
import warnings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Rewrite a result store dropping superseded duplicate "
        "keys and unreadable/partial lines."
    )
    parser.add_argument(
        "--store",
        default="results",
        metavar="PATH",
        help="store directory or .jsonl file (default: results/)",
    )
    parser.add_argument(
        "--dry-run",
        action="store_true",
        help="report what compaction would drop without rewriting",
    )
    args = parser.parse_args(argv)

    from repro.store import ResultStore
    from repro.store.store import _scan

    store = ResultStore(args.store)
    if not store.path.exists():
        print(f"no store at {store.path}; nothing to compact")
        return 0
    if args.dry_run:
        content = store.path.read_text(encoding="utf-8")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            records, parsed, unreadable = _scan(content, str(store.path))
        print(
            f"{store.path}: {len(records)} records would survive "
            f"({parsed - len(records)} superseded duplicates and "
            f"{unreadable} unreadable lines would be dropped; dry run)"
        )
        return 0
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        stats = store.compact()
    saved = stats["bytes_before"] - stats["bytes_after"]
    print(
        f"{store.path}: kept {stats['records']} records, dropped "
        f"{stats['dropped_duplicates']} superseded duplicates and "
        f"{stats['dropped_unreadable']} unreadable lines "
        f"({stats['bytes_before']} -> {stats['bytes_after']} bytes, "
        f"{saved} saved)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
