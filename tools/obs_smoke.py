"""Live observability smoke: traces, metrics and logs across a cluster.

Boots a real 2-shard cluster (serve subprocesses logging JSON spans at
debug level to per-shard files, fronted by an in-thread router whose
spans are captured in-process), then asserts the observability layer
end to end:

1. a burst of ``POST /run`` requests through the router completes;
2. the router's and every shard's ``/metrics?format=prometheus`` pass
   the strict exposition parser and carry the expected families
   (request latency histograms, relay/scrape counters, cache and job
   counters);
3. one traced request's spans — merged from the shard log files and
   the in-process router capture — reconstruct into a single tree
   containing the full ``http.request → router.relay → http.request →
   job.queue_wait / job.execute / job.persist`` chain, every span with
   a non-zero monotonic duration.

Exit status is non-zero on the first violated check.  CI runs this as
the ``obs-smoke`` job; locally::

    PYTHONPATH=src python tools/obs_smoke.py
"""

import json
import sys
import tempfile
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

import trace_tree  # noqa: E402
from repro.obs import capture_spans  # noqa: E402
from repro.service import LocalCluster, ServiceClient  # noqa: E402

EXPERIMENT = "a5"
BURST = 8

REQUIRED_SPANS = (
    "http.request",
    "router.relay",
    "job.queue_wait",
    "job.execute",
    "job.persist",
)

SHARD_FAMILIES = (
    "repro_http_request_seconds",
    "repro_http_requests_total",
    "repro_jobs_total",
    "repro_job_compute_seconds",
    "repro_job_queue_wait_seconds",
    "repro_cache_hits_total",
    "repro_cache_misses_total",
    "repro_cache_evictions_total",
    "repro_queue_depth",
)

ROUTER_FAMILIES = (
    "repro_http_request_seconds",
    "repro_router_relays_total",
    "repro_router_scrapes_total",
    "repro_router_shards_healthy",
    "repro_cluster_jobs",
)


def _check(condition, label, detail=""):
    if not condition:
        print(f"FAIL: {label} {detail}".rstrip(), file=sys.stderr)
        raise SystemExit(1)
    print(f"ok: {label}")


def _burst(url):
    def fire(seed):
        with ServiceClient(url) as client:
            return client.run(EXPERIMENT, seed=seed)

    with ThreadPoolExecutor(max_workers=4) as pool:
        jobs = list(pool.map(fire, range(BURST)))
    _check(
        all(job["state"] == "done" for job in jobs),
        f"burst of {BURST} routed runs all completed",
    )


def _prometheus_check(url, families_required, label):
    # the strict parser *is* the conformance check: bad escaping,
    # non-monotonic buckets or a missing +Inf would raise here
    with ServiceClient(url) as client:
        families = client.metrics(format="prometheus")
    missing = [
        name for name in families_required if name not in families
    ]
    _check(
        not missing,
        f"{label} prometheus exposition parses strictly "
        f"({len(families)} families)",
        f"(missing: {missing})",
    )
    return families


def _trace_check(url, log_dir, router_spans):
    with ServiceClient(url) as client:
        job = client.run(EXPERIMENT, seed=990_777)
        trace_id = client.last_trace_id
    _check(
        job.get("trace_id") == trace_id,
        "job payload echoes the client's trace id",
        f"(sent {trace_id}, got {job.get('trace_id')})",
    )
    spans = [
        record
        for record in router_spans
        if record.get("trace_id") == trace_id
    ]
    for log_path in sorted(Path(log_dir).glob("*.jsonl")):
        with open(log_path, "r", encoding="utf-8") as handle:
            spans.extend(
                record
                for record in trace_tree.read_spans(handle)
                if record.get("trace_id") == trace_id
            )
    names = {span.get("name") for span in spans}
    missing = [name for name in REQUIRED_SPANS if name not in names]
    _check(
        not missing,
        f"trace {trace_id[:8]}… covers the full span chain "
        f"({len(spans)} spans)",
        f"(missing: {missing})",
    )
    zero = [
        span["name"]
        for span in spans
        if span.get("name") in REQUIRED_SPANS
        and not float(span.get("duration_seconds") or 0) > 0
    ]
    _check(not zero, "every span has a non-zero duration", f"({zero})")
    print(trace_tree.render_trace(trace_id, spans))


def main():
    with tempfile.TemporaryDirectory(prefix="obs_smoke_") as tmp:
        log_dir = Path(tmp) / "logs"
        with capture_spans() as router_spans:
            with LocalCluster(
                2,
                str(Path(tmp) / "stores"),
                log_dir=str(log_dir),
                log_level="debug",
            ) as cluster:
                url = cluster.url
                print(f"cluster up: router {url}, shards s0/s1")
                _burst(url)
                _prometheus_check(url, ROUTER_FAMILIES, "router")
                for shard in cluster.shards:
                    _prometheus_check(
                        shard.url, SHARD_FAMILIES, f"shard {shard.name}"
                    )
                _trace_check(url, log_dir, router_spans)
    print("obs smoke ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
