"""Reconstruct and pretty-print span trees from JSON-lines trace logs.

The tracing layer (``repro.obs``) emits spans as flat JSON records —
one per line when logging runs with ``--log-format json --log-level
debug`` — each carrying ``trace_id``/``span_id``/``parent_id`` and a
monotonic ``duration_seconds``.  This tool reads one or more such logs
(or stdin), groups the spans by trace, stitches each trace back into a
tree via the parent ids, and prints it indented::

    PYTHONPATH=src python tools/trace_tree.py shard-logs/*.jsonl

    trace 8f3a... (5 spans, 0.312s)
    └─ http.request method=POST path=/run 0.310s
       └─ router.relay shard=s1 0.305s
          └─ http.request method=POST path=/run 0.301s
             ├─ job.queue_wait 0.001s
             └─ job.execute experiment_id=e01 0.290s

CI gating: ``--require name1,name2,...`` exits non-zero unless at
least one trace contains *every* required span name — the obs-smoke
job uses it to assert that a routed ``POST /run`` produced the full
router-relay → queue-wait → execute → persist chain.  ``--trace ID``
restricts output to one trace; spans whose parent never reached the
log print as additional roots rather than being dropped.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, Iterable, List, Optional

_SKIP_FIELDS = {
    "event",
    "name",
    "trace_id",
    "span_id",
    "parent_id",
    "ts",
    "duration_seconds",
    "level",
    "logger",
}


def read_spans(lines: Iterable[str]) -> List[dict]:
    """Span records out of JSON-lines input; non-span lines are skipped."""
    spans = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if not isinstance(record, dict):
            continue
        if record.get("event") != "span":
            continue
        if "trace_id" not in record or "span_id" not in record:
            continue
        spans.append(record)
    return spans


def group_traces(spans: List[dict]) -> Dict[str, List[dict]]:
    """Spans bucketed by trace id, preserving input order."""
    traces: Dict[str, List[dict]] = {}
    for span in spans:
        traces.setdefault(str(span["trace_id"]), []).append(span)
    return traces


def _children_index(spans: List[dict]) -> Dict[Optional[str], List[dict]]:
    ids = {span["span_id"] for span in spans}
    children: Dict[Optional[str], List[dict]] = {}
    for span in spans:
        parent = span.get("parent_id")
        # a parent that never made the log (lost line, pruned level)
        # would orphan the subtree: promote it to a root instead
        key = parent if parent in ids else None
        children.setdefault(key, []).append(span)
    for siblings in children.values():
        siblings.sort(key=lambda span: span.get("ts") or 0)
    return children


def _describe(span: dict) -> str:
    fields = " ".join(
        f"{key}={value}"
        for key, value in span.items()
        if key not in _SKIP_FIELDS and value is not None
    )
    duration = span.get("duration_seconds")
    tail = f" {float(duration):.3f}s" if duration is not None else ""
    return f"{span.get('name', '<unnamed>')}" + (
        f" {fields}" if fields else ""
    ) + tail


def render_trace(trace_id: str, spans: List[dict]) -> str:
    """One trace as an indented tree."""
    children = _children_index(spans)
    total = sum(float(span.get("duration_seconds") or 0) for span in spans)
    root_duration = max(
        (float(span.get("duration_seconds") or 0) for span in spans),
        default=0.0,
    )
    lines = [
        f"trace {trace_id} ({len(spans)} spans, {root_duration:.3f}s "
        f"longest, {total:.3f}s summed)"
    ]

    def walk(span: dict, prefix: str, is_last: bool) -> None:
        connector = "└─ " if is_last else "├─ "
        lines.append(prefix + connector + _describe(span))
        child_prefix = prefix + ("   " if is_last else "│  ")
        kids = children.get(span["span_id"], [])
        for index, child in enumerate(kids):
            walk(child, child_prefix, index == len(kids) - 1)

    roots = children.get(None, [])
    for index, root in enumerate(roots):
        walk(root, "", index == len(roots) - 1)
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="reconstruct span trees from JSON-lines trace logs "
        "(repro.obs span events)"
    )
    parser.add_argument(
        "files",
        nargs="*",
        metavar="FILE",
        help="JSON-lines log files (default: stdin)",
    )
    parser.add_argument(
        "--trace",
        metavar="ID",
        help="print only the trace with this id",
    )
    parser.add_argument(
        "--require",
        metavar="NAMES",
        help="comma-separated span names; exit 1 unless at least one "
        "trace contains every one of them (the CI gate)",
    )
    args = parser.parse_args(argv)

    spans: List[dict] = []
    if args.files:
        for path in args.files:
            with open(path, "r", encoding="utf-8") as handle:
                spans.extend(read_spans(handle))
    else:
        spans.extend(read_spans(sys.stdin))

    traces = group_traces(spans)
    if args.trace is not None:
        traces = {
            trace_id: trace_spans
            for trace_id, trace_spans in traces.items()
            if trace_id == args.trace
        }

    for trace_id, trace_spans in traces.items():
        print(render_trace(trace_id, trace_spans))
        print()

    if args.require:
        required = {
            name.strip() for name in args.require.split(",") if name.strip()
        }
        satisfied = any(
            required
            <= {str(span.get("name")) for span in trace_spans}
            for trace_spans in traces.values()
        )
        if not satisfied:
            print(
                f"FAIL: no trace contains all required spans "
                f"{sorted(required)} across {len(traces)} trace(s)",
                file=sys.stderr,
            )
            return 1
        print(f"require ok: {sorted(required)} found in one trace")
    if not traces:
        print("no spans found", file=sys.stderr)
        return 1 if args.require else 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
