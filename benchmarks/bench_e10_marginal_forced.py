"""E10 bench — regenerates the eqs. (24)-(25) forced-diversity marginal table.

Shape reproduced: the sign of Σ Cov_T(ξ_A,ξ_B)Q(x) decides whether
independent-suite or same-suite testing yields the more reliable pair —
both signs exhibited.
"""

from _util import run_experiment_benchmark


def test_e10_marginal_forced(benchmark):
    result = run_experiment_benchmark(benchmark, "e10")
    rows = {row[0]: row for row in result.rows}
    shared_same = rows["shared-fault model, same suite"]
    shared_independent = rows["shared-fault model, independent suites"]
    assert shared_same[1] > shared_independent[1]
    alternating_same = rows["alternating model, same suite"]
    alternating_independent = rows["alternating model, independent suites"]
    assert alternating_same[1] < alternating_independent[1]
