"""Benchmarks for the SBFL localized-growth workload (repro.coverage).

The workload's vectorized path runs every replication's round as one
counter-RNG block operation; the per-replication reference path defines
the semantics (identical draws, exact-match integer outcomes).  The
headline number is the speedup of vectorized over reference on a
representative model, gated at >= 10x — the margin that justifies the
block implementation's complexity.  ``main()`` writes the consolidated
record (``BENCH_localization.json``, via ``tools/bench_all.py --suites
localization``).
"""

import time

import numpy as np
import pytest

from repro.coverage import ComponentModel, synthetic_coverage
from repro.coverage.workload import simulate_localized_growth
from repro.demand import DemandSpace, zipf_profile
from repro.faults import clustered_universe
from repro.populations import BernoulliFaultPopulation

SPEEDUP_GATE = 10.0


def _bench_model():
    space = DemandSpace(100)
    profile = zipf_profile(space, exponent=0.8)
    universe = clustered_universe(space, n_faults=14, region_size=6, rng=2)
    population = BernoulliFaultPopulation.uniform(universe, 0.4)
    model = ComponentModel.blocked(universe, 6)
    matrix = synthetic_coverage(16, 6, density=0.5, rng=4)
    return population, profile, matrix, model


def _run(vectorized: bool, n_replications: int, policy: str = "sbfl"):
    population, profile, matrix, model = _bench_model()
    return simulate_localized_growth(
        population,
        profile,
        matrix,
        model,
        policy=policy,
        rounds=8,
        n_replications=n_replications,
        rng=0,
        vectorized=vectorized,
    )


def _timed(vectorized: bool, n_replications: int, repeats: int):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = _run(vectorized, n_replications)
        best = min(best, time.perf_counter() - start)
    return best, result


def measure_localization(n_replications: int = 400, repeats: int = 2) -> dict:
    """Vectorized-vs-reference timings and the workload's outcome parity."""
    vec_seconds, vec_result = _timed(True, n_replications, repeats)
    ref_seconds, ref_result = _timed(False, n_replications, repeats)
    speedup = ref_seconds / vec_seconds
    trajectories_match = bool(
        np.allclose(
            vec_result.mean_pfd, ref_result.mean_pfd, rtol=1e-12, atol=0.0
        )
    )
    return {
        "suite": "localization-workload",
        "n_replications": n_replications,
        "rounds": 8,
        "timing_repeats": repeats,
        "vectorized_seconds": vec_seconds,
        "reference_seconds": ref_seconds,
        "speedup": speedup,
        "gate_vectorized_speedup_ge_10": speedup >= SPEEDUP_GATE,
        "trajectories_match": trajectories_match,
        "final_pfd": float(vec_result.final_pfd),
        "mean_rounds_to_target": float(vec_result.mean_rounds_to_target),
    }


def test_localization_vectorized_speedup_gate():
    """Acceptance check: the vectorized workload >= 10x the reference
    path.  Pure numpy on both sides, so the gate applies on every host —
    no compiled extra involved."""
    record = measure_localization(n_replications=300, repeats=2)
    assert record["trajectories_match"], "vectorized/reference divergence"
    assert record["speedup"] >= SPEEDUP_GATE, record


def test_localization_vectorized_sbfl(benchmark):
    benchmark.pedantic(
        _run, args=(True, 400), rounds=3, iterations=1
    )


def test_localization_vectorized_random_policy(benchmark):
    benchmark.pedantic(
        _run,
        args=(True, 400),
        kwargs={"policy": "random"},
        rounds=3,
        iterations=1,
    )


def test_localization_reference_path(benchmark):
    benchmark.pedantic(
        _run, args=(False, 50), rounds=2, iterations=1
    )


def main(argv=None) -> int:
    """Write the localization-workload record (``BENCH_localization.json``)."""
    import argparse
    import json
    import pathlib
    import sys

    parser = argparse.ArgumentParser(description=main.__doc__)
    parser.add_argument(
        "--out", default="BENCH_localization.json", metavar="FILE"
    )
    parser.add_argument(
        "--smoke", action="store_true", help="fewer replications and repeats"
    )
    args = parser.parse_args(argv)
    record = measure_localization(
        n_replications=200 if args.smoke else 400,
        repeats=2 if args.smoke else 3,
    )
    out = pathlib.Path(args.out)
    out.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
    print(
        f"vectorized speedup: {record['speedup']:.1f}x "
        f"(gate: >= {SPEEDUP_GATE:.0f})"
    )
    if not record["trajectories_match"]:
        print("FAIL: vectorized/reference divergence", file=sys.stderr)
        return 1
    if not record["gate_vectorized_speedup_ge_10"]:
        print(
            f"FAIL: vectorized speedup gate (>= {SPEEDUP_GATE:.0f}x) not met",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
