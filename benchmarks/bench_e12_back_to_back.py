"""E12 bench — regenerates the §4.2 back-to-back envelope table.

Shape reproduced: optimistic back-to-back = perfect oracle; system pfds
order perfect <= optimistic <= shared-fault <= pessimistic <= untested;
for identical channels the pessimistic run leaves the system pfd exactly
at its untested level.
"""

from _util import run_experiment_benchmark


def test_e12_back_to_back(benchmark):
    result = run_experiment_benchmark(benchmark, "e12")
    by_config = {row[0]: row[1] for row in result.rows}
    assert by_config["b2b optimistic"] <= by_config["b2b shared-fault"] + 1e-12
    assert by_config["b2b shared-fault"] <= by_config["b2b pessimistic"] + 1e-12
    assert by_config["b2b pessimistic"] <= by_config["untested"] + 1e-12
