"""E6 bench — regenerates the eq. (19) table (forced design + testing diversity).

Shape reproduced: the fully diverse configuration keeps the product form.
"""

from _util import run_experiment_benchmark


def test_e06_forced_both(benchmark):
    result = run_experiment_benchmark(benchmark, "e06")
    for row in result.rows:
        assert abs(row[3]) <= 1e-12
