"""Benchmarks of the adaptive precision engine.

Two quantities matter here and both are *replication counts*, not wall
times: how many replications a precision target costs under plain
sampling, and how much variance reduction shaves off it.  Each estimand
in :data:`ESTIMANDS` is adaptively estimated to a fixed relative
half-width under ``vr="none"`` and under ``vr="stratified+control"``, and
the **VR speedup ratio** (plain replications / VR replications) must be
at least 1 — variance reduction must never cost replications on the
estimands it targets.

The measured counts and ratios are attached to ``extra_info`` so
``--benchmark-json`` output carries them; ``tools/bench_all.py`` runs the
same :func:`measure` entry point directly and consolidates everything
into ``BENCH_adaptive.json``.
"""

from __future__ import annotations

from typing import Callable, Dict

import pytest

from repro.adaptive import (
    AdaptiveReport,
    PrecisionTarget,
    adaptive_marginal_system_pfd,
    adaptive_untested_joint_pfd,
    adaptive_version_pfd,
)
from repro.core import SameSuite
from repro.demand import DemandSpace, uniform_profile
from repro.experiments.models import standard_scenario
from repro.faults import clustered_universe
from repro.populations import BernoulliFaultPopulation
from repro.testing import ImperfectFixing, ImperfectOracle

REL_HW = 0.05
BUDGET = 120_000


def _e01_untested_joint(target: PrecisionTarget) -> AdaptiveReport:
    space = DemandSpace(80)
    profile = uniform_profile(space)
    universe = clustered_universe(
        space, n_faults=16, region_size=5, concentration=8.0, rng=2
    )
    population = BernoulliFaultPopulation.uniform(universe, 0.25)
    return adaptive_untested_joint_pfd(population, profile, target, rng=101)


def _e11_version_pfd(target: PrecisionTarget) -> AdaptiveReport:
    scenario = standard_scenario(0)
    return adaptive_version_pfd(
        scenario.population,
        scenario.generator,
        scenario.profile,
        target,
        oracle=ImperfectOracle(0.5),
        fixing=ImperfectFixing(0.5),
        rng=102,
    )


def _e11_system_pfd(target: PrecisionTarget) -> AdaptiveReport:
    scenario = standard_scenario(0)
    return adaptive_marginal_system_pfd(
        SameSuite(scenario.generator),
        scenario.population,
        scenario.profile,
        target,
        oracle=ImperfectOracle(0.5),
        fixing=ImperfectFixing(0.5),
        rng=103,
    )


#: the replications-to-target comparison suite; tools/bench_all.py
#: consumes this registry directly
ESTIMANDS: Dict[str, Callable[[PrecisionTarget], AdaptiveReport]] = {
    "e01_untested_joint_pfd": _e01_untested_joint,
    "e11_version_pfd_d0.5_f0.5": _e11_version_pfd,
    "e11_system_pfd_d0.5_f0.5": _e11_system_pfd,
}


def measure(
    label: str, rel_hw: float = REL_HW, budget: int = BUDGET
) -> Dict[str, object]:
    """Replications-to-target for one estimand, plain vs variance-reduced.

    Returns the consolidated record ``tools/bench_all.py`` writes into
    ``BENCH_adaptive.json``.  Raises if either mode fails to converge —
    the comparison is only meaningful between two runs that both hit the
    target.
    """
    run = ESTIMANDS[label]
    results = {}
    for mode, vr in (("plain", "none"), ("vr", "stratified+control")):
        report = run(
            PrecisionTarget(rel_hw=rel_hw, budget=budget, initial=256, vr=vr)
        )
        metric = report.only
        if not metric.converged:
            raise AssertionError(
                f"{label}/{mode} failed to reach rel_hw={rel_hw} "
                f"within {budget}"
            )
        results[mode] = metric
    return {
        "rel_hw": rel_hw,
        "replications_plain": results["plain"].replications,
        "replications_vr": results["vr"].replications,
        "vr_speedup": results["plain"].replications
        / results["vr"].replications,
        "mean_plain": results["plain"].estimate.mean,
        "mean_vr": results["vr"].estimate.mean,
        "vr_mode": results["vr"].vr,
    }


@pytest.mark.parametrize("label", sorted(ESTIMANDS))
def test_adaptive_replications_to_target(benchmark, label):
    record = benchmark.pedantic(measure, args=(label,), rounds=1, iterations=1)
    benchmark.extra_info.update(record, estimand=label)
    assert record["vr_speedup"] >= 1.0, (
        f"{label}: variance reduction cost replications "
        f"({record['replications_plain']} -> {record['replications_vr']})"
    )


@pytest.mark.parametrize("n_jobs", [1, 4])
def test_adaptive_controller_overhead(benchmark, n_jobs):
    """Wall-clock of one adaptive run (chunked, optionally sharded)."""
    scenario = standard_scenario(0)
    target = PrecisionTarget(rel_hw=0.1, budget=30_000, initial=1024, vr="none")

    report = benchmark.pedantic(
        lambda: adaptive_version_pfd(
            scenario.population,
            scenario.generator,
            scenario.profile,
            target,
            rng=104,
            n_jobs=n_jobs,
            chunk_size=2048,
        ),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["replications"] = report.only.replications
    benchmark.extra_info["n_jobs"] = n_jobs
    assert report.only.converged
