"""Benchmarks for the result store and the sweep cache-hit path.

These time the overhead the sweep layer adds around experiments: cache-key
hashing, JSONL append/load throughput, and a fully-cached sweep (the
resume path, which must stay negligible next to actually running even one
cheap experiment).  They carry no reproduction claims.
"""

import pytest

from repro.experiments import run_experiment
from repro.store import ResultStore, cache_key, make_record
from repro.sweeps import Sweep, SweepSpec

N_RECORDS = 200


@pytest.fixture(scope="module")
def a5_result():
    return run_experiment("a5", seed=0, fast=True)


def test_store_cache_key_rate(benchmark):
    params = {"presence_prob": 0.3, "suite_size": 25}

    def hash_block():
        for seed in range(N_RECORDS):
            cache_key("a2", seed, True, params)

    benchmark(hash_block)


def test_store_append_throughput(benchmark, tmp_path, a5_result):
    records = [
        make_record("a5", seed=seed, result=a5_result)
        for seed in range(N_RECORDS)
    ]
    counter = {"n": 0}

    def append_block():
        store = ResultStore(tmp_path / f"run{counter['n']}")
        counter["n"] += 1
        for record in records:
            store.put(record)

    benchmark.pedantic(append_block, rounds=3, iterations=1)


def test_store_load_throughput(benchmark, tmp_path, a5_result):
    store = ResultStore(tmp_path)
    for seed in range(N_RECORDS):
        store.put(make_record("a5", seed=seed, result=a5_result))

    loaded = benchmark(lambda: len(ResultStore(tmp_path).load()))
    assert loaded == N_RECORDS


def test_sweep_cache_hit_path(benchmark, tmp_path):
    """A fully-cached sweep must cost file reads, not experiment runs."""
    spec = SweepSpec(experiments=["a4", "a5"], seeds=[0, 1])
    store = ResultStore(tmp_path)
    first = Sweep(spec, store).run()
    assert first.executed == 4

    def cached_run():
        report = Sweep(spec, ResultStore(tmp_path)).run()
        assert report.cached == 4
        assert report.executed == 0
        return report

    benchmark.pedantic(cached_run, rounds=3, iterations=1)
