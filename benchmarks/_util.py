"""Shared helper for the experiment benchmarks.

Every benchmark runs one registered experiment exactly once under
pytest-benchmark timing (``pedantic`` with a single round — the experiments
are full reproduction runs, not micro-kernels) and asserts that every paper
claim held.  The regenerated table is attached to the benchmark's
``extra_info`` so ``--benchmark-json`` output carries the reproduced
numbers.
"""

from __future__ import annotations

from repro.experiments import format_result, run_experiment
from repro.experiments.base import ExperimentResult


def run_experiment_benchmark(
    benchmark, experiment_id: str, seed: int = 0
) -> ExperimentResult:
    """Run ``experiment_id`` once under the benchmark timer and verify it."""
    result = benchmark.pedantic(
        run_experiment,
        args=(experiment_id,),
        kwargs={"seed": seed, "fast": True},
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["experiment"] = experiment_id
    benchmark.extra_info["claims_total"] = len(result.claims)
    benchmark.extra_info["claims_held"] = sum(c.holds for c in result.claims)
    assert result.passed, format_result(result)
    return result
