"""E3 bench — regenerates the eq. (16) table (independent suites, same pop).

Shape reproduced: conditional independence survives testing — the joint
failure probability factorises as ζ(x)² with zero excess on every demand.
"""

from _util import run_experiment_benchmark


def test_e03_indep_suites_same_pop(benchmark):
    result = run_experiment_benchmark(benchmark, "e03")
    for row in result.rows:
        assert abs(row[3]) <= 1e-12  # excess column identically zero
