"""E14 bench — regenerates the ref.-[5]-style growth curves.

Shape reproduced: version and system pfds fall monotonically with testing
effort; the same-suite system curve sits above the independent-suite curve
pointwise; back-to-back sits inside its envelope.
"""

from _util import run_experiment_benchmark


def test_e14_growth_curves(benchmark):
    result = run_experiment_benchmark(benchmark, "e14")
    version = [row[1] for row in result.rows]
    independent = [row[2] for row in result.rows]
    same = [row[3] for row in result.rows]
    assert all(b <= a + 1e-15 for a, b in zip(version, version[1:]))
    assert all(s >= i - 1e-15 for s, i in zip(same, independent))
