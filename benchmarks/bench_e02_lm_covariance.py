"""E2 bench — regenerates the Littlewood–Miller covariance table (eqs. (8)-(10)).

Shape reproduced: covariance falls monotonically with methodology overlap
and goes negative under complementary fault placement — the regime where
forced diversity beats the independence benchmark.
"""

from _util import run_experiment_benchmark


def test_e02_lm_covariance(benchmark):
    result = run_experiment_benchmark(benchmark, "e02")
    covariances = {row[0]: row[5] for row in result.rows}
    assert covariances["full overlap"] > 0
    assert covariances["no overlap, complementary"] < 0
