"""A2 bench — regenerates the suite-size sweep of the same-suite excess.

Shape reproduced: the absolute excess is zero at n=0, peaks at intermediate
effort and vanishes again; the relative excess keeps growing with effort.
"""

from _util import run_experiment_benchmark


def test_a2_suite_size_sweep(benchmark):
    result = run_experiment_benchmark(benchmark, "a2")
    excesses = [row[3] for row in result.rows]
    assert abs(excesses[0]) <= 1e-15
    peak = max(excesses)
    assert peak > 0
    assert excesses[-1] < peak / 10
