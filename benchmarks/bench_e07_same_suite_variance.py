"""E7 bench — regenerates the eq. (20) table (same suite, same population).

Shape reproduced: the paper's central result — a shared suite induces a
strictly positive dependence excess Var_T(ξ(x,T)) over the conditional-
independence prediction.
"""

from _util import run_experiment_benchmark


def test_e07_same_suite_variance(benchmark):
    result = run_experiment_benchmark(benchmark, "e07")
    # at least one reported demand carries a strictly positive excess
    assert any(row[3] > 1e-9 for row in result.rows)
    # and joint >= zeta^2 on all reported demands
    for row in result.rows:
        assert row[1] >= row[2] - 1e-12
