"""A4 bench — regenerates the vanishing-penalty special cases.

Shape reproduced: constant θ gives the eq. (7) equality branch (exact
independence); a degenerate suite measure removes the same-suite excess.
"""

from _util import run_experiment_benchmark


def test_a4_constant_difficulty(benchmark):
    result = run_experiment_benchmark(benchmark, "a4")
    constant_row = result.rows[0]
    # P(both fail) equals the independence prediction
    assert abs(constant_row[3] - constant_row[4]) <= 1e-15
