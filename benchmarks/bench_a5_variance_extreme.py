"""A5 bench — regenerates the extreme-variance construction.

Shape reproduced: the same-suite dependence excess attains its theoretical
maximum 0.25 at ζ(x)=0.5 with ξ(x,T) ∈ {0,1}, doubling the joint failure
probability relative to conditional independence.
"""

from _util import run_experiment_benchmark


def test_a5_variance_extreme(benchmark):
    result = run_experiment_benchmark(benchmark, "a5")
    row = result.rows[0]
    assert abs(row[1] - 0.5) <= 1e-15   # zeta
    assert abs(row[3] - 0.25) <= 1e-15  # Var_T(xi)
    assert abs(row[4] - 0.5) <= 1e-15   # joint
