"""E8 bench — regenerates the eq. (21) table (same suite, forced design).

Shape reproduced: the excess is Cov_T(ξ_A, ξ_B) — positive under shared
faults, and *negative* under the alternating-effectiveness construction
(the paper's open question, answered constructively).
"""

from _util import run_experiment_benchmark


def test_e08_same_suite_covariance(benchmark):
    result = run_experiment_benchmark(benchmark, "e08")
    excesses = [row[3] for row in result.rows]
    assert any(excess > 1e-9 for excess in excesses)
    assert any(excess < -1e-9 for excess in excesses)
