"""E1 bench — regenerates the Eckhardt–Lee inequality table (eqs. (4)-(7)).

Shape reproduced: P(both fail) = E[Θ]² + Var(Θ) ≥ independence, with the
penalty growing in the difficulty variance.
"""

from _util import run_experiment_benchmark


def test_e01_el_inequality(benchmark):
    result = run_experiment_benchmark(benchmark, "e01")
    # headline shape: the clustered (high-variance) row has a strictly
    # larger dependence excess than the flat row
    by_label = {row[0]: row for row in result.rows}
    clustered = by_label["clustered (high variance)"]
    flat = by_label["constant (disjoint cover)"]
    assert clustered[2] - clustered[3] > flat[2] - flat[3]
