"""X1 bench — regenerates the common-clarification extension table (§5).

Shape reproduced: broadcasting a clarification helps but carries the
eq. (20) dependence penalty relative to per-team resolution; a
deterministic clarification carries none.
"""

from _util import run_experiment_benchmark


def test_x1_clarifications(benchmark):
    result = run_experiment_benchmark(benchmark, "x1")
    by_label = {row[0]: row for row in result.rows}
    assert by_label["random which-ambiguity"][4] > 0
    assert abs(by_label["deterministic"][4]) <= 1e-12
