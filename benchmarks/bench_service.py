#!/usr/bin/env python
"""Load harness for the simulation service: warm/cold/coalescible mix.

Measures the serving layer's headline numbers against a live server
(spawned in-process when ``--url`` is not given):

* **cold** — wall time of one uncached run (a fresh seed, full
  Monte-Carlo cost through the scheduler and a worker);
* **warm** — p50/p99 latency of repeated identical requests (two-tier
  cache hits; never touch a worker).  Gate: ``cold / warm_p50 >= 50``;
* **coalesce** — N clients fire the *same* uncached request
  simultaneously; the scheduler must run exactly **one** underlying
  computation and attach the other N−1 requests to it.  Gate: the
  server-side completed-jobs counter moves by 1 and the coalesced
  counter by N−1;
* **mixed** — N concurrent clients × M requests each over a 70 % warm /
  20 % cold / 10 % coalescible-hot workload: throughput and p50/p99;
* **cluster** — the same mixed workload through a router fronting real
  shard subprocesses, at 1 shard and at 4 shards, plus a cluster-wide
  coalescing check: 8 identical cold requests entering through the
  router must collapse onto exactly **one** execution anywhere in the
  cluster (the router keys the consistent-hash ring on the request's
  cache key, so all 8 land on one shard's scheduler).

**A note on the cluster scaling gate.**  Shards are separate OS
processes, so 1→4 shard throughput scaling is bounded by the *host's
cores*: on a ≥4-core box the harness demands ≥2.5×; on smaller hosts
(including single-core CI runners, where four shards time-share one
CPU and genuine parallel speedup is physically impossible) the gate
relaxes to "no collapse" (≥0.5×) and records the measured ratio, the
requirement applied and the core count in the output so the number is
never silently misread as a parallelism result.  The coalescing gate is
strict everywhere — it is a correctness property, not a hardware one.

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py                # self-hosted
    PYTHONPATH=src python benchmarks/bench_service.py --smoke        # short burst
    PYTHONPATH=src python benchmarks/bench_service.py --url http://127.0.0.1:8752

Writes one JSON record (default ``BENCH_service.json`` at the repo root)
and exits non-zero when a gate fails, so the committed file only ever
comes from a healthy run.  ``tools/bench_all.py`` runs this suite
alongside the adaptive one.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import statistics
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor

ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUT = ROOT / "BENCH_service.json"


def _quantile(values, q):
    values = sorted(values)
    return values[min(int(q * len(values)), len(values) - 1)]


def _latency_summary(latencies):
    return {
        "count": len(latencies),
        "mean_seconds": statistics.fmean(latencies),
        "p50_seconds": _quantile(latencies, 0.50),
        "p99_seconds": _quantile(latencies, 0.99),
        "max_seconds": max(latencies),
    }


def _fresh_seed_base() -> int:
    """A seed nonce so repeated harness runs against a persistent server
    still hit genuinely cold points."""
    return (os.getpid() * 1_000_003 + int(time.time())) % 2**30


def _measure_cold_warm(make_client, experiment, seed, warm_requests):
    client = make_client()
    try:
        start = time.perf_counter()
        job = client.run(experiment, seed=seed)
        cold_seconds = time.perf_counter() - start
        assert not job["cached"], "cold request was unexpectedly cached"
        warm_latencies = []
        for _ in range(warm_requests):
            start = time.perf_counter()
            job = client.run(experiment, seed=seed)
            warm_latencies.append(time.perf_counter() - start)
            assert job["cached"], "warm request missed the cache"
    finally:
        client.close()
    return cold_seconds, warm_latencies


def _measure_coalesce(make_client, experiment, seed, clients):
    metrics_client = make_client()
    before = metrics_client.metrics()["jobs"]
    barrier = threading.Barrier(clients)

    def fire(_index):
        client = make_client()
        try:
            barrier.wait(timeout=60)
            start = time.perf_counter()
            job = client.run(experiment, seed=seed)
            return time.perf_counter() - start, job["id"]
        finally:
            client.close()

    with ThreadPoolExecutor(max_workers=clients) as pool:
        outcomes = list(pool.map(fire, range(clients)))
    after = metrics_client.metrics()["jobs"]
    metrics_client.close()
    latencies = [latency for latency, _ in outcomes]
    job_ids = {job_id for _, job_id in outcomes}
    return {
        "clients": clients,
        "distinct_jobs": len(job_ids),
        "executions": after["completed"] - before["completed"],
        "coalesced": after["coalesced"] - before["coalesced"],
        "latency": _latency_summary(latencies),
    }


def _measure_mixed(
    make_client, experiment, warm_seeds, cold_base, hot_base, clients, requests
):
    """N clients × M requests: 70% warm pool / 20% cold / 10% shared hot."""
    cold_counter = iter(range(10_000_000))
    counter_lock = threading.Lock()
    barrier = threading.Barrier(clients)

    def drive(worker):
        client = make_client()
        latencies = []
        try:
            barrier.wait(timeout=60)
            for index in range(requests):
                slot = (worker + index) % 10
                if slot < 7:  # warm: small shared pool, cached after first hit
                    seed = warm_seeds[index % len(warm_seeds)]
                elif slot < 9:  # cold: globally unique seed
                    with counter_lock:
                        seed = cold_base + next(cold_counter)
                else:  # hot: same fresh seed across workers per wave
                    seed = hot_base + index
                start = time.perf_counter()
                client.run(experiment, seed=seed)
                latencies.append(time.perf_counter() - start)
            return latencies
        finally:
            client.close()

    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=clients) as pool:
        per_worker = list(pool.map(drive, range(clients)))
    wall = time.perf_counter() - start
    latencies = [latency for worker in per_worker for latency in worker]
    return {
        "clients": clients,
        "requests": len(latencies),
        "wall_seconds": wall,
        "throughput_rps": len(latencies) / wall,
        "latency": _latency_summary(latencies),
    }


#: minimum warm-path throughput ratio with observability enabled vs the
#: fully uninstrumented server (NullRegistry, no spans, no trace plumbing)
OBS_OVERHEAD_MIN_RATIO = 0.90

#: the span names one routed POST /run must produce, each with a
#: non-zero monotonic duration (the provenance acceptance check)
SPAN_TREE_REQUIRED = (
    "http.request",
    "router.relay",
    "job.queue_wait",
    "job.execute",
    "job.persist",
)


def _measure_obs_overhead(experiment, requests):
    """Warm-request throughput, instrumented vs uninstrumented.

    Both servers run in this process on identical warm workloads (every
    request after the first is a memory-tier cache hit, so the measured
    path is exactly the serving layer the registry/span code sits on).
    Passes interleave A/B and each mode keeps its best pass — noise
    (GC pauses, scheduler preemption) only ever slows a pass down, so
    best-of-N converges on the true serving rate for both modes.
    """
    from repro.service import ServiceClient
    from repro.service.http import ThreadedServer

    def throughput(instrument):
        with ThreadedServer(
            procs=0, queue_limit=256, instrument=instrument
        ) as hosted:
            client = ServiceClient(hosted.url)
            try:
                client.run(experiment, seed=4242)  # warm the cache
                start = time.perf_counter()
                for _ in range(requests):
                    client.run(experiment, seed=4242)
                wall = time.perf_counter() - start
            finally:
                client.close()
        return requests / wall

    passes = 3
    instrumented: list = []
    uninstrumented: list = []
    for _ in range(passes):
        uninstrumented.append(throughput(instrument=False))
        instrumented.append(throughput(instrument=True))
    best_on = max(instrumented)
    best_off = max(uninstrumented)
    return {
        "experiment": experiment,
        "requests_per_pass": requests,
        "passes": passes,
        "instrumented_rps": best_on,
        "uninstrumented_rps": best_off,
        "instrumented_rps_per_pass": instrumented,
        "uninstrumented_rps_per_pass": uninstrumented,
        "throughput_ratio": best_on / best_off,
        "requirement": OBS_OVERHEAD_MIN_RATIO,
    }


def _measure_span_tree(experiment):
    """One routed ``POST /run``'s span tree (router + shard in-process).

    The shard's worker spans ship back to its scheduler and re-emit
    there; the router's relay span emits on the router thread — both
    land in this process's span sink, so the whole tree is observable
    without log files.
    """
    from repro.obs import capture_spans
    from repro.service import ServiceClient
    from repro.service.http import ThreadedServer
    from repro.service.router import ThreadedRouter

    with capture_spans() as records:
        with ThreadedServer(procs=0, name="b0", queue_limit=256) as shard:
            with ThreadedRouter({"b0": shard.url}) as router:
                client = ServiceClient(router.url)
                try:
                    job = client.run(experiment, seed=990_123)
                    trace_id = client.last_trace_id
                finally:
                    client.close()
    spans = [
        record
        for record in records
        if record.get("trace_id") == trace_id
    ]
    names = {record.get("name") for record in spans}
    return {
        "experiment": experiment,
        "trace_id": trace_id,
        "job_state": job["state"],
        "spans": len(spans),
        "span_names": sorted(str(name) for name in names),
        "required": list(SPAN_TREE_REQUIRED),
        "covers_required": set(SPAN_TREE_REQUIRED) <= names,
        "nonzero_durations": all(
            float(record.get("duration_seconds") or 0) > 0
            for record in spans
            if record.get("name") in SPAN_TREE_REQUIRED
        ),
    }


#: throughput ratio demanded from 1 -> 4 shards on a host with >= 4 cores
CLUSTER_SCALING_STRICT = 2.5
#: cores below which the gate relaxes to a no-collapse check (see module
#: docstring: parallel scaling cannot exceed the core count)
CLUSTER_SCALING_MIN_CORES = 4
CLUSTER_SCALING_RELAXED = 0.5


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def _measure_cluster_phase(
    n_shards,
    experiment,
    cold_experiment,
    clients,
    requests,
    coalesce_check,
):
    """One cluster configuration: router + ``n_shards`` serve subprocesses.

    Returns the mixed-workload numbers and (when ``coalesce_check``) the
    cluster-wide coalescing outcome measured through the router's
    aggregated metrics.
    """
    import tempfile

    from repro.service import LocalCluster, ServiceClient

    with tempfile.TemporaryDirectory(
        prefix=f"bench_cluster{n_shards}_"
    ) as tmp:
        with LocalCluster(
            n_shards, tmp, procs=0, queue_limit=256
        ) as cluster:
            url = cluster.url

            def make_client():
                return ServiceClient(url)

            base = _fresh_seed_base()
            phase = {"shards": n_shards}
            if coalesce_check:
                phase["coalesce"] = _measure_coalesce(
                    make_client, cold_experiment, base + 1, clients
                )
            warm_seeds = list(range(5))
            client = make_client()
            for seed in warm_seeds:  # pre-warm the pool through the router
                client.run(experiment, seed=seed)
            client.close()
            phase["mixed"] = _measure_mixed(
                make_client,
                experiment,
                warm_seeds,
                cold_base=base + 10_000,
                hot_base=base + 20_000_000,
                clients=clients,
                requests=requests,
            )
            metrics_client = make_client()
            cluster_metrics = metrics_client.metrics()
            metrics_client.close()
            phase["shards_reachable"] = cluster_metrics["shards_reachable"]
            phase["jobs"] = cluster_metrics["jobs"]
    return phase


def _measure_cluster(experiment, cold_experiment, clients, requests):
    """Router + 1 shard vs router + 4 shards on the same workload."""
    cores = _usable_cores()
    print("cluster: router + 1 shard ...", flush=True)
    one = _measure_cluster_phase(
        1, experiment, cold_experiment, clients, requests,
        coalesce_check=False,
    )
    print(
        f"  {one['mixed']['throughput_rps']:.0f} req/s on 1 shard",
        flush=True,
    )
    print("cluster: router + 4 shards ...", flush=True)
    four = _measure_cluster_phase(
        4, experiment, cold_experiment, clients, requests,
        coalesce_check=True,
    )
    print(
        f"  {four['mixed']['throughput_rps']:.0f} req/s on 4 shards; "
        f"coalesce: {four['coalesce']['executions']} execution(s) for "
        f"{four['coalesce']['clients']} identical requests",
        flush=True,
    )
    ratio = (
        four["mixed"]["throughput_rps"] / one["mixed"]["throughput_rps"]
    )
    strict = cores >= CLUSTER_SCALING_MIN_CORES
    requirement = (
        CLUSTER_SCALING_STRICT if strict else CLUSTER_SCALING_RELAXED
    )
    print(
        f"  scaling 1->4 shards: {ratio:.2f}x on {cores} usable core(s); "
        f"requirement {requirement}x "
        f"({'strict' if strict else 'relaxed: shards time-share the cores'})",
        flush=True,
    )
    return {
        "cores_usable": cores,
        "experiment": experiment,
        "cold_experiment": cold_experiment,
        "shards_1": one,
        "shards_4": four,
        "scaling_1_to_4": ratio,
        "scaling_requirement": requirement,
        "scaling_requirement_strict": strict,
        "scaling_requirement_note": (
            "strict 2.5x applies on hosts with >= 4 usable cores; below "
            "that, 4 shard processes time-share the cores and parallel "
            "speedup is physically bounded by the core count, so the "
            "gate checks sharding adds no collapse instead"
        ),
    }


def run_benchmark(
    url=None,
    cold_experiment="e02",
    mixed_experiment="x3",
    clients=8,
    warm_requests=50,
    mixed_requests=48,
    procs=1,
    smoke=False,
    cluster=True,
):
    """Run every phase against ``url`` (or a self-hosted server) and
    return the consolidated record."""
    from repro.service import ServiceClient
    from repro.service.http import ThreadedServer

    if smoke:
        cold_experiment = "e07"
        warm_requests = min(warm_requests, 12)
        mixed_requests = min(mixed_requests, 12)

    import tempfile

    hosted = None
    tmp = None
    if url is None:
        tmp = tempfile.TemporaryDirectory(prefix="bench_service_")
        hosted = ThreadedServer(
            store_path=tmp.name, procs=procs, queue_limit=256
        )
        url = hosted.url
    try:
        def make_client():
            return ServiceClient(url)

        base = _fresh_seed_base()
        print(f"target {url}  (seed base {base})", flush=True)

        print(f"cold/warm: {cold_experiment}, {warm_requests} warm "
              "requests ...", flush=True)
        cold_seconds, warm_latencies = _measure_cold_warm(
            make_client, cold_experiment, base, warm_requests
        )
        warm = _latency_summary(warm_latencies)
        warm_speedup = cold_seconds / warm["p50_seconds"]
        print(
            f"  cold {cold_seconds * 1e3:.1f} ms, warm p50 "
            f"{warm['p50_seconds'] * 1e3:.2f} ms -> {warm_speedup:.0f}x",
            flush=True,
        )

        print(
            f"coalesce: {clients} simultaneous identical cold requests ...",
            flush=True,
        )
        coalesce = _measure_coalesce(
            make_client, cold_experiment, base + 1, clients
        )
        print(
            f"  {coalesce['executions']} execution(s), "
            f"{coalesce['coalesced']} coalesced, "
            f"{coalesce['distinct_jobs']} distinct job id(s)",
            flush=True,
        )

        print(
            f"mixed: {clients} clients x {mixed_requests} requests "
            f"({mixed_experiment}; 70% warm / 20% cold / 10% hot) ...",
            flush=True,
        )
        warm_seeds = list(range(5))
        client = make_client()
        for seed in warm_seeds:  # pre-warm the pool
            client.run(mixed_experiment, seed=seed)
        client.close()
        mixed = _measure_mixed(
            make_client,
            mixed_experiment,
            warm_seeds,
            cold_base=base + 10_000,
            hot_base=base + 20_000_000,
            clients=clients,
            requests=mixed_requests,
        )
        print(
            f"  {mixed['throughput_rps']:.0f} req/s, p50 "
            f"{mixed['latency']['p50_seconds'] * 1e3:.2f} ms, p99 "
            f"{mixed['latency']['p99_seconds'] * 1e3:.2f} ms",
            flush=True,
        )

        final_metrics_client = make_client()
        server_metrics = final_metrics_client.metrics()
        final_metrics_client.close()
    finally:
        if hosted is not None:
            hosted.stop()
        if tmp is not None:
            tmp.cleanup()

    obs_requests = 60 if smoke else 200
    print(
        f"obs overhead: {obs_requests} warm requests x 3 passes, "
        "instrumented vs uninstrumented ...",
        flush=True,
    )
    obs_overhead = _measure_obs_overhead(mixed_experiment, obs_requests)
    print(
        f"  {obs_overhead['instrumented_rps']:.0f} req/s instrumented vs "
        f"{obs_overhead['uninstrumented_rps']:.0f} req/s bare -> "
        f"{obs_overhead['throughput_ratio']:.3f}x "
        f"(require >= {OBS_OVERHEAD_MIN_RATIO})",
        flush=True,
    )

    print("span tree: one routed POST /run ...", flush=True)
    span_tree = _measure_span_tree(mixed_experiment)
    print(
        f"  {span_tree['spans']} spans on trace "
        f"{span_tree['trace_id'][:8]}…, covers required: "
        f"{span_tree['covers_required']}, non-zero durations: "
        f"{span_tree['nonzero_durations']}",
        flush=True,
    )

    cluster_record = None
    if cluster:
        cluster_record = _measure_cluster(
            mixed_experiment, cold_experiment, clients, mixed_requests
        )

    record = {
        "suite": "service-load",
        "smoke": smoke,
        "self_hosted": hosted is not None,
        "procs": procs if hosted is not None else None,
        "cold_experiment": cold_experiment,
        "mixed_experiment": mixed_experiment,
        "cold_seconds": cold_seconds,
        "warm": warm,
        "warm_speedup_vs_cold": warm_speedup,
        "coalesce": coalesce,
        "mixed": mixed,
        "cache_hit_ratio": server_metrics["cache"]["hit_ratio"],
        "cache": server_metrics["cache"],
        "server_jobs": server_metrics["jobs"],
        "gate_warm_speedup_ge_50": warm_speedup >= 50.0,
        "gate_coalesce_single_execution": (
            coalesce["executions"] == 1
            and coalesce["coalesced"] == clients - 1
            and coalesce["distinct_jobs"] == 1
        ),
        "obs_overhead": obs_overhead,
        "span_tree": span_tree,
        "gate_obs_overhead": (
            obs_overhead["throughput_ratio"] >= OBS_OVERHEAD_MIN_RATIO
        ),
        "gate_span_tree_complete": (
            span_tree["covers_required"]
            and span_tree["nonzero_durations"]
        ),
    }
    if cluster_record is not None:
        record["cluster"] = cluster_record
        # correctness gate, strict on any hardware: identical requests
        # entering through the router collapse onto one execution even
        # when four shards could each have run the job
        record["gate_cluster_coalesce_single_execution"] = (
            cluster_record["shards_4"]["coalesce"]["executions"] == 1
        )
        record["gate_cluster_scaling"] = (
            cluster_record["scaling_1_to_4"]
            >= cluster_record["scaling_requirement"]
        )
    return record


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Load-test the simulation service (warm/cold/"
        "coalescible mix) and write BENCH_service.json"
    )
    parser.add_argument(
        "--url",
        metavar="URL",
        help="target a running server (default: host one in-process on a "
        "temporary store)",
    )
    parser.add_argument(
        "--out",
        default=str(DEFAULT_OUT),
        metavar="FILE",
        help=f"output path (default {DEFAULT_OUT.name} at the repo root)",
    )
    parser.add_argument(
        "--clients",
        type=int,
        default=8,
        help="concurrent client threads (default 8)",
    )
    parser.add_argument(
        "--warm-requests",
        type=int,
        default=50,
        help="repeated warm requests measured (default 50)",
    )
    parser.add_argument(
        "--mixed-requests",
        type=int,
        default=48,
        help="requests per client in the mixed phase (default 48)",
    )
    parser.add_argument(
        "--procs",
        type=int,
        default=1,
        help="worker processes for the self-hosted server (default 1)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="short burst (CI): cheaper cold experiment, fewer requests",
    )
    parser.add_argument(
        "--no-cluster",
        action="store_true",
        help="skip the router + shard-subprocess phases (single-node only)",
    )
    args = parser.parse_args(argv)

    record = run_benchmark(
        url=args.url,
        clients=args.clients,
        warm_requests=args.warm_requests,
        mixed_requests=args.mixed_requests,
        procs=args.procs,
        smoke=args.smoke,
        cluster=not args.no_cluster,
    )
    out = pathlib.Path(args.out)
    out.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
    failed = []
    if not record["gate_warm_speedup_ge_50"]:
        failed.append(
            f"warm speedup {record['warm_speedup_vs_cold']:.1f}x < 50x"
        )
    if not record["gate_coalesce_single_execution"]:
        failed.append(
            f"coalescing ran {record['coalesce']['executions']} "
            f"executions for {record['coalesce']['clients']} identical "
            "requests (want exactly 1)"
        )
    if not record["gate_obs_overhead"]:
        failed.append(
            f"observability overhead: instrumented throughput "
            f"{record['obs_overhead']['throughput_ratio']:.3f}x of bare "
            f"(require >= {OBS_OVERHEAD_MIN_RATIO})"
        )
    if not record["gate_span_tree_complete"]:
        failed.append(
            f"span tree incomplete: got {record['span_tree']['span_names']}"
            f", need {record['span_tree']['required']} with non-zero "
            "durations"
        )
    if "cluster" in record:
        cluster = record["cluster"]
        if not record["gate_cluster_coalesce_single_execution"]:
            failed.append(
                "cluster coalescing ran "
                f"{cluster['shards_4']['coalesce']['executions']} "
                "executions across 4 shards for "
                f"{cluster['shards_4']['coalesce']['clients']} identical "
                "requests (want exactly 1)"
            )
        if not record["gate_cluster_scaling"]:
            failed.append(
                f"1->4 shard scaling {cluster['scaling_1_to_4']:.2f}x < "
                f"{cluster['scaling_requirement']}x required on "
                f"{cluster['cores_usable']} usable core(s)"
            )
    if failed:
        print("FAIL: " + "; ".join(failed), file=sys.stderr)
        return 1
    summary = (
        f"gates ok: warm {record['warm_speedup_vs_cold']:.0f}x >= 50x, "
        f"coalesce {record['coalesce']['coalesced']}/"
        f"{record['coalesce']['clients'] - 1} shared on 1 execution, "
        f"obs overhead {record['obs_overhead']['throughput_ratio']:.3f}x "
        f">= {OBS_OVERHEAD_MIN_RATIO}, span tree "
        f"{record['span_tree']['spans']} spans complete"
    )
    if "cluster" in record:
        cluster = record["cluster"]
        summary += (
            f", cluster coalesce 1 execution on 4 shards, scaling "
            f"{cluster['scaling_1_to_4']:.2f}x >= "
            f"{cluster['scaling_requirement']}x "
            f"({cluster['cores_usable']} core(s))"
        )
    print(summary)
    return 0


if __name__ == "__main__":
    sys.exit(main())
