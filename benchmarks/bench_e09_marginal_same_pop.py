"""E9 bench — regenerates the eqs. (22)-(23) marginal table.

Shape reproduced: P(system fails | same suite) >= P(system fails |
independent suites), the gap being E_Q[Var_T(ξ(X,T))].
"""

from _util import run_experiment_benchmark


def test_e09_marginal_same_pop(benchmark):
    result = run_experiment_benchmark(benchmark, "e09")
    by_regime = {row[0]: row for row in result.rows}
    same = by_regime["same suite"]
    independent = by_regime["independent suites"]
    assert same[2] >= independent[2]          # system pfd ordering
    assert same[5] > 0                        # E_Q[Var_T xi] term
    assert abs(independent[5]) <= 1e-12       # no term without sharing
