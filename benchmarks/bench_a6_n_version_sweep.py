"""A6 bench — regenerates the 1-out-of-N sweep.

Shape reproduced: extra channels help in both regimes, but the
same-suite / independent-suite pfd ratio grows rapidly with N — shared
testing caps the value of additional diversity.
"""

from _util import run_experiment_benchmark


def test_a6_n_version_sweep(benchmark):
    result = run_experiment_benchmark(benchmark, "a6")
    ratios = [row[3] for row in result.rows]
    assert ratios[0] == 1.0
    assert all(a <= b + 1e-9 for a, b in zip(ratios[1:], ratios[2:]))
