"""X2 bench — regenerates the common-mistake extension table (§5).

Shape reproduced: a forced shared fault raises the system pfd; a correct
oracle can test it away; a blind oracle leaves the Q(R_m) common-mode
floor intact.
"""

from _util import run_experiment_benchmark


def test_x2_common_mistakes(benchmark):
    result = run_experiment_benchmark(benchmark, "x2")
    values = {row[0]: row[1] for row in result.rows}
    assert values["untested, with mistake"] > values["untested, clean"]
    assert (
        values["tested, mistake + blind oracle (MC)"]
        >= values["mistake region mass Q(R_m)"] - 1e-9
    )
