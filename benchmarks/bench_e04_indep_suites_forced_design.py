"""E4 bench — regenerates the eq. (17) table (independent suites, forced design).

Shape reproduced: joint = ζ_A(x) ζ_B(x); excess identically zero.
"""

from _util import run_experiment_benchmark


def test_e04_indep_suites_forced_design(benchmark):
    result = run_experiment_benchmark(benchmark, "e04")
    for row in result.rows:
        assert abs(row[3]) <= 1e-12
