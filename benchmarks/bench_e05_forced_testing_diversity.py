"""E5 bench — regenerates the eq. (18) table (forced testing diversity).

Shape reproduced: two different suite-generation procedures, independent
draws — conditional independence still holds.
"""

from _util import run_experiment_benchmark


def test_e05_forced_testing_diversity(benchmark):
    result = run_experiment_benchmark(benchmark, "e05")
    for row in result.rows:
        assert abs(row[3]) <= 1e-12
