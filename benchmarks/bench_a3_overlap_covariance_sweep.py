"""A3 bench — regenerates the methodology fault-overlap sweep.

Shape reproduced: both the LM difficulty covariance and the same-suite
testing covariance rise from near zero (disjoint fault sets) to their
maxima (identical fault sets).
"""

from _util import run_experiment_benchmark


def test_a3_overlap_covariance_sweep(benchmark):
    result = run_experiment_benchmark(benchmark, "a3")
    difficulty_covs = [row[2] for row in result.rows]
    testing_covs = [row[4] for row in result.rows]
    assert difficulty_covs[-1] > difficulty_covs[0]
    assert testing_covs[-1] > testing_covs[0]
