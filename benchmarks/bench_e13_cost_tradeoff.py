"""E13 bench — regenerates the §3.4.1 cost-scenario table.

Shape reproduced: at equal generation cost the merged double-length common
suite beats two independent suites; at equal execution cost independent
suites win; the merged-suite advantage shrinks with effort (diminishing
returns).
"""

from _util import run_experiment_benchmark


def test_e13_cost_tradeoff(benchmark):
    result = run_experiment_benchmark(benchmark, "e13")
    for row in result.rows:
        _n, independent_n, same_n, same_2n, _advantage = row
        assert same_2n <= independent_n + 1e-15
        assert independent_n <= same_n + 1e-15
    advantages = [row[4] for row in result.rows]
    assert advantages[0] >= advantages[-1]
