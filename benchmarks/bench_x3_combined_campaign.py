"""X3 bench — regenerates the combined-activities campaign comparison (§5).

Shape reproduced: at matched effort the commonality-heavy campaign delivers
a less reliable system than the diversity-preserving one; injecting a
common mistake is the only step that degrades the system.
"""

from _util import run_experiment_benchmark


def test_x3_combined_campaign(benchmark):
    result = run_experiment_benchmark(benchmark, "x3")
    values = {row[0]: row[1] for row in result.rows}
    assert (
        values["commonality-heavy"] >= values["diversity-preserving"] - 1e-12
    )
    assert (
        values["commonality-heavy + mistake"] > values["commonality-heavy"]
    )
