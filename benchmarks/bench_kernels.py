"""Micro-benchmarks of the computational kernels.

These time the hot paths a user of the library actually pays for: the
inclusion-exclusion closed forms, the testing closure, the suite-moment
sweeps and the full-pipeline Monte-Carlo replication loop.  Useful for
catching performance regressions; they carry no reproduction claims.
"""

import os
import time

import numpy as np
import pytest

from repro.analytic import BernoulliExactEngine
from repro.core import SameSuite, TestedPopulationView, marginal_system_pfd
from repro.demand import DemandSpace, uniform_profile
from repro.faults import clustered_universe
from repro.mc import (
    apply_testing_batch,
    simulate_marginal_system_pfd,
    simulate_marginal_system_pfd_batch,
)
from repro.populations import BernoulliFaultPopulation
from repro.testing import OperationalSuiteGenerator, apply_testing


@pytest.fixture(scope="module")
def kernel_model():
    space = DemandSpace(300)
    profile = uniform_profile(space)
    universe = clustered_universe(space, n_faults=25, region_size=8, rng=0)
    population = BernoulliFaultPopulation.uniform(universe, 0.3)
    generator = OperationalSuiteGenerator(profile, 60)
    return space, profile, universe, population, generator


def test_kernel_exact_zeta(benchmark, kernel_model):
    _space, profile, universe, population, _generator = kernel_model
    engine = BernoulliExactEngine(universe, profile)
    benchmark(engine.zeta, population, 60)


def test_kernel_exact_second_moment(benchmark, kernel_model):
    _space, profile, universe, population, _generator = kernel_model
    engine = BernoulliExactEngine(universe, profile)
    benchmark(engine.xi_second_moment, population, 60)


def test_kernel_testing_closure(benchmark, kernel_model):
    _space, _profile, _universe, population, generator = kernel_model
    version = population.sample(np.random.default_rng(1))
    suite = generator.sample(np.random.default_rng(2))
    benchmark(apply_testing, version, suite)


def test_kernel_suite_moments_sampled(benchmark, kernel_model):
    _space, _profile, _universe, population, generator = kernel_model
    view = TestedPopulationView(population, generator)
    benchmark.pedantic(
        view.suite_moments,
        kwargs={"n_suites": 100, "rng": 3},
        rounds=3,
        iterations=1,
    )


def test_kernel_marginal_analytic(benchmark, kernel_model):
    _space, profile, _universe, population, generator = kernel_model
    benchmark.pedantic(
        marginal_system_pfd,
        args=(SameSuite(generator), population, profile),
        kwargs={"n_suites": 100, "rng": 4},
        rounds=3,
        iterations=1,
    )


def test_kernel_mc_replications(benchmark, kernel_model):
    _space, profile, _universe, population, generator = kernel_model
    benchmark.pedantic(
        simulate_marginal_system_pfd,
        args=(SameSuite(generator), population, profile),
        kwargs={"n_replications": 50, "rng": 5, "engine": "scalar"},
        rounds=3,
        iterations=1,
    )


def test_kernel_mc_replications_batch(benchmark, kernel_model):
    _space, profile, _universe, population, generator = kernel_model
    benchmark.pedantic(
        simulate_marginal_system_pfd_batch,
        args=(SameSuite(generator), population, profile),
        kwargs={"n_replications": 50, "rng": 5},
        rounds=3,
        iterations=1,
    )


def test_kernel_testing_closure_batch(benchmark, kernel_model):
    _space, _profile, universe, population, generator = kernel_model
    faults = population.sample_fault_matrix(2000, np.random.default_rng(1))
    masks = generator.sample_demand_masks(2000, np.random.default_rng(2))
    benchmark(apply_testing_batch, faults, masks, universe)


def test_kernel_mc_batch_speedup(kernel_model):
    """Acceptance check: batch path >= 10x the scalar replication loop.

    Also asserts the two engines agree — overlapping 95% confidence
    intervals on the marginal system pfd — so the speedup is not bought
    with a different estimand.  On shared CI runners (CI env var set) the
    wall-clock bar drops to 3x so neighbour contention cannot fail an
    unrelated PR; the 10x acceptance bar applies to local runs.
    """
    min_speedup = 3.0 if os.environ.get("CI") else 10.0
    _space, profile, _universe, population, generator = kernel_model
    regime = SameSuite(generator)
    n_replications = 2000
    # warm both paths (lazy imports, BLAS thread spin-up) before timing
    simulate_marginal_system_pfd_batch(
        regime, population, profile, n_replications=10, rng=0
    )
    simulate_marginal_system_pfd(
        regime, population, profile, n_replications=10, rng=0, engine="scalar"
    )
    start = time.perf_counter()
    scalar = simulate_marginal_system_pfd(
        regime,
        population,
        profile,
        n_replications=n_replications,
        rng=5,
        engine="scalar",
    )
    scalar_elapsed = time.perf_counter() - start
    start = time.perf_counter()
    batch = simulate_marginal_system_pfd_batch(
        regime, population, profile, n_replications=n_replications, rng=5
    )
    batch_elapsed = time.perf_counter() - start

    speedup = scalar_elapsed / batch_elapsed
    assert speedup >= min_speedup, (
        f"batch path only {speedup:.1f}x faster "
        f"({scalar_elapsed:.3f}s vs {batch_elapsed:.3f}s)"
    )
    scalar_low, scalar_high = scalar.normal_interval(0.95)
    batch_low, batch_high = batch.normal_interval(0.95)
    assert scalar_low <= batch_high and batch_low <= scalar_high, (
        f"engines disagree: scalar CI ({scalar_low:.6f}, {scalar_high:.6f}) "
        f"vs batch CI ({batch_low:.6f}, {batch_high:.6f})"
    )
