"""Micro-benchmarks of the computational kernels.

These time the hot paths a user of the library actually pays for: the
inclusion-exclusion closed forms, the testing closure, the suite-moment
sweeps and the full-pipeline Monte-Carlo replication loop.  Useful for
catching performance regressions; they carry no reproduction claims.
"""

import os
import time

import numpy as np
import pytest

from repro.analytic import BernoulliExactEngine
from repro.core import SameSuite, TestedPopulationView, marginal_system_pfd
from repro.core.bounds import back_to_back_envelope
from repro.demand import DemandSpace, uniform_profile
from repro.faults import clustered_universe
from repro.mc import (
    apply_imperfect_testing_batch,
    apply_testing_batch,
    back_to_back_batch,
    simulate_marginal_system_pfd,
    simulate_marginal_system_pfd_batch,
)
from repro.populations import BernoulliFaultPopulation
from repro.testing import (
    BackToBackComparator,
    ImperfectFixing,
    ImperfectOracle,
    OperationalSuiteGenerator,
    apply_testing,
)
from repro.versions import shared_fault_outputs


@pytest.fixture(scope="module")
def kernel_model():
    space = DemandSpace(300)
    profile = uniform_profile(space)
    universe = clustered_universe(space, n_faults=25, region_size=8, rng=0)
    population = BernoulliFaultPopulation.uniform(universe, 0.3)
    generator = OperationalSuiteGenerator(profile, 60)
    return space, profile, universe, population, generator


def test_kernel_exact_zeta(benchmark, kernel_model):
    _space, profile, universe, population, _generator = kernel_model
    engine = BernoulliExactEngine(universe, profile)
    benchmark(engine.zeta, population, 60)


def test_kernel_exact_second_moment(benchmark, kernel_model):
    _space, profile, universe, population, _generator = kernel_model
    engine = BernoulliExactEngine(universe, profile)
    benchmark(engine.xi_second_moment, population, 60)


def test_kernel_testing_closure(benchmark, kernel_model):
    _space, _profile, _universe, population, generator = kernel_model
    version = population.sample(np.random.default_rng(1))
    suite = generator.sample(np.random.default_rng(2))
    benchmark(apply_testing, version, suite)


def test_kernel_suite_moments_sampled(benchmark, kernel_model):
    _space, _profile, _universe, population, generator = kernel_model
    view = TestedPopulationView(population, generator)
    benchmark.pedantic(
        view.suite_moments,
        kwargs={"n_suites": 100, "rng": 3},
        rounds=3,
        iterations=1,
    )


def test_kernel_marginal_analytic(benchmark, kernel_model):
    _space, profile, _universe, population, generator = kernel_model
    benchmark.pedantic(
        marginal_system_pfd,
        args=(SameSuite(generator), population, profile),
        kwargs={"n_suites": 100, "rng": 4},
        rounds=3,
        iterations=1,
    )


def test_kernel_mc_replications(benchmark, kernel_model):
    _space, profile, _universe, population, generator = kernel_model
    benchmark.pedantic(
        simulate_marginal_system_pfd,
        args=(SameSuite(generator), population, profile),
        kwargs={"n_replications": 50, "rng": 5, "engine": "scalar"},
        rounds=3,
        iterations=1,
    )


def test_kernel_mc_replications_batch(benchmark, kernel_model):
    _space, profile, _universe, population, generator = kernel_model
    benchmark.pedantic(
        simulate_marginal_system_pfd_batch,
        args=(SameSuite(generator), population, profile),
        kwargs={"n_replications": 50, "rng": 5},
        rounds=3,
        iterations=1,
    )


def test_kernel_testing_closure_batch(benchmark, kernel_model):
    _space, _profile, universe, population, generator = kernel_model
    faults = population.sample_fault_matrix(2000, np.random.default_rng(1))
    masks = generator.sample_demand_masks(2000, np.random.default_rng(2))
    benchmark(apply_testing_batch, faults, masks, universe)


@pytest.fixture(scope="module")
def imperfect_model():
    """The e11/e12 bench model: the experiments' standard-scenario shape."""
    space = DemandSpace(80)
    profile = uniform_profile(space)
    universe = clustered_universe(space, n_faults=14, region_size=5, rng=0)
    population = BernoulliFaultPopulation.uniform(universe, 0.3)
    generator = OperationalSuiteGenerator(profile, 30)
    return space, profile, universe, population, generator


def test_kernel_imperfect_closure_batch(benchmark, imperfect_model):
    _space, _profile, universe, population, generator = imperfect_model
    faults = population.sample_fault_matrix(2000, np.random.default_rng(1))
    counts = generator.sample_demand_counts(2000, np.random.default_rng(2))
    benchmark(
        apply_imperfect_testing_batch,
        faults,
        counts,
        universe,
        0.75,
        0.5,
        np.random.default_rng(3),
    )


def test_kernel_back_to_back_batch(benchmark, imperfect_model):
    _space, _profile, universe, population, generator = imperfect_model
    faults_a = population.sample_fault_matrix(1000, np.random.default_rng(1))
    faults_b = population.sample_fault_matrix(1000, np.random.default_rng(2))
    sequences = generator.sample_demand_sequences(1000, np.random.default_rng(3))
    comparator = BackToBackComparator(shared_fault_outputs())
    benchmark(
        back_to_back_batch,
        faults_a,
        faults_b,
        sequences,
        universe,
        universe,
        comparator,
    )


def _timed(callable_, *args, **kwargs):
    start = time.perf_counter()
    callable_(*args, **kwargs)
    return time.perf_counter() - start


def test_kernel_e11_imperfect_speedup(benchmark, imperfect_model):
    """Acceptance check: the §4.1 kernel >= 10x the scalar loop (e11 model).

    Also records the measured scalar-vs-batch ratio in the benchmark JSON
    (``extra_info``) so regressions in the imperfect path are visible in
    CI artifacts.  The wall-clock bar drops to 3x on shared CI runners.
    """
    min_speedup = 3.0 if os.environ.get("CI") else 10.0
    _space, profile, _universe, population, generator = imperfect_model
    regime = SameSuite(generator)
    oracle, fixing = ImperfectOracle(0.75), ImperfectFixing(0.5)
    n_replications = 2000
    kwargs = dict(oracle=oracle, fixing=fixing, rng=5)
    # warm both paths before timing
    simulate_marginal_system_pfd(
        regime, population, profile, n_replications=10, engine="batch", **kwargs
    )
    simulate_marginal_system_pfd(
        regime, population, profile, n_replications=10, engine="scalar", **kwargs
    )
    scalar_elapsed = _timed(
        simulate_marginal_system_pfd,
        regime,
        population,
        profile,
        n_replications=n_replications,
        engine="scalar",
        **kwargs,
    )
    batch_elapsed = _timed(
        simulate_marginal_system_pfd,
        regime,
        population,
        profile,
        n_replications=n_replications,
        engine="batch",
        **kwargs,
    )
    speedup = scalar_elapsed / batch_elapsed
    benchmark.extra_info["scalar_seconds"] = round(scalar_elapsed, 4)
    benchmark.extra_info["scalar_vs_batch_ratio"] = round(speedup, 1)
    benchmark.pedantic(
        simulate_marginal_system_pfd,
        args=(regime, population, profile),
        kwargs=dict(n_replications=n_replications, engine="batch", **kwargs),
        rounds=3,
        iterations=1,
    )
    assert speedup >= min_speedup, (
        f"imperfect batch path only {speedup:.1f}x faster "
        f"({scalar_elapsed:.3f}s vs {batch_elapsed:.3f}s)"
    )


def test_kernel_e12_back_to_back_speedup(benchmark, imperfect_model):
    """Acceptance check: the §4.2 envelope >= 10x the scalar loop (e12 model).

    Records the scalar-vs-batch ratio in the benchmark JSON, mirroring the
    e11 check; the bar drops to 3x on shared CI runners.
    """
    min_speedup = 3.0 if os.environ.get("CI") else 10.0
    _space, profile, _universe, population, generator = imperfect_model
    n_replications = 1000
    back_to_back_envelope(
        population, generator, profile, n_replications=10, rng=7, engine="batch"
    )
    back_to_back_envelope(
        population, generator, profile, n_replications=10, rng=7, engine="scalar"
    )
    scalar_elapsed = _timed(
        back_to_back_envelope,
        population,
        generator,
        profile,
        n_replications=n_replications,
        rng=7,
        engine="scalar",
    )
    batch_elapsed = _timed(
        back_to_back_envelope,
        population,
        generator,
        profile,
        n_replications=n_replications,
        rng=7,
        engine="batch",
    )
    speedup = scalar_elapsed / batch_elapsed
    benchmark.extra_info["scalar_seconds"] = round(scalar_elapsed, 4)
    benchmark.extra_info["scalar_vs_batch_ratio"] = round(speedup, 1)
    benchmark.pedantic(
        back_to_back_envelope,
        args=(population, generator, profile),
        kwargs=dict(n_replications=n_replications, rng=7, engine="batch"),
        rounds=3,
        iterations=1,
    )
    assert speedup >= min_speedup, (
        f"back-to-back batch path only {speedup:.1f}x faster "
        f"({scalar_elapsed:.3f}s vs {batch_elapsed:.3f}s)"
    )


# ---------------------------------------------------------------------------
# compiled-kernel suite: numba njit vs the numpy twins (BENCH_kernels.json)
# ---------------------------------------------------------------------------

_KERNELS_SKIP_NOTE = (
    "numba not installed: compiled kernels run as their numpy reference "
    "twins, so there is no speedup to gate — install the [compiled] extra "
    "to measure the njit path"
)


def _kernel_arrays(n_replications: int):
    """Large scored-kernel inputs in the e11 model's shape."""
    from repro.rng import counter_key

    space = DemandSpace(300)
    universe = clustered_universe(space, n_faults=25, region_size=8, rng=0)
    population = BernoulliFaultPopulation.uniform(universe, 0.3)
    rng = np.random.default_rng(1)
    faults_a = population.sample_fault_matrix(n_replications, rng)
    faults_b = population.sample_fault_matrix(n_replications, rng)
    coverage = np.ascontiguousarray(universe.coverage)
    q = uniform_profile(space).probabilities
    seqs = rng.integers(0, space.size, size=(n_replications, 60))
    key = counter_key(9)
    streams = np.arange(n_replications, dtype=np.uint64)
    detect_u = np.ascontiguousarray(rng.random((n_replications, 60)))
    surv_u = np.ascontiguousarray(rng.random((n_replications, 25)))
    return faults_a, faults_b, coverage, q, seqs, key, streams, detect_u, surv_u


def _best_of(callable_, repeats=3):
    return min(_timed(callable_) for _ in range(repeats))


def measure_compiled(n_replications: int = 20_000, repeats: int = 3) -> dict:
    """Time each scored kernel: njit dispatch vs the explicit numpy twin.

    When numba is absent the dispatched call *is* the twin, so only the
    numpy time is recorded and ``speedup`` stays ``None`` — the record is
    honest about what this host could measure.
    """
    from repro.mc import kernels as k

    (
        faults_a, faults_b, coverage, q, seqs, key, streams, detect_u, surv_u,
    ) = _kernel_arrays(n_replications)
    stride = 2 * faults_a.shape[1]
    cases = {
        "pfd_values": (
            lambda: k.pfd_values(faults_a, coverage, q),
            lambda: k._np_pfd_values(faults_a, coverage, q),
        ),
        "joint_pfd_values": (
            lambda: k.joint_pfd_values(faults_a, faults_b, coverage, coverage, q),
            lambda: k._np_joint_pfd_values(
                faults_a, faults_b, coverage, coverage, q
            ),
        ),
        "imperfect_closure": (
            lambda: k.imperfect_closure(
                faults_a, seqs, coverage, detect_u, surv_u, 0.75, 0.5
            ),
            lambda: k._np_imperfect_closure(
                faults_a, seqs, coverage, detect_u, surv_u, 0.75, 0.5
            ),
        ),
        "back_to_back_counter": (
            lambda: k.back_to_back_counter(
                faults_a, faults_b, seqs, coverage, coverage, 2, 0.5,
                key, streams, 100, stride,
            ),
            lambda: (
                lambda out_a, out_b: k._np_back_to_back(
                    out_a, out_b, seqs, coverage, coverage, 2, 0.5,
                    key, streams, 100, stride,
                )
            )(faults_a.copy(), faults_b.copy()),
        ),
    }
    kernels = {}
    for name, (compiled_fn, numpy_fn) in cases.items():
        numpy_fn()  # warm caches
        numpy_seconds = _best_of(numpy_fn, repeats)
        if k.HAVE_NUMBA:
            compiled_fn()  # trigger the njit compile outside the timing
            compiled_seconds = _best_of(compiled_fn, repeats)
            speedup = numpy_seconds / compiled_seconds
        else:
            compiled_seconds = None
            speedup = None
        kernels[name] = {
            "numpy_seconds": round(numpy_seconds, 6),
            "compiled_seconds": (
                None if compiled_seconds is None else round(compiled_seconds, 6)
            ),
            "speedup": None if speedup is None else round(speedup, 2),
        }
    record = {
        "suite": "compiled-kernels",
        "have_numba": k.HAVE_NUMBA,
        "n_replications": n_replications,
        "kernels": kernels,
    }
    if k.HAVE_NUMBA:
        speedups = [entry["speedup"] for entry in kernels.values()]
        record["min_speedup"] = min(speedups)
        record["gate_compiled_speedup_ge_5"] = all(s >= 5.0 for s in speedups)
    else:
        record["min_speedup"] = None
        record["gate_compiled_speedup_ge_5"] = None
        record["note"] = _KERNELS_SKIP_NOTE
    return record


def main(argv=None) -> int:
    """Write the compiled-kernel record (``BENCH_kernels.json``)."""
    import argparse
    import json
    import pathlib
    import sys

    parser = argparse.ArgumentParser(description=main.__doc__)
    parser.add_argument("--out", default="BENCH_kernels.json", metavar="FILE")
    parser.add_argument(
        "--smoke", action="store_true", help="smaller arrays, fewer repeats"
    )
    args = parser.parse_args(argv)
    record = measure_compiled(
        n_replications=4_000 if args.smoke else 20_000,
        repeats=2 if args.smoke else 3,
    )
    out = pathlib.Path(args.out)
    out.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
    if not record["have_numba"]:
        print(f"skipping speedup gate: {record['note']}")
        return 0
    print(f"min compiled speedup: {record['min_speedup']:.2f}x (gate: >= 5)")
    if not record["gate_compiled_speedup_ge_5"]:
        print("FAIL: compiled speedup gate (>= 5x) not met", file=sys.stderr)
        return 1
    return 0


def test_kernel_compiled_speedup_gate():
    """Acceptance check: njit kernels >= 5x their numpy twins.

    Auto-skips (honestly, with the reason in the skip line) when numba is
    not installed — the numpy twins then *are* the compiled path and there
    is nothing to compare.  On shared CI runners the bar drops to 2.5x.
    """
    from repro.mc.kernels import HAVE_NUMBA

    if not HAVE_NUMBA:
        pytest.skip(_KERNELS_SKIP_NOTE)
    min_speedup = 2.5 if os.environ.get("CI") else 5.0
    record = measure_compiled(n_replications=8_000, repeats=2)
    assert record["min_speedup"] >= min_speedup, record["kernels"]


def test_kernel_compiled_engine_runs(kernel_model, monkeypatch):
    """The compiled engine end-to-end on the bench model (fallback or njit)."""
    monkeypatch.setenv("REPRO_COMPILED_FALLBACK", "1")
    _space, profile, _universe, population, generator = kernel_model
    estimator = simulate_marginal_system_pfd(
        SameSuite(generator),
        population,
        profile,
        n_replications=200,
        rng=5,
        engine="compiled",
    )
    assert estimator.count == 200


def test_kernel_mc_batch_speedup(kernel_model):
    """Acceptance check: batch path >= 10x the scalar replication loop.

    Also asserts the two engines agree — overlapping 95% confidence
    intervals on the marginal system pfd — so the speedup is not bought
    with a different estimand.  On shared CI runners (CI env var set) the
    wall-clock bar drops to 3x so neighbour contention cannot fail an
    unrelated PR; the 10x acceptance bar applies to local runs.
    """
    min_speedup = 3.0 if os.environ.get("CI") else 10.0
    _space, profile, _universe, population, generator = kernel_model
    regime = SameSuite(generator)
    n_replications = 2000
    # warm both paths (lazy imports, BLAS thread spin-up) before timing
    simulate_marginal_system_pfd_batch(
        regime, population, profile, n_replications=10, rng=0
    )
    simulate_marginal_system_pfd(
        regime, population, profile, n_replications=10, rng=0, engine="scalar"
    )
    start = time.perf_counter()
    scalar = simulate_marginal_system_pfd(
        regime,
        population,
        profile,
        n_replications=n_replications,
        rng=5,
        engine="scalar",
    )
    scalar_elapsed = time.perf_counter() - start
    start = time.perf_counter()
    batch = simulate_marginal_system_pfd_batch(
        regime, population, profile, n_replications=n_replications, rng=5
    )
    batch_elapsed = time.perf_counter() - start

    speedup = scalar_elapsed / batch_elapsed
    assert speedup >= min_speedup, (
        f"batch path only {speedup:.1f}x faster "
        f"({scalar_elapsed:.3f}s vs {batch_elapsed:.3f}s)"
    )
    scalar_low, scalar_high = scalar.normal_interval(0.95)
    batch_low, batch_high = batch.normal_interval(0.95)
    assert scalar_low <= batch_high and batch_low <= scalar_high, (
        f"engines disagree: scalar CI ({scalar_low:.6f}, {scalar_high:.6f}) "
        f"vs batch CI ({batch_low:.6f}, {batch_high:.6f})"
    )
