"""Micro-benchmarks of the computational kernels.

These time the hot paths a user of the library actually pays for: the
inclusion-exclusion closed forms, the testing closure, the suite-moment
sweeps and the full-pipeline Monte-Carlo replication loop.  Useful for
catching performance regressions; they carry no reproduction claims.
"""

import numpy as np
import pytest

from repro.analytic import BernoulliExactEngine
from repro.core import SameSuite, TestedPopulationView, marginal_system_pfd
from repro.demand import DemandSpace, uniform_profile
from repro.faults import clustered_universe
from repro.mc import simulate_marginal_system_pfd
from repro.populations import BernoulliFaultPopulation
from repro.testing import OperationalSuiteGenerator, apply_testing


@pytest.fixture(scope="module")
def kernel_model():
    space = DemandSpace(300)
    profile = uniform_profile(space)
    universe = clustered_universe(space, n_faults=25, region_size=8, rng=0)
    population = BernoulliFaultPopulation.uniform(universe, 0.3)
    generator = OperationalSuiteGenerator(profile, 60)
    return space, profile, universe, population, generator


def test_kernel_exact_zeta(benchmark, kernel_model):
    _space, profile, universe, population, _generator = kernel_model
    engine = BernoulliExactEngine(universe, profile)
    benchmark(engine.zeta, population, 60)


def test_kernel_exact_second_moment(benchmark, kernel_model):
    _space, profile, universe, population, _generator = kernel_model
    engine = BernoulliExactEngine(universe, profile)
    benchmark(engine.xi_second_moment, population, 60)


def test_kernel_testing_closure(benchmark, kernel_model):
    _space, _profile, _universe, population, generator = kernel_model
    version = population.sample(np.random.default_rng(1))
    suite = generator.sample(np.random.default_rng(2))
    benchmark(apply_testing, version, suite)


def test_kernel_suite_moments_sampled(benchmark, kernel_model):
    _space, _profile, _universe, population, generator = kernel_model
    view = TestedPopulationView(population, generator)
    benchmark.pedantic(
        view.suite_moments,
        kwargs={"n_suites": 100, "rng": 3},
        rounds=3,
        iterations=1,
    )


def test_kernel_marginal_analytic(benchmark, kernel_model):
    _space, profile, _universe, population, generator = kernel_model
    benchmark.pedantic(
        marginal_system_pfd,
        args=(SameSuite(generator), population, profile),
        kwargs={"n_suites": 100, "rng": 4},
        rounds=3,
        iterations=1,
    )


def test_kernel_mc_replications(benchmark, kernel_model):
    _space, profile, _universe, population, generator = kernel_model
    benchmark.pedantic(
        simulate_marginal_system_pfd,
        args=(SameSuite(generator), population, profile),
        kwargs={"n_replications": 50, "rng": 5},
        rounds=3,
        iterations=1,
    )
