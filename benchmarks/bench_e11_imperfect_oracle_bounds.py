"""E11 bench — regenerates the §4.1 imperfect-testing bounds table.

Shape reproduced: for every (detection, fix) probability pair, version and
system pfds lie between the perfect-testing lower bound and the untested
upper bound.
"""

from _util import run_experiment_benchmark


def test_e11_imperfect_oracle_bounds(benchmark):
    result = run_experiment_benchmark(benchmark, "e11")
    slack = 0.015
    for row in result.rows:
        _, v_low, v_measured, v_high, s_low, s_measured, s_high = row
        assert v_low - slack <= v_measured <= v_high + slack
        assert s_low - slack <= s_measured <= s_high + slack
