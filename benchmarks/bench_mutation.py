"""Benchmark the mutation harness: generation throughput and resume hits.

Three phases, written to ``BENCH_mutation.json`` (via
``tools/bench_all.py --suites mutation`` or directly)::

    PYTHONPATH=src python benchmarks/bench_mutation.py

* **generate** — AST mutant generation throughput over the whole bundled
  corpus (mutants/second; pure CPU, no subprocesses);
* **campaign** — a real sandboxed campaign on a capped corpus target,
  cold (every mutant executes a pytest subprocess) versus warm (every
  mutant is a store cache hit).  The warm/cold ratio is the price
  resumability saves, and the warm hit ratio must be 1.0 — the
  exactly-once store contract;
* **fit** — size-biased multinomial fits over every committed
  measurement (fits/second; the estimator must stay interactive).

Gates (same spirit as the other suites — the file is only written from a
healthy run): warm campaigns execute zero mutants, the resume speedup is
at least 5x, and generation sustains at least 50 mutants/second.

A pytest-benchmark test (``test_bench_generation``) rides the
``python -m pytest benchmarks/`` suite for trajectory tracking.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import tempfile
import time

ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUT = ROOT / "BENCH_mutation.json"

if str(ROOT / "src") not in sys.path:
    sys.path.insert(0, str(ROOT / "src"))

#: campaign phase: one corpus target, capped — enough subprocesses to
#: measure the cold path honestly, few enough to keep the suite quick
CAMPAIGN_TARGET = "stats"
CAMPAIGN_CAP = 6


def measure_generation() -> dict:
    from repro.mutation import bundled_targets, generate_mutants

    sources = {
        name: target.source for name, target in bundled_targets().items()
    }
    # warm-up parse/compile caches so the measurement is steady-state
    for source in sources.values():
        generate_mutants(source)
    start = time.perf_counter()
    rounds = 5
    total = 0
    for _ in range(rounds):
        for source in sources.values():
            total += len(generate_mutants(source))
    elapsed = time.perf_counter() - start
    return {
        "targets": len(sources),
        "mutants_generated": total,
        "elapsed_seconds": elapsed,
        "mutants_per_second": total / elapsed,
    }


def measure_campaign() -> dict:
    from repro.mutation import MutationCampaign, bundled_target
    from repro.store import ResultStore

    target = bundled_target(CAMPAIGN_TARGET)
    with tempfile.TemporaryDirectory(prefix="bench-mutation-") as tmp:
        store = ResultStore(pathlib.Path(tmp) / "campaign.jsonl")

        def run():
            campaign = MutationCampaign(
                target, store, timeout=30.0, max_mutants=CAMPAIGN_CAP, seed=0
            )
            start = time.perf_counter()
            report = campaign.run()
            return time.perf_counter() - start, report

        cold_seconds, cold = run()
        warm_seconds, warm = run()
    return {
        "target": CAMPAIGN_TARGET,
        "mutants": cold.total,
        "n_tests": cold.n_tests,
        "mutation_score": cold.mutation_score,
        "cold_seconds": cold_seconds,
        "cold_executed": cold.executed,
        "warm_seconds": warm_seconds,
        "warm_cached": warm.cached,
        "warm_executed": warm.executed,
        "warm_hit_ratio": warm.cached / warm.total if warm.total else 0.0,
        "resume_speedup": cold_seconds / warm_seconds,
    }


def measure_fit() -> dict:
    from repro.mutation import (
        fit_size_biased_multinomial,
        measured_detection_data,
        measured_target_names,
    )

    datasets = {
        name: measured_detection_data(name)
        for name in measured_target_names()
    }
    for data in datasets.values():  # warm-up
        fit_size_biased_multinomial(data)
    rounds = 20
    start = time.perf_counter()
    for _ in range(rounds):
        for data in datasets.values():
            fit_size_biased_multinomial(data)
    elapsed = time.perf_counter() - start
    fits = rounds * len(datasets)
    return {
        "targets": len(datasets),
        "fits": fits,
        "elapsed_seconds": elapsed,
        "fits_per_second": fits / elapsed,
    }


def run_benchmark() -> dict:
    print("measuring mutant generation ...", flush=True)
    generation = measure_generation()
    print(
        f"  {generation['mutants_per_second']:.0f} mutants/s over "
        f"{generation['targets']} targets",
        flush=True,
    )
    print(
        f"measuring campaign cold vs warm ({CAMPAIGN_TARGET}, "
        f"{CAMPAIGN_CAP} mutants) ...",
        flush=True,
    )
    campaign = measure_campaign()
    print(
        f"  cold {campaign['cold_seconds']:.2f}s -> warm "
        f"{campaign['warm_seconds']:.3f}s "
        f"(speedup {campaign['resume_speedup']:.0f}x, hit ratio "
        f"{campaign['warm_hit_ratio']:.2f})",
        flush=True,
    )
    print("measuring estimator fits ...", flush=True)
    fit = measure_fit()
    print(f"  {fit['fits_per_second']:.0f} fits/s", flush=True)

    record = {
        "suite": "mutation",
        "generate": generation,
        "campaign": campaign,
        "fit": fit,
    }
    record["gate_warm_executes_nothing"] = campaign["warm_executed"] == 0
    record["gate_resume_speedup_ge_5"] = campaign["resume_speedup"] >= 5.0
    record["gate_generation_ge_50_per_s"] = (
        generation["mutants_per_second"] >= 50.0
    )
    return record


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the mutation harness and write "
        "BENCH_mutation.json"
    )
    parser.add_argument(
        "--out",
        default=str(DEFAULT_OUT),
        metavar="FILE",
        help=f"output path (default {DEFAULT_OUT.name} at the repo root)",
    )
    args = parser.parse_args(argv)

    record = run_benchmark()
    out = pathlib.Path(args.out)
    out.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")

    failed = [key for key in record if key.startswith("gate_") and not record[key]]
    for key in failed:
        print(f"FAIL: {key}", file=sys.stderr)
    return 1 if failed else 0


# -- pytest-benchmark hook (python -m pytest benchmarks/) ----------------


def test_bench_generation(benchmark):
    from repro.mutation import bundled_target, generate_mutants

    source = bundled_target("leap").source
    mutants = benchmark(lambda: generate_mutants(source))
    assert len(mutants) > 40
    benchmark.extra_info["mutants"] = len(mutants)


if __name__ == "__main__":
    sys.exit(main())
