"""A1 bench — regenerates the difficulty-variance ablation table.

Shape reproduced: at fixed mean difficulty, the relative EL penalty
Var(Θ)/E[Θ]² grows monotonically with the spread of the difficulty
distribution.
"""

from _util import run_experiment_benchmark


def test_a1_difficulty_variance_sweep(benchmark):
    result = run_experiment_benchmark(benchmark, "a1")
    penalties = [row[5] for row in result.rows]
    assert all(a < b for a, b in zip(penalties, penalties[1:]))
