"""Every grid shipped under examples/grids/ must load and validate.

The example grids are executable documentation — README and the docs
reference them by path, and CI sweeps some of them — so a registry
rename or a knob change that orphans one must fail here, not in a
user's shell.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.registry import runner_params
from repro.sweeps import load_grid

GRIDS_DIR = Path(__file__).parents[2] / "examples" / "grids"
GRID_PATHS = sorted(GRIDS_DIR.glob("*.toml")) + sorted(GRIDS_DIR.glob("*.json"))


def test_examples_ship_grids():
    assert GRID_PATHS, f"no grid files under {GRIDS_DIR}"


@pytest.mark.parametrize(
    "path", GRID_PATHS, ids=[path.name for path in GRID_PATHS]
)
def test_grid_loads_and_validates(path):
    spec = load_grid(path)
    assert len(spec) > 0
    # load_grid already rejects unknown ids and knobs; double-check the
    # axes resolve against each runner's signature so a default-value
    # rename cannot slip through either
    for experiment_id in spec.experiments:
        known = set(runner_params(experiment_id)) | {"precision"}
        for name, values in spec.axes(experiment_id).items():
            assert name in known, (
                f"{path.name}: {experiment_id} has no knob {name!r}"
            )
            assert values, f"{path.name}: empty axis {name!r}"


def test_coverage_grid_covers_the_c_family():
    spec = load_grid(GRIDS_DIR / "coverage.toml")
    assert set(spec.experiments) == {"c1", "c2", "c3"}
    assert "metric" in spec.axes("c1")
    assert "target" in spec.axes("c3")
