"""Tests for the sweep layer's [precision] table and Neyman allocation."""

import json

import pytest

from repro.errors import ModelError
from repro.store import ResultStore
from repro.sweeps import (
    PrecisionPlan,
    Sweep,
    SweepSpec,
    allocate_budgets,
    load_grid,
    record_sigma,
)


class TestAllocateBudgets:
    def test_proportional_to_sigma(self):
        budgets = allocate_budgets({"a": 3.0, "b": 1.0}, total=4000, floor=100)
        assert budgets["a"] + budgets["b"] == 4000
        assert budgets["a"] > budgets["b"]
        # Neyman: 3:1 split of the 3800 above the floors
        assert budgets["a"] == 100 + 2850
        assert budgets["b"] == 100 + 950

    def test_floor_applies_to_zero_sigma_points(self):
        budgets = allocate_budgets({"a": 0.0, "b": 2.0}, total=1000, floor=64)
        assert budgets["a"] == 64
        assert budgets["a"] + budgets["b"] == 1000

    def test_all_zero_sigma_splits_evenly(self):
        budgets = allocate_budgets(
            {"a": 0.0, "b": 0.0, "c": 0.0}, total=301, floor=10
        )
        assert sum(budgets.values()) == 301
        assert max(budgets.values()) - min(budgets.values()) <= 1

    def test_total_below_floors_rejected_loudly(self):
        # silently spending floor * n_points would exceed the declared
        # total budget several-fold
        with pytest.raises(ModelError, match="cannot cover"):
            allocate_budgets({"a": 1.0, "b": 1.0}, total=10, floor=64)
        # exactly covering the floors is fine
        assert allocate_budgets({"a": 1.0, "b": 1.0}, total=128, floor=64) == {
            "a": 64,
            "b": 64,
        }

    def test_deterministic(self):
        sigmas = {"p3": 1.7, "p1": 1.7, "p2": 0.3}
        assert allocate_budgets(sigmas, 5000, 32) == allocate_budgets(
            dict(reversed(list(sigmas.items()))), 5000, 32
        )

    def test_validation(self):
        with pytest.raises(ModelError):
            allocate_budgets({"a": 1.0}, total=0, floor=1)
        with pytest.raises(ModelError):
            allocate_budgets({"a": 1.0}, total=10, floor=0)


class TestRecordSigma:
    def test_reads_nested_adaptive_payloads(self):
        record = {
            "result": {
                "extra": {
                    "adaptive": {
                        "point": {
                            "metrics": {
                                "m": {
                                    "std_error": 0.01,
                                    "observations": 400,
                                    "converged": True,
                                }
                            },
                            "replications": 400,
                        }
                    }
                }
            }
        }
        assert record_sigma(record) == pytest.approx(0.01 * 20)

    def test_no_adaptive_metadata_is_zero(self):
        assert record_sigma({"result": {}}) == 0.0
        assert record_sigma({"result": {"extra": {}}}) == 0.0


class TestPrecisionSpec:
    def test_spec_requires_a_capable_experiment(self):
        with pytest.raises(ModelError, match="precision"):
            SweepSpec(experiments=["a1"], precision={"rel_hw": 0.1})

    def test_capable_experiments_recorded(self):
        spec = SweepSpec(
            experiments=["a1", "e01"], precision={"rel_hw": 0.1}
        )
        assert spec.precision_experiments == ("e01",)
        assert isinstance(spec.precision, PrecisionPlan)

    def test_plan_knob_budget_override(self):
        plan = PrecisionPlan.from_mapping(
            {"rel_hw": 0.1, "initial": 256, "budget_total": 10_000}
        )
        knob = plan.knob(budget=128)
        assert knob["budget"] == 128
        assert knob["initial"] == 128  # clamped under the budget
        assert plan.pilot_budget == 256

    def test_load_grid_precision_table(self, tmp_path):
        grid = tmp_path / "grid.toml"
        grid.write_text(
            "\n".join(
                [
                    "[sweep]",
                    'experiments = ["e01"]',
                    "",
                    "[precision]",
                    "rel_hw = 0.1",
                    'vr = "none"',
                    "budget_total = 4000",
                ]
            )
        )
        spec = load_grid(grid)
        assert spec.precision.target.rel_hw == 0.1
        assert spec.precision.target.vr == "none"
        assert spec.precision.budget_total == 4000

    def test_load_grid_rejects_unknown_precision_key(self, tmp_path):
        grid = tmp_path / "grid.toml"
        grid.write_text(
            "[sweep]\nexperiments = [\"e01\"]\n\n[precision]\nrel_hww = 0.1\n"
        )
        with pytest.raises(ModelError, match="unknown precision key"):
            load_grid(grid)


class TestPrecisionSweepRuns:
    def _spec(self, **precision):
        precision.setdefault("rel_hw", 0.1)
        precision.setdefault("initial", 128)
        return SweepSpec(experiments=["e01"], precision=precision)

    def test_plain_precision_sweep_executes_and_caches(self, tmp_path):
        spec = self._spec()
        store = ResultStore(tmp_path)
        report = Sweep(spec, store).run()
        assert report.total == 1 and report.executed == 1
        # the precision knob is part of the point identity
        (point,) = Sweep(spec, store).effective_points()
        record = store.get(point.cache_key())
        assert record["params"]["precision"]["rel_hw"] == 0.1
        assert "adaptive" in record["result"]["extra"]
        again = Sweep(spec, store).run()
        assert again.cached == 1 and again.executed == 0

    def test_neyman_two_phase_run_and_resume(self, tmp_path):
        spec = SweepSpec(
            experiments=["e01", "x3"],
            precision={"rel_hw": 0.1, "initial": 128, "budget_total": 4000},
        )
        store = ResultStore(tmp_path)
        report = Sweep(spec, store).run()
        # 2 pilot points + 2 allocated points
        assert report.total == 4
        assert sum(report.allocations.values()) == 4000
        for key, budget in report.allocations.items():
            record = store.get(key)
            assert record is not None
            # the knob budget is per metric: the point allocation divided
            # by the metric count observed in the pilot (3 for both e01's
            # shapes and x3's campaigns)
            assert record["params"]["precision"]["budget"] == max(
                budget // 3, 1
            )
        # the final pass must honour budget_total in aggregate: each
        # point's allocation is divided across its adaptive metrics
        from repro.adaptive import iter_adaptive_runs

        final_spend = 0
        for key in report.allocations:
            record = store.get(key)
            final_spend += sum(
                run["replications"]
                for run in iter_adaptive_runs(
                    record["result"]["extra"]["adaptive"]
                )
            )
        assert final_spend <= 4000
        resumed = Sweep(spec, store).run()
        assert resumed.executed == 0
        assert resumed.cached == resumed.total

    def test_scalar_engine_rejected(self, tmp_path):
        with pytest.raises(ModelError, match="scalar"):
            Sweep(self._spec(), ResultStore(tmp_path), engine="scalar")
