"""Tests for fanning sweep grids through the simulation service."""

import pytest

from repro.errors import ModelError
from repro.service import ServiceClient
from repro.service.http import ThreadedServer
from repro.store import ResultStore
from repro.sweeps import Sweep, SweepSpec


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    store = tmp_path_factory.mktemp("service_store")
    with ThreadedServer(store_path=store, procs=0, queue_limit=64) as hosted:
        yield hosted


@pytest.fixture()
def spec():
    return SweepSpec(experiments=["a4", "x3"], seeds=[0, 1])


class TestRunViaService:
    def test_cold_run_executes_and_mirrors_locally(
        self, server, spec, tmp_path
    ):
        store = ResultStore(tmp_path / "local")
        report = Sweep(spec, store).run_via_service(server.url, n_procs=2)
        assert report.total == 4
        assert report.executed == 4
        assert report.cached == 0
        assert report.passed
        # records mirrored into the local store, identical keys
        local = ResultStore(tmp_path / "local").load()
        for point in spec.points():
            assert point.cache_key() in local

    def test_second_run_is_local_cache_hits(self, server, spec, tmp_path):
        store = ResultStore(tmp_path / "local")
        sweep = Sweep(spec, store)
        sweep.run_via_service(server.url)
        report = sweep.run_via_service(server.url)
        assert (report.executed, report.cached) == (0, 4)
        statuses = {status for _, status in report.outcomes}
        assert statuses == {"cached"}

    def test_fresh_local_store_hits_service_cache(
        self, server, spec, tmp_path
    ):
        Sweep(spec, ResultStore(tmp_path / "one")).run_via_service(server.url)
        report = Sweep(spec, ResultStore(tmp_path / "two")).run_via_service(
            server.url
        )
        # all answered by the service's cache: cached, not executed
        assert (report.executed, report.cached) == (0, 4)

    def test_accepts_a_client_instance(self, server, spec, tmp_path):
        client = ServiceClient(server.url)
        report = Sweep(spec, ResultStore(tmp_path / "via_client")).run_via_service(
            client
        )
        assert report.total == 4
        client.close()

    def test_progress_callback_and_outcomes(self, server, spec, tmp_path):
        seen = []
        Sweep(spec, ResultStore(tmp_path / "progress")).run_via_service(
            server.url,
            progress=lambda point, status: seen.append(
                (point.experiment_id, status)
            ),
        )
        assert len(seen) == 4

    def test_neyman_budget_total_rejected(self, tmp_path):
        spec = SweepSpec(
            experiments=["e01"],
            precision={"rel_hw": 0.5, "budget": 500, "budget_total": 2000},
        )
        sweep = Sweep(spec, ResultStore(tmp_path / "neyman"))
        with pytest.raises(ModelError, match="budget_total"):
            # rejected before any request: the URL is never contacted
            sweep.run_via_service("http://127.0.0.1:1")

    def test_bad_n_procs_rejected(self, spec, tmp_path):
        sweep = Sweep(spec, ResultStore(tmp_path / "bad"))
        with pytest.raises(ModelError, match="n_procs"):
            sweep.run_via_service("http://127.0.0.1:1", n_procs=0)


class TestViaServiceCli:
    def test_sweep_cli_via_service(self, server, tmp_path, capsys):
        import json

        from repro.experiments.__main__ import main

        grid = tmp_path / "grid.json"
        grid.write_text(
            json.dumps({"sweep": {"experiments": ["a5"], "seeds": [0, 1]}})
        )
        out = tmp_path / "results"
        code = main(
            [
                "sweep",
                "--grid",
                str(grid),
                "--out",
                str(out),
                "--via-service",
                server.url,
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "2 points" in captured.out
        code = main(
            [
                "sweep",
                "--grid",
                str(grid),
                "--out",
                str(out),
                "--via-service",
                server.url,
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "2 cached" in captured.out
