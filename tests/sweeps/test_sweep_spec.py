"""Tests for sweep specs and the grid loader."""

import pytest

from repro.errors import ModelError
from repro.sweeps import SweepPoint, SweepSpec, load_grid


class TestSweepSpec:
    def test_grid_is_cartesian_product(self):
        spec = SweepSpec(
            experiments=["a2"],
            seeds=[0, 1, 2],
            params={"presence_prob": [0.2, 0.3]},
        )
        points = spec.points()
        assert len(points) == 3 * 2
        assert len({point.cache_key() for point in points}) == 6

    def test_points_order_deterministic(self):
        spec = SweepSpec(
            experiments=["a2"],
            seeds=[1, 0],
            params={"presence_prob": [0.3, 0.2]},
        )
        labels = [point.label() for point in spec.points()]
        assert labels == [
            "a2 seed=1 presence_prob=0.3",
            "a2 seed=1 presence_prob=0.2",
            "a2 seed=0 presence_prob=0.3",
            "a2 seed=0 presence_prob=0.2",
        ]

    def test_point_identity_is_order_independent(self):
        a = SweepPoint("a2", 0, True, (("x", 1), ("y", 2)))
        b = SweepPoint("a2", 0, True, (("x", 1), ("y", 2)))
        assert a == b
        assert a.cache_key() == b.cache_key()

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ModelError, match="unknown experiment"):
            SweepSpec(experiments=["nope"])

    def test_unknown_knob_rejected_at_build_time(self):
        with pytest.raises(ModelError, match="does not accept param"):
            SweepSpec(experiments=["a4"], params={"presence_prob": [0.2]})

    def test_per_experiment_knob_scope(self):
        spec = SweepSpec(
            experiments=["a4", "a2"],
            experiment_params={"a2": {"presence_prob": [0.2, 0.3]}},
        )
        points = spec.points()
        assert len(points) == 1 + 2  # a4 bare, a2 twice
        assert spec.axes("a4") == {}
        assert spec.axes("a2") == {"presence_prob": [0.2, 0.3]}

    def test_experiment_params_for_absent_id_rejected(self):
        with pytest.raises(ModelError, match="not in the sweep"):
            SweepSpec(
                experiments=["a4"],
                experiment_params={"a2": {"presence_prob": [0.2]}},
            )

    def test_scalar_axis_promoted(self):
        spec = SweepSpec(
            experiments=["a2"], params={"presence_prob": 0.2}
        )
        assert len(spec.points()) == 1

    def test_empty_axes_and_duplicates_rejected(self):
        with pytest.raises(ModelError, match="no values"):
            SweepSpec(experiments=["a2"], params={"presence_prob": []})
        with pytest.raises(ModelError, match="more than once"):
            SweepSpec(experiments=["a4", "a4"])
        with pytest.raises(ModelError, match="at least one experiment"):
            SweepSpec(experiments=[])
        with pytest.raises(ModelError, match="at least one seed"):
            SweepSpec(experiments=["a4"], seeds=[])
        with pytest.raises(ModelError, match="seed.*more than once"):
            SweepSpec(experiments=["a4"], seeds=[0, 1, 0])
        with pytest.raises(ModelError, match="duplicate value"):
            SweepSpec(
                experiments=["a2"], params={"presence_prob": [0.2, 0.2]}
            )

    def test_engine_changes_point_cache_key(self):
        point = SweepSpec(experiments=["a5"]).points()[0]
        assert point.cache_key(engine="scalar") != point.cache_key(
            engine="batch"
        )


class TestLoadGrid:
    def _write(self, tmp_path, content, name="grid.toml"):
        path = tmp_path / name
        path.write_text(content)
        return path

    def test_toml_grid(self, tmp_path):
        path = self._write(
            tmp_path,
            """
[sweep]
experiments = ["a4", "a2"]
seeds = [0, 1]

[experiment_params.a2]
presence_prob = [0.2, 0.3]
""",
        )
        spec = load_grid(path)
        assert len(spec.points()) == 2 + 4
        assert spec.fast is True

    def test_json_grid(self, tmp_path):
        path = self._write(
            tmp_path,
            '{"sweep": {"experiments": ["a4"], "seeds": [0], "fast": false}}',
            name="grid.json",
        )
        spec = load_grid(path)
        assert spec.fast is False
        assert [p.label() for p in spec.points()] == ["a4 seed=0 full"]

    def test_missing_file(self, tmp_path):
        with pytest.raises(ModelError, match="not found"):
            load_grid(tmp_path / "absent.toml")

    def test_unparseable_toml(self, tmp_path):
        path = self._write(tmp_path, "[sweep\nexperiments=")
        with pytest.raises(ModelError, match="invalid TOML"):
            load_grid(path)

    def test_missing_sweep_table(self, tmp_path):
        path = self._write(tmp_path, "[params]\nx = [1]\n")
        with pytest.raises(ModelError, match=r"no \[sweep\] table"):
            load_grid(path)

    def test_unknown_tables_and_keys_rejected(self, tmp_path):
        path = self._write(
            tmp_path, '[sweep]\nexperiments = ["a4"]\n[sweeps]\nx = 1\n'
        )
        with pytest.raises(ModelError, match="unknown table"):
            load_grid(path)
        path = self._write(
            tmp_path, '[sweep]\nexperiments = ["a4"]\nseed = 3\n'
        )
        with pytest.raises(ModelError, match=r"unknown \[sweep\] key"):
            load_grid(path)

    def test_schema_type_errors(self, tmp_path):
        path = self._write(tmp_path, '[sweep]\nexperiments = "a4"\n')
        with pytest.raises(ModelError, match="list of id strings"):
            load_grid(path)
        path = self._write(
            tmp_path, '[sweep]\nexperiments = ["a4"]\nseeds = [true]\n'
        )
        with pytest.raises(ModelError, match="list of ints"):
            load_grid(path)
        path = self._write(
            tmp_path, '[sweep]\nexperiments = ["a4"]\nfast = "yes"\n'
        )
        with pytest.raises(ModelError, match="must be a boolean"):
            load_grid(path)
