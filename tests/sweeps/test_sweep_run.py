"""Tests for sweep execution, resume semantics and the aggregate join.

The acceptance path for the sweep subsystem lives here: a grid over
multiple experiment ids and parameter points runs, is "interrupted"
(store truncated mid-record, exactly what a kill during append leaves
behind), resumes with completed points served from the store, and the
aggregate reporter reproduces the single-run numbers bit-for-bit from the
stored records.
"""

import json

import pytest

from repro.errors import ModelError
from repro.experiments import run_experiment
from repro.store import ResultStore, make_record
from repro.sweeps import (
    Sweep,
    SweepSpec,
    comparison_table,
    render_table,
    summary_table,
)

# ≥2 experiment ids × ≥3 parameter points per the acceptance criterion;
# a4/a5 are exact/cheap, a2's knob adds a real model-parameter axis
GRID = dict(
    experiments=["a4", "a2"],
    seeds=[0, 1, 2],
    experiment_params={"a2": {"presence_prob": [0.2, 0.3]}},
)


@pytest.fixture(scope="module")
def completed_store(tmp_path_factory):
    """One fully-run sweep, shared by the read-only tests below."""
    store = ResultStore(tmp_path_factory.mktemp("sweep"))
    report = Sweep(SweepSpec(**GRID), store).run()
    assert report.executed == 3 + 3 * 2
    assert report.passed
    return store


class TestSweepRun:
    def test_second_run_is_all_cache_hits(self, completed_store):
        report = Sweep(SweepSpec(**GRID), completed_store).run()
        assert report.executed == 0
        assert report.cached == 9
        assert report.passed
        assert "9 cached" in report.summary()

    def test_resume_after_interrupt(self, completed_store, tmp_path):
        # replay an interrupt: copy the store, truncate mid-record (what a
        # kill during the final append leaves), then re-run the same grid
        store_path = tmp_path / "records.jsonl"
        content = completed_store.path.read_text()
        store_path.write_text(content[: len(content) - 80])
        with pytest.warns(UserWarning, match="skipping unreadable record"):
            store = ResultStore(store_path).load()
        assert len(store) == 8  # the interrupted point is gone
        statuses = {}
        report = Sweep(SweepSpec(**GRID), store).run(
            progress=lambda point, status: statuses.update({point: status})
        )
        # 8 completed points served from the store, only the lost one re-ran
        assert report.cached == 8
        assert report.executed == 1
        assert sorted(statuses.values()).count("executed") == 1
        assert sorted(store.keys()) == sorted(completed_store.keys())

    def test_partial_grid_then_superset_resumes(self, tmp_path):
        store = ResultStore(tmp_path)
        small = SweepSpec(experiments=["a4"], seeds=[0, 1])
        assert Sweep(small, store).run().executed == 2
        grown = SweepSpec(experiments=["a4", "a5"], seeds=[0, 1])
        report = Sweep(grown, store).run()
        assert report.cached == 2
        assert report.executed == 2

    def test_n_procs_invariance(self, completed_store, tmp_path):
        parallel_store = ResultStore(tmp_path)
        report = Sweep(SweepSpec(**GRID), parallel_store).run(n_procs=3)
        assert report.executed == 9
        assert sorted(parallel_store.keys()) == sorted(completed_store.keys())
        for key in completed_store.keys():
            assert parallel_store.get(key) == completed_store.get(key)

    def test_double_interrupt_resume_converges(self, completed_store, tmp_path):
        """Resume after resume: the store heals, nothing re-runs twice.

        Regression: the partial line left by an interrupt must not swallow
        the record appended by the first resume, or the lost point would be
        recomputed on every subsequent run.
        """
        store_path = tmp_path / "records.jsonl"
        content = completed_store.path.read_text()
        store_path.write_text(content[: len(content) - 80])
        with pytest.warns(UserWarning):
            first = Sweep(SweepSpec(**GRID), ResultStore(store_path).load()).run()
        assert first.executed == 1
        with pytest.warns(UserWarning):  # the dead garbage line still warns
            second = Sweep(SweepSpec(**GRID), ResultStore(store_path).load()).run()
        assert second.executed == 0
        assert second.cached == 9

    def test_identity_only_record_is_not_a_cache_hit(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = SweepSpec(experiments=["a4"], seeds=[0])
        # a record without a result payload marks the point known, not done
        store.put(make_record("a4", seed=0, result=None))
        report = Sweep(spec, store).run()
        assert report.executed == 1
        assert report.cached == 0
        assert Sweep(spec, store).run().cached == 1

    def test_engine_change_is_not_a_cache_hit(self, tmp_path):
        """Scalar and batch stream layouts differ, so their results must
        never share a cache slot (regression: cross-engine cache hits)."""
        store = ResultStore(tmp_path)
        spec = SweepSpec(experiments=["a5"], seeds=[0])
        assert Sweep(spec, store, engine="scalar").run().executed == 1
        batch = Sweep(spec, store, engine="batch").run()
        assert batch.executed == 1
        assert batch.cached == 0
        # each engine's rerun is its own cache hit
        assert Sweep(spec, store, engine="scalar").run().cached == 1
        assert Sweep(spec, store, engine="batch").run().cached == 1
        engines = {record["engine"] for record in store}
        assert engines == {"scalar", "batch"}

    def test_invalid_arguments(self, completed_store):
        spec = SweepSpec(**GRID)
        with pytest.raises(ModelError, match="engine must be one of"):
            Sweep(spec, completed_store, engine="warp")
        with pytest.raises(ModelError, match="n_jobs must be"):
            Sweep(spec, completed_store, n_jobs=0)
        with pytest.raises(ModelError, match="n_procs must be"):
            Sweep(spec, completed_store).run(n_procs=0)


class TestAggregate:
    def test_summary_table_covers_every_point(self, completed_store):
        columns, rows = summary_table(completed_store)
        assert len(rows) == 9
        assert columns[:3] == ["experiment", "seed", "fast"]
        assert "presence_prob" in columns
        assert all(row[-1] == "PASS" for row in rows)

    def test_comparison_table_reproduces_single_runs_bit_for_bit(
        self, completed_store
    ):
        columns, rows = comparison_table(completed_store, "a2")
        fresh = run_experiment("a2", seed=1, fast=True, params={"presence_prob": 0.3})
        prefix_width = len(columns) - len(fresh.columns)
        joined = [
            row[prefix_width:]
            for row in rows
            if row[0] == 1 and row[1] == 0.3
        ]
        assert len(joined) == len(fresh.rows)
        for stored_row, fresh_row in zip(joined, fresh.rows):
            for stored_cell, fresh_cell in zip(stored_row, fresh_row):
                assert stored_cell == fresh_cell  # exact, not approx

    def test_json_render_round_trips_floats(self, completed_store):
        table = comparison_table(completed_store, "a2")
        parsed = json.loads(render_table(table, "json"))
        assert parsed["columns"] == table[0]
        assert parsed["rows"] == [list(row) for row in table[1]]

    def test_csv_render_uses_repr_floats(self, completed_store):
        table = comparison_table(completed_store, "a2")
        rendered = render_table(table, "csv")
        first_float = next(
            cell for cell in table[1][0] if isinstance(cell, float)
        )
        assert repr(first_float) in rendered

    def test_unknown_format_and_empty_store(self, completed_store, tmp_path):
        with pytest.raises(ModelError, match="unknown aggregate format"):
            render_table((["a"], []), "yaml")
        with pytest.raises(ModelError, match="no records to aggregate"):
            summary_table(ResultStore(tmp_path))
        with pytest.raises(ModelError, match="no records for 'e01'"):
            comparison_table(completed_store, "e01")

    def test_json_render_keeps_non_finite_cells_strict_json(self):
        """NaN/inf cells re-encode as tagged objects, never a dumps crash."""
        rendered = render_table(
            (["v"], [[float("nan")], [float("inf")], [1.5]]), "json"
        )
        parsed = json.loads(rendered)
        assert parsed["rows"] == [
            [{"__nonfinite__": "nan"}],
            [{"__nonfinite__": "inf"}],
            [1.5],
        ]

    def test_identity_only_records_excluded_from_aggregation(
        self, tmp_path
    ):
        store = ResultStore(tmp_path)
        Sweep(SweepSpec(experiments=["a4"], seeds=[0]), store).run()
        store.put(make_record("a4", seed=99, result=None))
        columns, rows = summary_table(store)
        assert len(rows) == 1  # the identity-only record has nothing to report
