"""Tests for sequential estimation (the legacy wrapper over the adaptive
precision engine's shared stopping predicate)."""

import numpy as np
import pytest

from repro.errors import ConvergenceError, ModelError
from repro.mc import MeanEstimator, ProportionEstimator, estimate_until

# estimate_until is deprecated in favour of repro.adaptive; its behaviour
# is still under contract, so the suite exercises it with the warning
# silenced (and asserts the warning itself once, below)
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


def _coin_batch(p: float, batch: int):
    def run(estimator, rng):
        hits = int(rng.binomial(batch, p))
        estimator.add_many(hits, batch)

    return run


class TestEstimateUntil:
    def test_converges_on_easy_target(self):
        result = estimate_until(
            _coin_batch(0.3, 500),
            ProportionEstimator(),
            target_half_width=0.05,
            rng=0,
        )
        assert result.converged
        assert result.half_width <= 0.05
        assert result.estimator.mean == pytest.approx(0.3, abs=0.1)

    def test_budget_exhaustion_flag(self):
        result = estimate_until(
            _coin_batch(0.5, 4),
            ProportionEstimator(),
            target_half_width=1e-6,
            max_batches=3,
            rng=1,
        )
        assert not result.converged
        assert result.batches == 3

    def test_budget_exhaustion_raise(self):
        with pytest.raises(ConvergenceError):
            estimate_until(
                _coin_batch(0.5, 4),
                ProportionEstimator(),
                target_half_width=1e-6,
                max_batches=2,
                rng=2,
                raise_on_failure=True,
            )

    def test_mean_estimator_path(self):
        def run(estimator, rng):
            for value in rng.normal(2.0, 0.5, size=200):
                estimator.add(float(value))

        result = estimate_until(
            run, MeanEstimator(), target_half_width=0.1, rng=3
        )
        assert result.converged
        assert result.estimator.mean == pytest.approx(2.0, abs=0.2)

    def test_parameter_validation(self):
        with pytest.raises(ModelError):
            estimate_until(
                _coin_batch(0.5, 4), ProportionEstimator(), target_half_width=0.0
            )
        with pytest.raises(ModelError):
            estimate_until(
                _coin_batch(0.5, 4),
                ProportionEstimator(),
                target_half_width=0.1,
                max_batches=0,
            )

    def test_emits_deprecation_warning(self):
        with pytest.warns(DeprecationWarning, match="run_adaptive"):
            estimate_until(
                _coin_batch(0.3, 500),
                ProportionEstimator(),
                target_half_width=0.05,
                rng=0,
            )

    def test_stopping_predicate_matches_adaptive_target(self):
        """The wrapper and the adaptive engine share one stopping rule."""
        from repro.adaptive import PrecisionTarget, estimator_half_width

        result = estimate_until(
            _coin_batch(0.3, 500),
            ProportionEstimator(),
            target_half_width=0.05,
            rng=0,
        )
        target = PrecisionTarget(abs_hw=0.05, confidence=0.99)
        width = estimator_half_width(result.estimator, 0.99)
        assert result.half_width == width
        assert result.converged == target.met(result.estimator.mean, width)

    def test_deterministic_given_seed(self):
        a = estimate_until(
            _coin_batch(0.4, 100),
            ProportionEstimator(),
            target_half_width=0.03,
            rng=4,
        )
        b = estimate_until(
            _coin_batch(0.4, 100),
            ProportionEstimator(),
            target_half_width=0.03,
            rng=4,
        )
        assert a.estimator.mean == b.estimator.mean
        assert a.batches == b.batches
