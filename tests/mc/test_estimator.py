"""Tests for the streaming estimators."""

import math

import numpy as np
import pytest

from repro.errors import ModelError
from repro.mc import MeanEstimator, ProportionEstimator


class TestProportionEstimator:
    def test_mean(self):
        estimator = ProportionEstimator()
        for outcome in (True, False, True, True):
            estimator.add(outcome)
        assert estimator.mean == pytest.approx(0.75)
        assert estimator.count == 4
        assert estimator.successes == 3

    def test_add_many(self):
        estimator = ProportionEstimator()
        estimator.add_many(30, 100)
        assert estimator.mean == pytest.approx(0.3)

    def test_add_many_validation(self):
        estimator = ProportionEstimator()
        with pytest.raises(ModelError):
            estimator.add_many(5, 3)
        with pytest.raises(ModelError):
            estimator.add_many(-1, 3)

    def test_empty_raises(self):
        with pytest.raises(ModelError):
            ProportionEstimator().mean

    def test_wilson_interval_contains_truth(self):
        rng = np.random.default_rng(0)
        p_true = 0.07
        covered = 0
        trials = 200
        for _ in range(trials):
            estimator = ProportionEstimator()
            estimator.add_many(int(rng.binomial(500, p_true)), 500)
            if estimator.contains(p_true, confidence=0.95):
                covered += 1
        assert covered / trials >= 0.9  # nominal 95%

    def test_wilson_interval_in_unit_range(self):
        estimator = ProportionEstimator()
        estimator.add_many(0, 10)
        low, high = estimator.wilson_interval(0.99)
        assert 0.0 <= low <= high <= 1.0
        assert high > 0.0  # zero successes still leaves room above

    def test_wilson_confidence_validation(self):
        estimator = ProportionEstimator()
        estimator.add(True)
        with pytest.raises(ModelError):
            estimator.wilson_interval(1.5)

    def test_std_error_shrinks(self):
        small = ProportionEstimator()
        small.add_many(5, 10)
        large = ProportionEstimator()
        large.add_many(500, 1000)
        assert large.std_error() < small.std_error()


class TestMeanEstimator:
    def test_mean_and_variance(self):
        estimator = MeanEstimator()
        for value in (1.0, 2.0, 3.0, 4.0):
            estimator.add(value)
        assert estimator.mean == pytest.approx(2.5)
        assert estimator.variance == pytest.approx(5.0 / 3.0)

    def test_single_observation(self):
        estimator = MeanEstimator()
        estimator.add(2.0)
        assert estimator.mean == 2.0
        assert estimator.variance == 0.0
        assert estimator.std_error() == float("inf")

    def test_empty_raises(self):
        with pytest.raises(ModelError):
            MeanEstimator().mean

    def test_matches_numpy(self):
        rng = np.random.default_rng(1)
        values = rng.random(500)
        estimator = MeanEstimator()
        for value in values:
            estimator.add(float(value))
        assert estimator.mean == pytest.approx(float(values.mean()))
        assert estimator.variance == pytest.approx(float(values.var(ddof=1)))

    def test_normal_interval_coverage(self):
        rng = np.random.default_rng(2)
        covered = 0
        trials = 200
        for _ in range(trials):
            estimator = MeanEstimator()
            for value in rng.normal(5.0, 1.0, size=100):
                estimator.add(float(value))
            if estimator.contains(5.0, confidence=0.95):
                covered += 1
        assert covered / trials >= 0.9


class TestHalfWidthEdgeCases:
    """Regression tests for the zero-variance / n = 1 degenerate cases
    (the adaptive controller's stopping quantity must never be NaN)."""

    def test_degenerate_all_zero_sample_zero_half_width(self):
        estimator = MeanEstimator()
        for _ in range(5):
            estimator.add(0.0)
        assert estimator.half_width(0.99) == 0.0
        assert not math.isnan(estimator.half_width(0.99))

    def test_degenerate_single_observation_zero_half_width(self):
        estimator = MeanEstimator()
        estimator.add(0.0)
        # std_error stays conservative (inf) but the stopping quantity
        # reports the observed spread: zero
        assert estimator.std_error() == float("inf")
        assert estimator.half_width(0.99) == 0.0

    def test_half_width_matches_normal_interval_when_nondegenerate(self):
        estimator = MeanEstimator()
        estimator.add_many([0.1, 0.4, 0.2, 0.9])
        low, high = estimator.normal_interval(0.95)
        assert estimator.half_width(0.95) == pytest.approx((high - low) / 2)

    def test_half_width_empty_raises(self):
        with pytest.raises(ModelError):
            MeanEstimator().half_width(0.99)

    def test_variance_clamped_against_merged_rounding(self):
        # long chains of near-constant merges can leave m2 a few ulps
        # below zero without the clamp; construct the worst case directly
        estimator = MeanEstimator()
        estimator._count, estimator._mean, estimator._m2 = 10, 0.5, -1e-18
        assert estimator.variance == 0.0
        assert estimator.std_error() == 0.0
        assert estimator.half_width(0.99) == 0.0

    def test_add_moments_rejects_negative_m2(self):
        estimator = MeanEstimator()
        with pytest.raises(ModelError):
            estimator.add_moments(3, 0.5, -1.0)

    def test_moments_roundtrip(self):
        estimator = MeanEstimator()
        estimator.add_many([0.1, 0.2, 0.7])
        count, mean, m2 = estimator.moments
        other = MeanEstimator()
        other.add_moments(count, mean, m2)
        assert other.moments == estimator.moments

    def test_proportion_half_width_is_wilson(self):
        estimator = ProportionEstimator()
        estimator.add_many(0, 100)
        low, high = estimator.wilson_interval(0.99)
        assert estimator.half_width(0.99) == pytest.approx((high - low) / 2)
        # degenerate all-zero proportion keeps a positive (honest) width
        assert estimator.half_width(0.99) > 0.0

    def test_proportion_counts_roundtrip(self):
        estimator = ProportionEstimator()
        estimator.add_many(3, 10)
        successes, count = estimator.counts
        assert (successes, count) == (3, 10)
