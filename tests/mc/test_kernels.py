"""Tests for the compiled kernel backend (repro.mc.kernels).

Four layers:

* **engine seam** — ``engine="compiled"`` without numba raises a
  did-you-mean :class:`ModelError`; ``engine="auto"`` never selects the
  compiled backend; every validation seam accepts the new name.
* **cross-engine agreement** — compiled estimates agree with batch and
  scalar (overlapping confidence intervals) on every supported regime,
  including §4.1 imperfect testing, blind-spot pairs and the §4.2
  envelope.  Run on the numpy fallback (``REPRO_COMPILED_FALLBACK``), the
  semantic reference the numba path is held to on the numba CI leg.
* **bit-invariance** — identical moments for every ``chunk_size`` /
  ``n_jobs`` decomposition (hypothesis), the counter-RNG guarantee.
* **kernel twins** — when numba *is* installed, njit kernels match the
  numpy twins decision-for-decision on the same counter uniforms.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ForcedTestingDiversity, IndependentSuites, SameSuite
from repro.core.bounds import back_to_back_envelope
from repro.demand import DemandSpace, zipf_profile
from repro.errors import ModelError
from repro.extensions.mistakes import BlindSpotFixing, BlindSpotOracle
from repro.faults import clustered_universe
from repro.mc import (
    simulate_joint_on_demand,
    simulate_marginal_system_pfd,
    simulate_untested_joint_on_demand,
    simulate_version_pfd,
)
from repro.mc.kernels import (
    HAVE_NUMBA,
    compiled_available,
    compiled_supported,
    require_compiled,
)
from repro.populations import BernoulliFaultPopulation
from repro.testing import (
    ImperfectFixing,
    ImperfectOracle,
    Oracle,
    OperationalSuiteGenerator,
    SuiteGenerator,
    TestSuite,
    WeightedDebugGenerator,
)


@pytest.fixture(autouse=True)
def _compiled_fallback(monkeypatch):
    """Let ``engine="compiled"`` run on the numpy twins without numba."""
    monkeypatch.setenv("REPRO_COMPILED_FALLBACK", "1")


@pytest.fixture
def model():
    space = DemandSpace(40)
    profile = zipf_profile(space, exponent=0.7)
    universe = clustered_universe(space, n_faults=10, region_size=4, rng=3)
    population = BernoulliFaultPopulation.uniform(universe, 0.35)
    generator = OperationalSuiteGenerator(profile, 12)
    return space, profile, universe, population, generator


def _overlap(first, second, confidence=0.99):
    if hasattr(first, "wilson_interval"):
        low_a, high_a = first.wilson_interval(confidence)
        low_b, high_b = second.wilson_interval(confidence)
    else:
        low_a, high_a = first.normal_interval(confidence)
        low_b, high_b = second.normal_interval(confidence)
    return low_a <= high_b and low_b <= high_a


# ---------------------------------------------------------------------------
# engine seam
# ---------------------------------------------------------------------------


class TestEngineSeam:
    def test_missing_numba_raises_did_you_mean(self, model, monkeypatch):
        if HAVE_NUMBA:
            pytest.skip("numba installed: the error path cannot trigger")
        monkeypatch.delenv("REPRO_COMPILED_FALLBACK")
        _space, _profile, _universe, population, _generator = model
        with pytest.raises(ModelError, match="numba.*Did you mean"):
            simulate_untested_joint_on_demand(
                population, 2, n_replications=10, rng=1, engine="compiled"
            )
        assert not compiled_available()
        with pytest.raises(ModelError, match=r"\[compiled\]"):
            require_compiled()

    def test_auto_never_selects_compiled(self, model, monkeypatch):
        # auto must resolve identically with and without the compiled
        # backend available — default results stay machine-independent
        _space, _profile, _universe, population, _generator = model
        with_fallback = simulate_untested_joint_on_demand(
            population, 2, n_replications=50, rng=1, engine="auto"
        )
        monkeypatch.delenv("REPRO_COMPILED_FALLBACK")
        without = simulate_untested_joint_on_demand(
            population, 2, n_replications=50, rng=1, engine="auto"
        )
        assert with_fallback.counts == without.counts

    def test_unknown_engine_rejected(self, model):
        _space, _profile, _universe, population, _generator = model
        with pytest.raises(ModelError, match="engine must be one of"):
            simulate_untested_joint_on_demand(
                population, 2, n_replications=10, rng=1, engine="gpu"
            )

    def test_precision_rejected_on_compiled(self, model):
        _space, profile, _universe, population, generator = model
        with pytest.raises(ModelError, match="precision"):
            simulate_version_pfd(
                population,
                generator,
                profile,
                rng=1,
                engine="compiled",
                precision={"rel_half_width": 0.1},
            )

    def test_engine_config_accepts_compiled(self):
        from repro.experiments.base import EngineConfig

        assert EngineConfig(engine="compiled").engine == "compiled"

    def test_back_to_back_envelope_accepts_compiled(self, model):
        _space, profile, _universe, population, generator = model
        envelope = back_to_back_envelope(
            population,
            generator,
            profile,
            n_replications=50,
            rng=3,
            engine="compiled",
        )
        assert envelope.n_replications == 50


# ---------------------------------------------------------------------------
# unsupported models fail loudly
# ---------------------------------------------------------------------------


class _CustomOracle(Oracle):
    def detects(self, version, demand, rng):  # pragma: no cover
        return True


class _CustomGenerator(SuiteGenerator):
    def sample(self, rng=None):  # pragma: no cover
        return TestSuite.of(self._space, [0])


class TestUnsupportedModels:
    def test_custom_oracle_rejected(self, model):
        _space, _profile, _universe, population, generator = model
        with pytest.raises(ModelError, match="_CustomOracle"):
            simulate_joint_on_demand(
                SameSuite(generator),
                population,
                2,
                n_replications=10,
                rng=1,
                oracle=_CustomOracle(),
                engine="compiled",
            )

    def test_custom_generator_rejected(self, model):
        space, profile, _universe, population, _generator = model
        custom = _CustomGenerator(space)
        with pytest.raises(ModelError, match="_CustomGenerator"):
            simulate_version_pfd(
                population, custom, profile, n_replications=10, rng=1,
                engine="compiled",
            )

    def test_compiled_supported_mirrors_the_rules(self, model):
        space, _profile, _universe, population, generator = model
        assert compiled_supported(
            populations=[population],
            generators=[generator],
            regime=SameSuite(generator),
        )
        assert not compiled_supported(oracle=_CustomOracle())
        assert not compiled_supported(generators=[_CustomGenerator(space)])


# ---------------------------------------------------------------------------
# cross-engine agreement
# ---------------------------------------------------------------------------


N = 3000
N_SCALAR = 250


class TestCrossEngineAgreement:
    def _engines(self, fn, scalar_n=N_SCALAR, **kwargs):
        compiled = fn(n_replications=N, rng=7, engine="compiled", **kwargs)
        batch = fn(n_replications=N, rng=7, engine="batch", **kwargs)
        scalar = fn(n_replications=scalar_n, rng=7, engine="scalar", **kwargs)
        assert _overlap(compiled, batch), (compiled.mean, batch.mean)
        assert _overlap(compiled, scalar), (compiled.mean, scalar.mean)

    def test_untested_joint(self, model):
        _space, _profile, _universe, population, _generator = model
        self._engines(
            lambda **kw: simulate_untested_joint_on_demand(population, 2, **kw)
        )

    @pytest.mark.parametrize("regime_kind", ["independent", "same", "forced"])
    def test_joint_perfect(self, model, regime_kind):
        _space, profile, _universe, population, generator = model
        debug = WeightedDebugGenerator.biased_towards(profile, [0, 1], 3.0, 12)
        regime = {
            "independent": IndependentSuites(generator),
            "same": SameSuite(generator),
            "forced": ForcedTestingDiversity(generator, debug),
        }[regime_kind]
        self._engines(
            lambda **kw: simulate_joint_on_demand(
                regime, population, 2, **kw
            )
        )

    def test_joint_imperfect(self, model):
        _space, _profile, _universe, population, generator = model
        self._engines(
            lambda **kw: simulate_joint_on_demand(
                SameSuite(generator),
                population,
                2,
                oracle=ImperfectOracle(0.7),
                fixing=ImperfectFixing(0.6),
                **kw,
            )
        )

    def test_joint_blind_spot_pair(self, model):
        _space, _profile, _universe, population, generator = model
        self._engines(
            lambda **kw: simulate_joint_on_demand(
                SameSuite(generator),
                population,
                2,
                oracle=BlindSpotOracle((0, 3)),
                fixing=BlindSpotFixing((0, 3)),
                **kw,
            )
        )

    @pytest.mark.parametrize("rao_blackwell", [True, False])
    def test_marginal_system_pfd(self, model, rao_blackwell):
        _space, profile, _universe, population, generator = model
        self._engines(
            lambda **kw: simulate_marginal_system_pfd(
                IndependentSuites(generator),
                population,
                profile,
                rao_blackwell=rao_blackwell,
                **kw,
            )
        )

    def test_version_pfd(self, model):
        _space, profile, _universe, population, generator = model
        self._engines(
            lambda **kw: simulate_version_pfd(
                population, generator, profile, **kw
            )
        )

    def test_version_pfd_imperfect(self, model):
        _space, profile, _universe, population, generator = model
        self._engines(
            lambda **kw: simulate_version_pfd(
                population,
                generator,
                profile,
                oracle=ImperfectOracle(0.6),
                fixing=ImperfectFixing(0.5),
                **kw,
            )
        )

    @pytest.mark.parametrize("fixing", [None, ImperfectFixing(0.5)])
    def test_back_to_back_envelope(self, model, fixing):
        _space, profile, _universe, population, generator = model
        compiled = back_to_back_envelope(
            population, generator, profile, fixing=fixing,
            n_replications=1500, rng=7, engine="compiled",
        )
        batch = back_to_back_envelope(
            population, generator, profile, fixing=fixing,
            n_replications=1500, rng=7, engine="batch",
        )
        if fixing is None:
            # with imperfect fixing the optimistic run flips fix coins the
            # perfect-oracle run does not, so the §4.2 identity only holds
            # in the perfect-fixing limit (same as the batch/scalar paths)
            assert compiled.ordering_holds
            assert compiled.optimistic_matches_perfect
        for field in (
            "untested_system_pfd",
            "perfect_system_pfd",
            "optimistic_system_pfd",
            "pessimistic_system_pfd",
            "shared_fault_system_pfd",
            "untested_version_pfd",
            "optimistic_version_pfd",
            "pessimistic_version_pfd",
            "shared_fault_version_pfd",
        ):
            assert getattr(compiled, field) == pytest.approx(
                getattr(batch, field), abs=0.02
            ), field


# ---------------------------------------------------------------------------
# bit-invariance under chunking and sharding
# ---------------------------------------------------------------------------


def _small_model():
    space = DemandSpace(20)
    profile = zipf_profile(space, exponent=0.8)
    universe = clustered_universe(space, n_faults=6, region_size=3, rng=5)
    population = BernoulliFaultPopulation.uniform(universe, 0.4)
    generator = OperationalSuiteGenerator(profile, 8)
    return profile, population, generator


class TestBitInvariance:
    @settings(max_examples=12, deadline=None)
    @given(chunk_size=st.integers(min_value=1, max_value=150))
    def test_joint_moments_identical_for_any_chunking(self, chunk_size):
        profile, population, generator = _small_model()
        reference = simulate_joint_on_demand(
            SameSuite(generator), population, 1, n_replications=97, rng=11,
            oracle=ImperfectOracle(0.7), fixing=ImperfectFixing(0.6),
            engine="compiled", chunk_size=97,
        )
        chunked = simulate_joint_on_demand(
            SameSuite(generator), population, 1, n_replications=97, rng=11,
            oracle=ImperfectOracle(0.7), fixing=ImperfectFixing(0.6),
            engine="compiled", chunk_size=chunk_size,
        )
        assert chunked.counts == reference.counts

    @settings(max_examples=8, deadline=None)
    @given(chunk_size=st.integers(min_value=1, max_value=150))
    def test_mean_moments_identical_for_any_chunking(self, chunk_size):
        profile, population, generator = _small_model()
        reference = simulate_marginal_system_pfd(
            IndependentSuites(generator), population, profile,
            n_replications=97, rng=11, engine="compiled", chunk_size=97,
        )
        chunked = simulate_marginal_system_pfd(
            IndependentSuites(generator), population, profile,
            n_replications=97, rng=11, engine="compiled",
            chunk_size=chunk_size,
        )
        assert chunked.moments == reference.moments

    def test_n_jobs_does_not_change_moments(self):
        profile, population, generator = _small_model()
        serial = simulate_version_pfd(
            population, generator, profile, n_replications=120, rng=13,
            engine="compiled", chunk_size=30, n_jobs=1,
        )
        sharded = simulate_version_pfd(
            population, generator, profile, n_replications=120, rng=13,
            engine="compiled", chunk_size=30, n_jobs=2,
        )
        assert sharded.moments == serial.moments

    def test_back_to_back_identical_for_any_chunking(self):
        profile, population, generator = _small_model()
        reference = back_to_back_envelope(
            population, generator, profile, n_replications=60, rng=13,
            engine="compiled", chunk_size=60,
        )
        for chunk_size in (1, 7, 59):
            chunked = back_to_back_envelope(
                population, generator, profile, n_replications=60, rng=13,
                engine="compiled", chunk_size=chunk_size,
            )
            assert chunked == reference


# ---------------------------------------------------------------------------
# numba kernels match the numpy twins (runs on the numba CI leg)
# ---------------------------------------------------------------------------


@pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")
class TestNumbaMatchesNumpyTwins:
    def _arrays(self):
        from repro.rng import counter_key

        rng = np.random.default_rng(0)
        faults_a = rng.random((40, 6)) < 0.4
        faults_b = rng.random((40, 5)) < 0.4
        cov_a = np.ascontiguousarray(rng.random((6, 20)) < 0.3)
        cov_b = np.ascontiguousarray(rng.random((5, 20)) < 0.3)
        q = rng.dirichlet(np.ones(20))
        key = counter_key(9)
        streams = np.arange(40, dtype=np.uint64)
        return faults_a, faults_b, cov_a, cov_b, q, key, streams

    def test_scoring_kernels(self):
        from repro.mc import kernels as k

        faults_a, faults_b, cov_a, cov_b, q, _key, _streams = self._arrays()
        ids_a = np.flatnonzero(cov_a[:, 3]).astype(np.int64)
        ids_b = np.flatnonzero(cov_b[:, 3]).astype(np.int64)
        np.testing.assert_array_equal(
            k.joint_demand_failures(faults_a, faults_b, ids_a, ids_b),
            k._np_joint_demand_failures(faults_a, faults_b, ids_a, ids_b),
        )
        np.testing.assert_allclose(
            k.pfd_values(faults_a, cov_a, q),
            k._np_pfd_values(faults_a, cov_a, q),
            rtol=1e-12,
        )
        np.testing.assert_allclose(
            k.joint_pfd_values(faults_a, faults_b, cov_a, cov_b, q),
            k._np_joint_pfd_values(faults_a, faults_b, cov_a, cov_b, q),
            rtol=1e-12,
        )

    def test_closure_kernels_bit_identical(self):
        from repro.mc import kernels as k
        from repro.rng import counter_uniforms

        faults_a, _faults_b, cov_a, _cov_b, _q, key, streams = self._arrays()
        rng = np.random.default_rng(1)
        masks = rng.random((40, 20)) < 0.3
        visible = rng.random(6) < 0.8
        np.testing.assert_array_equal(
            k.perfect_closure(faults_a, masks, cov_a, visible),
            k._np_perfect_closure(faults_a, masks, cov_a, visible),
        )
        seqs = rng.integers(-1, 20, size=(40, 8))
        detect_u = counter_uniforms(key, streams[:, None], np.arange(8))
        surv_u = counter_uniforms(
            key, streams[:, None], 8 + np.arange(6)
        )
        np.testing.assert_array_equal(
            k.imperfect_closure(
                faults_a, seqs, cov_a, detect_u, surv_u, 0.7, 0.6
            ),
            k._np_imperfect_closure(
                faults_a, seqs, cov_a, detect_u, surv_u, 0.7, 0.6
            ),
        )

    def test_back_to_back_kernel_bit_identical(self):
        from repro.mc import kernels as k

        faults_a, faults_b, cov_a, cov_b, _q, key, streams = self._arrays()
        rng = np.random.default_rng(2)
        seqs = rng.integers(-1, 20, size=(40, 8))
        stride = faults_a.shape[1] + faults_b.shape[1]
        for mode in (0, 1, 2):
            for fix_p in (1.0, 0.5):
                got_a, got_b = k.back_to_back_counter(
                    faults_a, faults_b, seqs, cov_a, cov_b, mode, fix_p,
                    key, streams, 100, stride,
                )
                want_a, want_b = faults_a.copy(), faults_b.copy()
                k._np_back_to_back(
                    want_a, want_b, seqs, cov_a, cov_b, mode, fix_p,
                    key, streams, 100, stride,
                )
                np.testing.assert_array_equal(got_a, want_a)
                np.testing.assert_array_equal(got_b, want_b)
