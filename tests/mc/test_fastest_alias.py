"""The ``engine="fastest"`` alias: one knob for "the quickest backend".

Resolution contract: ``compiled`` when numba is importable *and* the
testing pair has compiled kernels, else ``batch`` (never ``scalar`` —
the alias fails as loudly as ``"batch"`` on pairs the vectorized
engines cannot model).  Because the resolution depends on what is
installed, any run configured with the alias records what it resolved
to in ``ExperimentResult.extra["engine_provenance"]``.
"""

import pytest

import repro.mc.kernels as kernels
from repro.coverage import ComponentModel, coverage_testing_pair, synthetic_coverage
from repro.demand import DemandSpace, zipf_profile
from repro.errors import ModelError
from repro.experiments import run_experiment
from repro.experiments.base import EngineConfig, set_engine_config
from repro.faults import clustered_universe
from repro.mc import simulate_untested_joint_on_demand
from repro.mc.experiments import resolve_fastest
from repro.populations import BernoulliFaultPopulation
from repro.testing import OperationalSuiteGenerator


@pytest.fixture
def model():
    space = DemandSpace(40)
    profile = zipf_profile(space, exponent=0.7)
    universe = clustered_universe(space, n_faults=10, region_size=4, rng=3)
    population = BernoulliFaultPopulation.uniform(universe, 0.35)
    generator = OperationalSuiteGenerator(profile, 12)
    return space, profile, universe, population, generator


class TestResolution:
    def test_without_numba_resolves_to_batch(self, monkeypatch):
        monkeypatch.setattr(kernels, "HAVE_NUMBA", False)
        assert resolve_fastest() == "batch"

    def test_with_numba_resolves_to_compiled(self, monkeypatch):
        monkeypatch.setattr(kernels, "HAVE_NUMBA", True)
        assert resolve_fastest() == "compiled"

    def test_coverage_pair_never_resolves_to_compiled(self, model, monkeypatch):
        """Even on a numba host the alias avoids the compiled backend for
        pairs it has no kernels for (coverage-aware testing)."""
        monkeypatch.setattr(kernels, "HAVE_NUMBA", True)
        _space, _profile, universe, _population, _generator = model
        matrix = synthetic_coverage(8, 5, density=0.5, rng=1)
        oracle, fixing = coverage_testing_pair(
            ComponentModel.round_robin(universe, 5), matrix
        )
        assert resolve_fastest(oracle, fixing) == "batch"

    def test_engine_config_accepts_fastest(self):
        assert EngineConfig(engine="fastest").engine == "fastest"

    def test_unknown_engine_error_names_fastest(self, model):
        _space, _profile, _universe, population, _generator = model
        with pytest.raises(ModelError, match="fastest"):
            simulate_untested_joint_on_demand(
                population, 2, n_replications=10, rng=1, engine="gpu"
            )


class TestSimulation:
    def test_fastest_matches_batch_without_numba(self, model, monkeypatch):
        """On a numba-less host the alias is exactly the batch engine —
        identical counts, not merely close."""
        monkeypatch.setattr(kernels, "HAVE_NUMBA", False)
        _space, _profile, _universe, population, _generator = model
        fastest = simulate_untested_joint_on_demand(
            population, 2, n_replications=300, rng=7, engine="fastest"
        )
        batch = simulate_untested_joint_on_demand(
            population, 2, n_replications=300, rng=7, engine="batch"
        )
        assert fastest.counts == batch.counts


class TestProvenance:
    def _run_with_engine(self, engine):
        previous = set_engine_config(engine=engine, n_jobs=1)
        try:
            return run_experiment("a4", seed=0, fast=True)
        finally:
            set_engine_config(engine=previous.engine, n_jobs=previous.n_jobs)

    def test_fastest_run_records_resolution(self):
        result = self._run_with_engine("fastest")
        note = result.extra["engine_provenance"]
        assert "engine='fastest' resolved to" in note
        resolved = resolve_fastest()
        assert f"{resolved!r}" in note

    def test_concrete_engines_leave_extra_untouched(self):
        result = self._run_with_engine("auto")
        assert "engine_provenance" not in result.extra
