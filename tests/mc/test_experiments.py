"""Tests for the full-pipeline Monte-Carlo experiment drivers."""

import numpy as np
import pytest

from repro.core import IndependentSuites, SameSuite, joint_failure_probability
from repro.errors import ModelError
from repro.mc import (
    simulate_joint_on_demand,
    simulate_marginal_system_pfd,
    simulate_untested_joint_on_demand,
    simulate_version_pfd,
)


class TestUntestedJoint:
    def test_matches_theta_squared(self, bernoulli_population):
        theta = bernoulli_population.difficulty()
        demand = 4
        estimator = simulate_untested_joint_on_demand(
            bernoulli_population, demand, n_replications=4000, rng=0
        )
        assert estimator.contains(float(theta[demand] ** 2), confidence=0.999)

    def test_replication_validation(self, bernoulli_population):
        with pytest.raises(ModelError):
            simulate_untested_joint_on_demand(
                bernoulli_population, 0, n_replications=0
            )


class TestTestedJoint:
    def test_same_suite_matches_analytic(
        self, bernoulli_population, enumerable_generator
    ):
        regime = SameSuite(enumerable_generator)
        analytic = joint_failure_probability(regime, bernoulli_population)
        demand = 0
        estimator = simulate_joint_on_demand(
            regime, bernoulli_population, demand, n_replications=4000, rng=1
        )
        assert estimator.contains(
            float(analytic.joint[demand]), confidence=0.999
        )

    def test_independent_matches_analytic(
        self, bernoulli_population, enumerable_generator
    ):
        regime = IndependentSuites(enumerable_generator)
        analytic = joint_failure_probability(regime, bernoulli_population)
        demand = 0
        estimator = simulate_joint_on_demand(
            regime, bernoulli_population, demand, n_replications=4000, rng=2
        )
        assert estimator.contains(
            float(analytic.joint[demand]), confidence=0.999
        )

    def test_deterministic_under_seed(
        self, bernoulli_population, enumerable_generator
    ):
        regime = SameSuite(enumerable_generator)
        a = simulate_joint_on_demand(
            regime, bernoulli_population, 0, n_replications=100, rng=3
        )
        b = simulate_joint_on_demand(
            regime, bernoulli_population, 0, n_replications=100, rng=3
        )
        assert a.mean == b.mean


class TestMarginal:
    def test_rao_blackwell_matches_analytic(
        self, bernoulli_population, enumerable_generator, profile
    ):
        from repro.core import marginal_system_pfd

        regime = SameSuite(enumerable_generator)
        analytic = marginal_system_pfd(
            regime, bernoulli_population, profile
        ).system_pfd
        estimator = simulate_marginal_system_pfd(
            regime,
            bernoulli_population,
            profile,
            n_replications=800,
            rng=4,
        )
        assert estimator.contains(analytic, confidence=0.999)

    def test_raw_demand_draw_agrees(self, bernoulli_population, enumerable_generator, profile):
        regime = SameSuite(enumerable_generator)
        rao = simulate_marginal_system_pfd(
            regime,
            bernoulli_population,
            profile,
            n_replications=800,
            rng=5,
        )
        raw = simulate_marginal_system_pfd(
            regime,
            bernoulli_population,
            profile,
            n_replications=4000,
            rng=6,
            rao_blackwell=False,
        )
        assert raw.mean == pytest.approx(rao.mean, abs=0.05)

    def test_rao_blackwell_reduces_variance(
        self, bernoulli_population, enumerable_generator, profile
    ):
        regime = SameSuite(enumerable_generator)
        rao = simulate_marginal_system_pfd(
            regime, bernoulli_population, profile, n_replications=500, rng=7
        )
        raw = simulate_marginal_system_pfd(
            regime,
            bernoulli_population,
            profile,
            n_replications=500,
            rng=7,
            rao_blackwell=False,
        )
        assert rao.variance <= raw.variance


class TestVersionPfd:
    def test_matches_zeta_expectation(
        self, bernoulli_population, enumerable_generator, profile
    ):
        from repro.core import TestedPopulationView

        zeta = TestedPopulationView(
            bernoulli_population, enumerable_generator
        ).zeta()
        expected = profile.expectation(zeta)
        estimator = simulate_version_pfd(
            bernoulli_population,
            enumerable_generator,
            profile,
            n_replications=1500,
            rng=8,
        )
        assert estimator.contains(expected, confidence=0.999)
