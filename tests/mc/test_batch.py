"""Tests for the vectorized batch Monte-Carlo engine.

Three layers of assurance:

* **property tests** — the batched perfect-oracle testing closure agrees
  row-for-row with the scalar :func:`repro.testing.apply_testing` on
  hypothesis-generated universes, versions and suites;
* **statistical agreement** — batched and scalar ``simulate_*`` paths give
  estimates with overlapping 95% confidence intervals on a shared model;
* **execution semantics** — batched runs are deterministic under a seed,
  invariant to ``n_jobs`` at fixed chunking, and reject custom
  oracle/fixing policies (imperfect oracles/fixing run vectorized; see
  tests/mc/test_batch_imperfect.py for their agreement suite).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import IndependentSuites, SameSuite
from repro.demand import DemandSpace, uniform_profile, zipf_profile
from repro.errors import ModelError
from repro.faults import FaultUniverse, clustered_universe
from repro.mc import (
    MeanEstimator,
    apply_testing_batch,
    batch_supported,
    simulate_joint_on_demand,
    simulate_joint_on_demand_batch,
    simulate_marginal_system_pfd,
    simulate_marginal_system_pfd_batch,
    simulate_untested_joint_on_demand,
    simulate_untested_joint_on_demand_batch,
    simulate_version_pfd,
    simulate_version_pfd_batch,
)
from repro.populations import BernoulliFaultPopulation
from repro.testing import (
    ImperfectOracle,
    OperationalSuiteGenerator,
    TestSuite,
    apply_testing,
)
from repro.versions import Version


def _overlap(first, second, confidence=0.95):
    """True iff the two estimators' confidence intervals overlap."""
    if hasattr(first, "wilson_interval"):
        low_a, high_a = first.wilson_interval(confidence)
        low_b, high_b = second.wilson_interval(confidence)
    else:
        low_a, high_a = first.normal_interval(confidence)
        low_b, high_b = second.normal_interval(confidence)
    return low_a <= high_b and low_b <= high_a


@pytest.fixture
def model():
    """A mid-size model exercising overlapping regions and a skewed Q."""
    space = DemandSpace(60)
    profile = zipf_profile(space, exponent=0.7)
    universe = clustered_universe(space, n_faults=12, region_size=5, rng=3)
    population = BernoulliFaultPopulation.uniform(universe, 0.35)
    generator = OperationalSuiteGenerator(profile, 15)
    return space, profile, universe, population, generator


# ---------------------------------------------------------------------------
# property: batched testing closure == scalar apply_testing
# ---------------------------------------------------------------------------


@st.composite
def _closure_cases(draw):
    n_demands = draw(st.integers(min_value=1, max_value=12))
    n_faults = draw(st.integers(min_value=0, max_value=6))
    regions = [
        draw(
            st.lists(
                st.integers(min_value=0, max_value=n_demands - 1),
                min_size=1,
                max_size=n_demands,
                unique=True,
            )
        )
        for _ in range(n_faults)
    ]
    present = draw(st.lists(st.booleans(), min_size=n_faults, max_size=n_faults))
    suite = draw(
        st.lists(
            st.integers(min_value=0, max_value=n_demands - 1),
            min_size=0,
            max_size=2 * n_demands,
        )
    )
    return n_demands, regions, present, suite


@given(_closure_cases())
@settings(max_examples=150, deadline=None)
def test_closure_matches_scalar_apply_testing(case):
    n_demands, regions, present, suite_demands = case
    space = DemandSpace(n_demands)
    universe = FaultUniverse.from_regions(space, regions)
    fault_ids = np.flatnonzero(np.asarray(present, dtype=bool)).astype(np.int64)
    version = Version(universe, fault_ids)
    suite = TestSuite.of(space, suite_demands)

    scalar_after = apply_testing(version, suite).after
    expected = np.zeros(len(universe), dtype=bool)
    expected[scalar_after.fault_ids] = True

    fault_matrix = np.zeros((1, len(universe)), dtype=bool)
    fault_matrix[0, fault_ids] = True
    batch_after = apply_testing_batch(
        fault_matrix, suite.mask()[None, :], universe
    )
    assert np.array_equal(batch_after[0], expected)


@given(st.integers(min_value=0, max_value=2**32 - 1), st.integers(1, 40))
@settings(max_examples=25, deadline=None)
def test_fault_matrix_rows_are_valid_versions(seed, count):
    space = DemandSpace(20)
    universe = clustered_universe(space, n_faults=8, region_size=4, rng=1)
    population = BernoulliFaultPopulation(
        universe, np.linspace(0.0, 1.0, len(universe))
    )
    matrix = population.sample_fault_matrix(count, seed)
    assert matrix.shape == (count, len(universe))
    # impossible faults never appear; certain faults always do
    assert not matrix[:, population.presence_probs == 0.0].any()
    assert matrix[:, population.presence_probs == 1.0].all()


# ---------------------------------------------------------------------------
# statistical agreement between engines
# ---------------------------------------------------------------------------


def test_untested_joint_engines_agree(model):
    _space, _profile, _universe, population, _generator = model
    demand = 2
    scalar = simulate_untested_joint_on_demand(
        population, demand, n_replications=3000, rng=11, engine="scalar"
    )
    batch = simulate_untested_joint_on_demand_batch(
        population, demand, n_replications=3000, rng=11
    )
    assert batch.count == scalar.count == 3000
    assert _overlap(scalar, batch)
    theta = population.difficulty()[demand]
    assert batch.contains(float(theta**2), confidence=0.999)


@pytest.mark.parametrize("regime_cls", [SameSuite, IndependentSuites])
def test_tested_joint_engines_agree(model, regime_cls):
    _space, _profile, _universe, population, generator = model
    regime = regime_cls(generator)
    demand = 2
    scalar = simulate_joint_on_demand(
        regime, population, demand, n_replications=3000, rng=13, engine="scalar"
    )
    batch = simulate_joint_on_demand_batch(
        regime, population, demand, n_replications=3000, rng=13
    )
    assert _overlap(scalar, batch)


def test_marginal_engines_agree(model):
    _space, profile, _universe, population, generator = model
    regime = SameSuite(generator)
    scalar = simulate_marginal_system_pfd(
        regime, population, profile, n_replications=1500, rng=17, engine="scalar"
    )
    batch = simulate_marginal_system_pfd_batch(
        regime, population, profile, n_replications=1500, rng=17
    )
    assert _overlap(scalar, batch)


def test_marginal_raw_demand_engines_agree(model):
    _space, profile, _universe, population, generator = model
    regime = SameSuite(generator)
    scalar = simulate_marginal_system_pfd(
        regime,
        population,
        profile,
        n_replications=4000,
        rng=19,
        rao_blackwell=False,
        engine="scalar",
    )
    batch = simulate_marginal_system_pfd_batch(
        regime,
        population,
        profile,
        n_replications=4000,
        rng=19,
        rao_blackwell=False,
    )
    assert _overlap(scalar, batch)


def test_version_pfd_engines_agree(model):
    _space, profile, _universe, population, generator = model
    scalar = simulate_version_pfd(
        population, generator, profile, n_replications=1500, rng=23, engine="scalar"
    )
    batch = simulate_version_pfd_batch(
        population, generator, profile, n_replications=1500, rng=23
    )
    assert _overlap(scalar, batch)


# ---------------------------------------------------------------------------
# execution semantics: determinism, chunking, sharding, fallback
# ---------------------------------------------------------------------------


def test_batch_deterministic_under_seed(model):
    _space, profile, _universe, population, generator = model
    regime = SameSuite(generator)
    first = simulate_marginal_system_pfd_batch(
        regime, population, profile, n_replications=500, rng=29
    )
    second = simulate_marginal_system_pfd_batch(
        regime, population, profile, n_replications=500, rng=29
    )
    assert first.mean == second.mean
    assert first.variance == second.variance


def test_chunked_run_covers_full_budget(model):
    _space, profile, _universe, population, generator = model
    regime = SameSuite(generator)
    estimator = simulate_marginal_system_pfd_batch(
        regime, population, profile, n_replications=1001, rng=31, chunk_size=100
    )
    assert estimator.count == 1001


def test_n_jobs_invariant_at_fixed_chunking(model):
    _space, profile, _universe, population, generator = model
    regime = SameSuite(generator)
    serial = simulate_marginal_system_pfd_batch(
        regime,
        population,
        profile,
        n_replications=400,
        rng=37,
        chunk_size=100,
        n_jobs=1,
    )
    sharded = simulate_marginal_system_pfd_batch(
        regime,
        population,
        profile,
        n_replications=400,
        rng=37,
        chunk_size=100,
        n_jobs=2,
    )
    assert sharded.count == serial.count
    assert sharded.mean == serial.mean
    assert sharded.variance == serial.variance


def test_proportion_n_jobs_invariant(model):
    _space, _profile, _universe, population, generator = model
    regime = IndependentSuites(generator)
    serial = simulate_joint_on_demand_batch(
        regime, population, 2, n_replications=400, rng=41, chunk_size=100, n_jobs=1
    )
    sharded = simulate_joint_on_demand_batch(
        regime, population, 2, n_replications=400, rng=41, chunk_size=100, n_jobs=2
    )
    assert (sharded.successes, sharded.count) == (serial.successes, serial.count)


class _CustomOracle(ImperfectOracle):
    """An oracle the batch engine cannot introspect (custom subclass)."""

    def detects(self, version, demand, rng):
        return super().detects(version, demand, rng)


def test_custom_oracle_not_batch_supported(model):
    _space, profile, _universe, population, generator = model
    oracle = _CustomOracle(0.6)
    assert not batch_supported(oracle=oracle)
    # engine='auto' transparently falls back to the scalar loop
    regime = SameSuite(generator)
    auto = simulate_marginal_system_pfd(
        regime, population, profile, n_replications=50, rng=43, oracle=oracle
    )
    scalar = simulate_marginal_system_pfd(
        regime,
        population,
        profile,
        n_replications=50,
        rng=43,
        oracle=oracle,
        engine="scalar",
    )
    assert auto.mean == scalar.mean
    assert auto.variance == scalar.variance


def test_imperfect_oracle_runs_on_batch_path(model):
    _space, profile, _universe, population, generator = model
    regime = SameSuite(generator)
    oracle = ImperfectOracle(0.6)
    assert batch_supported(oracle=oracle)
    batch = simulate_marginal_system_pfd_batch(
        regime, population, profile, n_replications=2000, rng=43, oracle=oracle
    )
    scalar = simulate_marginal_system_pfd(
        regime,
        population,
        profile,
        n_replications=2000,
        rng=43,
        oracle=oracle,
        engine="scalar",
    )
    assert _overlap(scalar, batch)


def test_auto_engine_matches_forced_batch(model):
    _space, profile, _universe, population, generator = model
    regime = SameSuite(generator)
    auto = simulate_marginal_system_pfd(
        regime, population, profile, n_replications=300, rng=47
    )
    forced = simulate_marginal_system_pfd(
        regime, population, profile, n_replications=300, rng=47, engine="batch"
    )
    assert auto.mean == forced.mean


def test_n_jobs_invariant_at_default_chunking(model):
    # default chunk size must not depend on n_jobs (documented guarantee);
    # 10001 replications span two default-size chunks
    _space, _profile, _universe, population, _generator = model
    serial = simulate_untested_joint_on_demand_batch(
        population, 2, n_replications=10001, rng=53, n_jobs=1
    )
    sharded = simulate_untested_joint_on_demand_batch(
        population, 2, n_replications=10001, rng=53, n_jobs=2
    )
    assert (sharded.successes, sharded.count) == (serial.successes, serial.count)


def test_explicit_batch_engine_rejects_custom_oracle(model):
    _space, profile, _universe, population, generator = model
    with pytest.raises(ModelError, match="engine='batch'"):
        simulate_marginal_system_pfd(
            SameSuite(generator),
            population,
            profile,
            n_replications=10,
            oracle=_CustomOracle(0.5),
            engine="batch",
        )


def test_unknown_engine_rejected(model):
    _space, profile, _universe, population, generator = model
    with pytest.raises(ModelError):
        simulate_marginal_system_pfd(
            SameSuite(generator),
            population,
            profile,
            n_replications=10,
            engine="gpu",
        )


def test_invalid_replications_rejected_on_batch_path(model):
    _space, _profile, _universe, population, _generator = model
    with pytest.raises(ModelError):
        simulate_untested_joint_on_demand_batch(population, 0, n_replications=0)


# ---------------------------------------------------------------------------
# estimator merges
# ---------------------------------------------------------------------------


@given(
    st.lists(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        min_size=1,
        max_size=60,
    ),
    st.integers(min_value=1, max_value=7),
)
@settings(max_examples=100, deadline=None)
def test_mean_add_many_matches_sequential_add(values, n_splits):
    sequential = MeanEstimator()
    for value in values:
        sequential.add(value)
    merged = MeanEstimator()
    for chunk in np.array_split(np.asarray(values), n_splits):
        merged.add_many(chunk)
    assert merged.count == sequential.count
    assert merged.mean == pytest.approx(sequential.mean, rel=1e-12, abs=1e-12)
    assert merged.variance == pytest.approx(
        sequential.variance, rel=1e-9, abs=1e-12
    )


def test_mean_add_many_empty_is_noop():
    estimator = MeanEstimator()
    estimator.add_many([])
    assert estimator.count == 0
    estimator.add(0.5)
    estimator.add_many([])
    assert estimator.count == 1
    assert estimator.mean == 0.5


def test_mean_add_moments_rejects_negative_count():
    with pytest.raises(ModelError):
        MeanEstimator().add_moments(-1, 0.0, 0.0)
