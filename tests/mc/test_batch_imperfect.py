"""Tests for the imperfect-regime and back-to-back batch kernels.

Mirrors tests/mc/test_batch.py for the regimes PR 1 left on the scalar
path:

* **property / exactness** — the §4.1 kernel degenerates to the perfect
  closure at ``p = q = 1``; the back-to-back kernel matches the scalar
  :func:`repro.testing.back_to_back_testing` row for row (it is
  deterministic under perfect fixing); the blind-spot closure matches the
  scalar blind oracle/fixing pair exactly;
* **statistical agreement** — batch and scalar engines give estimates with
  overlapping 99% confidence intervals for ``ImperfectOracle``,
  ``ImperfectFixing``, their combination, and the back-to-back envelope;
* **execution semantics** — seed determinism and ``n_jobs`` invariance for
  the new kernels, engine dispatch, and the suite-representation APIs
  (ordered sequences and occurrence counts) they are built on.
"""

import numpy as np
import pytest

from repro.core import IndependentSuites, SameSuite
from repro.core.bounds import back_to_back_envelope
from repro.demand import DemandSpace, uniform_profile, zipf_profile
from repro.errors import ModelError
from repro.faults import clustered_universe
from repro.mc import (
    apply_imperfect_testing_batch,
    apply_testing_batch,
    back_to_back_batch,
    back_to_back_envelope_batch,
    back_to_back_supported,
    batch_supported,
    simulate_joint_on_demand,
    simulate_marginal_system_pfd,
    simulate_marginal_system_pfd_batch,
    simulate_version_pfd,
)
from repro.populations import BernoulliFaultPopulation
from repro.testing import (
    BackToBackComparator,
    ExhaustiveSuiteGenerator,
    ImperfectFixing,
    ImperfectOracle,
    OperationalSuiteGenerator,
    back_to_back_testing,
    demand_sequences_to_counts,
)
from repro.versions import (
    optimistic_outputs,
    pessimistic_outputs,
    shared_fault_outputs,
)


def _overlap(first, second, confidence=0.99):
    """True iff the two estimators' confidence intervals overlap."""
    if hasattr(first, "wilson_interval"):
        low_a, high_a = first.wilson_interval(confidence)
        low_b, high_b = second.wilson_interval(confidence)
    else:
        low_a, high_a = first.normal_interval(confidence)
        low_b, high_b = second.normal_interval(confidence)
    return low_a <= high_b and low_b <= high_a


@pytest.fixture
def model():
    """A mid-size model exercising overlapping regions and a skewed Q."""
    space = DemandSpace(60)
    profile = zipf_profile(space, exponent=0.7)
    universe = clustered_universe(space, n_faults=12, region_size=5, rng=3)
    population = BernoulliFaultPopulation.uniform(universe, 0.35)
    generator = OperationalSuiteGenerator(profile, 15)
    return space, profile, universe, population, generator


# ---------------------------------------------------------------------------
# suite representations: ordered sequences and occurrence counts
# ---------------------------------------------------------------------------


def test_operational_sequences_shape_and_counts(model):
    _space, _profile, _universe, _population, generator = model
    sequences = generator.sample_demand_sequences(40, rng=1)
    assert sequences.shape == (40, 15)
    assert sequences.min() >= 0 and sequences.max() < 60
    counts = demand_sequences_to_counts(sequences, 60)
    assert counts.shape == (40, 60)
    assert (counts.sum(axis=1) == 15).all()
    # counts and masks agree on membership
    assert np.array_equal(
        counts > 0, demand_sequences_to_counts(sequences, 60) > 0
    )


def test_default_sequences_pad_variable_lengths():
    # the base-class loop pads shorter suites with -1
    space = DemandSpace(8)
    profile = uniform_profile(space)
    from repro.testing import EnumerableSuiteGenerator, TestSuite

    generator = EnumerableSuiteGenerator(
        space,
        [TestSuite.of(space, [0, 1, 1]), TestSuite.of(space, [5])],
        [0.5, 0.5],
    )
    sequences = generator.sample_demand_sequences(64, rng=2)
    assert sequences.shape == (64, 3)
    lengths = (sequences >= 0).sum(axis=1)
    assert set(lengths.tolist()) <= {1, 3}
    counts = demand_sequences_to_counts(sequences, 8)
    # the repeated demand keeps its multiplicity
    assert set(counts[lengths == 3][:, 1].tolist()) == {2}


def test_exhaustive_sequences_cover_space_in_order():
    space = DemandSpace(7)
    generator = ExhaustiveSuiteGenerator(space)
    sequences = generator.sample_demand_sequences(3, rng=0)
    assert sequences.shape == (3, 7)
    assert np.array_equal(sequences, np.tile(np.arange(7), (3, 1)))


def test_same_suite_counts_are_shared(model):
    _space, _profile, _universe, _population, generator = model
    counts_a, counts_b = SameSuite(generator).draw_suite_counts(20, rng=3)
    assert counts_a is counts_b or np.array_equal(counts_a, counts_b)
    counts_a, counts_b = IndependentSuites(generator).draw_suite_counts(20, rng=3)
    assert not np.array_equal(counts_a, counts_b)


# ---------------------------------------------------------------------------
# §4.1 kernel: exactness corners and scalar agreement
# ---------------------------------------------------------------------------


def test_imperfect_kernel_degenerates_to_perfect_closure(model):
    _space, _profile, universe, population, generator = model
    faults = population.sample_fault_matrix(200, rng=5)
    sequences = generator.sample_demand_sequences(200, rng=6)
    counts = demand_sequences_to_counts(sequences, universe.space.size)
    perfect = apply_testing_batch(faults, counts > 0, universe)
    degenerate = apply_imperfect_testing_batch(
        faults, counts, universe, 1.0, 1.0, rng=7
    )
    assert np.array_equal(perfect, degenerate)


def test_dead_oracle_leaves_blocks_unchanged(model):
    _space, _profile, universe, population, generator = model
    faults = population.sample_fault_matrix(100, rng=8)
    counts = generator.sample_demand_counts(100, rng=9)
    after = apply_imperfect_testing_batch(faults, counts, universe, 0.0, 1.0, rng=10)
    assert np.array_equal(after, faults)


def test_exhaustive_perfect_rates_remove_everything(model):
    _space, profile, universe, population, _generator = model
    exhaustive = ExhaustiveSuiteGenerator(universe.space)
    estimator = simulate_version_pfd(
        population,
        exhaustive,
        profile,
        n_replications=200,
        rng=11,
        oracle=ImperfectOracle(1.0),
        fixing=ImperfectFixing(1.0),
        engine="batch",
    )
    assert estimator.mean == 0.0


@pytest.mark.parametrize(
    "oracle, fixing",
    [
        (ImperfectOracle(0.6), None),
        (None, ImperfectFixing(0.5)),
        (ImperfectOracle(0.75), ImperfectFixing(0.5)),
    ],
)
def test_version_pfd_engines_agree_imperfect(model, oracle, fixing):
    _space, profile, _universe, population, generator = model
    scalar = simulate_version_pfd(
        population,
        generator,
        profile,
        n_replications=3000,
        rng=13,
        oracle=oracle,
        fixing=fixing,
        engine="scalar",
    )
    batch = simulate_version_pfd(
        population,
        generator,
        profile,
        n_replications=3000,
        rng=13,
        oracle=oracle,
        fixing=fixing,
        engine="batch",
    )
    assert _overlap(scalar, batch)


@pytest.mark.parametrize("regime_cls", [SameSuite, IndependentSuites])
def test_joint_engines_agree_imperfect(model, regime_cls):
    _space, _profile, _universe, population, generator = model
    regime = regime_cls(generator)
    kwargs = dict(
        oracle=ImperfectOracle(0.7),
        fixing=ImperfectFixing(0.6),
        n_replications=3000,
        rng=17,
    )
    scalar = simulate_joint_on_demand(
        regime, population, 2, engine="scalar", **kwargs
    )
    batch = simulate_joint_on_demand(
        regime, population, 2, engine="batch", **kwargs
    )
    assert _overlap(scalar, batch)


def test_marginal_engines_agree_imperfect(model):
    _space, profile, _universe, population, generator = model
    regime = SameSuite(generator)
    kwargs = dict(
        oracle=ImperfectOracle(0.6),
        fixing=ImperfectFixing(0.5),
        n_replications=2000,
        rng=19,
    )
    scalar = simulate_marginal_system_pfd(
        regime, population, profile, engine="scalar", **kwargs
    )
    batch = simulate_marginal_system_pfd(
        regime, population, profile, engine="batch", **kwargs
    )
    assert _overlap(scalar, batch)


def test_imperfect_estimates_bracketed_by_envelope(model):
    # §4.1: imperfect testing sits between perfect testing and no testing
    _space, profile, _universe, population, generator = model
    perfect = simulate_version_pfd(
        population, generator, profile, n_replications=4000, rng=23
    ).mean
    imperfect = simulate_version_pfd(
        population,
        generator,
        profile,
        n_replications=4000,
        rng=23,
        oracle=ImperfectOracle(0.5),
        engine="batch",
    ).mean
    untested = population.pfd(profile)
    slack = 0.01
    assert perfect - slack <= imperfect <= untested + slack


# ---------------------------------------------------------------------------
# back-to-back kernel: scalar equivalence and envelope agreement
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "outputs",
    [optimistic_outputs(), pessimistic_outputs(), shared_fault_outputs()],
    ids=["optimistic", "pessimistic", "shared-fault"],
)
def test_back_to_back_matches_scalar_rows(model, outputs):
    # perfect fixing makes back-to-back deterministic given the draws, so
    # the kernel must reproduce the scalar engine exactly, row for row
    _space, _profile, universe, population, generator = model
    rng = np.random.default_rng(29)
    comparator = BackToBackComparator(outputs)
    for _trial in range(25):
        version_a = population.sample(rng)
        version_b = population.sample(rng)
        suite = generator.sample(rng)
        outcome_a, outcome_b = back_to_back_testing(
            version_a, version_b, suite, comparator
        )
        faults_a = np.zeros((1, len(universe)), dtype=bool)
        faults_a[0, version_a.fault_ids] = True
        faults_b = np.zeros((1, len(universe)), dtype=bool)
        faults_b[0, version_b.fault_ids] = True
        after_a, after_b = back_to_back_batch(
            faults_a,
            faults_b,
            suite.demands[None, :],
            universe,
            universe,
            comparator,
        )
        expected_a = np.zeros(len(universe), dtype=bool)
        expected_a[outcome_a.after.fault_ids] = True
        expected_b = np.zeros(len(universe), dtype=bool)
        expected_b[outcome_b.after.fault_ids] = True
        assert np.array_equal(after_a[0], expected_a)
        assert np.array_equal(after_b[0], expected_b)


def test_back_to_back_inputs_not_mutated(model):
    _space, _profile, universe, population, generator = model
    faults_a = population.sample_fault_matrix(50, rng=31)
    faults_b = population.sample_fault_matrix(50, rng=32)
    sequences = generator.sample_demand_sequences(50, rng=33)
    snapshot_a = faults_a.copy()
    snapshot_b = faults_b.copy()
    back_to_back_batch(
        faults_a,
        faults_b,
        sequences,
        universe,
        universe,
        BackToBackComparator(optimistic_outputs()),
    )
    assert np.array_equal(faults_a, snapshot_a)
    assert np.array_equal(faults_b, snapshot_b)


def test_envelope_engines_agree(model):
    _space, profile, _universe, population, generator = model
    scalar = back_to_back_envelope(
        population, generator, profile, n_replications=600, rng=37, engine="scalar"
    )
    batch = back_to_back_envelope(
        population, generator, profile, n_replications=600, rng=37, engine="batch"
    )
    fields = [
        "untested_system_pfd",
        "perfect_system_pfd",
        "optimistic_system_pfd",
        "pessimistic_system_pfd",
        "shared_fault_system_pfd",
        "untested_version_pfd",
        "optimistic_version_pfd",
        "pessimistic_version_pfd",
        "shared_fault_version_pfd",
    ]
    for field in fields:
        # generous statistical tolerance: both are ~600-replication means of
        # values in [0, 0.4]; disagreement beyond this is a kernel bug
        assert abs(getattr(scalar, field) - getattr(batch, field)) < 0.03, field
    assert batch.optimistic_matches_perfect
    assert batch.ordering_holds
    assert batch.n_replications == 600


def test_envelope_auto_engine_uses_batch(model):
    _space, profile, _universe, population, generator = model
    auto = back_to_back_envelope(
        population, generator, profile, n_replications=200, rng=41
    )
    forced = back_to_back_envelope_batch(
        population, generator, profile, n_replications=200, rng=41
    )
    assert auto.pessimistic_system_pfd == forced.pessimistic_system_pfd


def test_envelope_imperfect_fixing_supported(model):
    _space, profile, _universe, population, generator = model
    fixing = ImperfectFixing(0.5)
    assert back_to_back_supported(fixing)
    partial = back_to_back_envelope_batch(
        population, generator, profile, fixing=fixing, n_replications=300, rng=43
    )
    full = back_to_back_envelope_batch(
        population, generator, profile, n_replications=300, rng=43
    )
    # weaker fixing removes fewer faults: every post-test pfd is >= the
    # perfect-fixing one (statistically; allow MC slack)
    assert (
        partial.optimistic_version_pfd >= full.optimistic_version_pfd - 0.01
    )


# ---------------------------------------------------------------------------
# execution semantics: determinism, sharding, dispatch
# ---------------------------------------------------------------------------


def test_imperfect_batch_deterministic_under_seed(model):
    _space, profile, _universe, population, generator = model
    regime = SameSuite(generator)
    kwargs = dict(
        oracle=ImperfectOracle(0.6),
        fixing=ImperfectFixing(0.5),
        n_replications=500,
        rng=47,
    )
    first = simulate_marginal_system_pfd_batch(regime, population, profile, **kwargs)
    second = simulate_marginal_system_pfd_batch(regime, population, profile, **kwargs)
    assert first.mean == second.mean
    assert first.variance == second.variance


def test_imperfect_n_jobs_invariant_at_fixed_chunking(model):
    _space, profile, _universe, population, generator = model
    regime = SameSuite(generator)
    kwargs = dict(
        oracle=ImperfectOracle(0.6),
        fixing=ImperfectFixing(0.5),
        n_replications=400,
        rng=53,
        chunk_size=100,
    )
    serial = simulate_marginal_system_pfd_batch(
        regime, population, profile, n_jobs=1, **kwargs
    )
    sharded = simulate_marginal_system_pfd_batch(
        regime, population, profile, n_jobs=2, **kwargs
    )
    assert sharded.count == serial.count
    assert sharded.mean == serial.mean
    assert sharded.variance == serial.variance


def test_envelope_n_jobs_invariant_at_fixed_chunking(model):
    _space, profile, _universe, population, generator = model
    serial = back_to_back_envelope_batch(
        population,
        generator,
        profile,
        n_replications=400,
        rng=59,
        chunk_size=100,
        n_jobs=1,
    )
    sharded = back_to_back_envelope_batch(
        population,
        generator,
        profile,
        n_replications=400,
        rng=59,
        chunk_size=100,
        n_jobs=2,
    )
    assert serial == sharded


def test_batch_supported_truth_table():
    assert batch_supported()
    assert batch_supported(oracle=ImperfectOracle(0.3))
    assert batch_supported(fixing=ImperfectFixing(0.3))
    assert batch_supported(ImperfectOracle(0.3), ImperfectFixing(0.3))
    from repro.extensions import SpecificationMistake

    mistake = SpecificationMistake((0, 2))
    assert batch_supported(mistake.blind_oracle(), mistake.blind_fixing())
    # mismatched blind spots are order-dependent: scalar only
    other = SpecificationMistake((1,))
    assert not batch_supported(mistake.blind_oracle(), other.blind_fixing())
    assert not batch_supported(mistake.blind_oracle(), ImperfectFixing(0.5))


def test_blind_pair_engines_agree(model):
    from repro.extensions import SpecificationMistake

    _space, profile, _universe, population, generator = model
    mistake = SpecificationMistake((0, 3))
    regime = SameSuite(generator)
    kwargs = dict(
        oracle=mistake.blind_oracle(),
        fixing=mistake.blind_fixing(),
        n_replications=1500,
        rng=61,
    )
    scalar = simulate_marginal_system_pfd(
        regime, population, profile, engine="scalar", **kwargs
    )
    batch = simulate_marginal_system_pfd(
        regime, population, profile, engine="batch", **kwargs
    )
    assert _overlap(scalar, batch)


def test_engine_batch_accepts_imperfect_oracle(model):
    # the old scalar fallback is gone: engine='batch' now really runs
    # imperfect oracles on the vectorized path
    _space, profile, _universe, population, generator = model
    estimator = simulate_marginal_system_pfd(
        SameSuite(generator),
        population,
        profile,
        n_replications=50,
        rng=67,
        oracle=ImperfectOracle(0.5),
        engine="batch",
    )
    assert estimator.count == 50


def test_envelope_unknown_engine_rejected(model):
    _space, profile, _universe, population, generator = model
    with pytest.raises(ModelError):
        back_to_back_envelope(
            population, generator, profile, n_replications=10, engine="gpu"
        )


def test_custom_fixing_subclass_takes_scalar_envelope_path(model):
    # a subclass may override faults_removed arbitrarily, so the batch
    # kernel must not model it from its fix_probability field alone
    class NeverFixing(ImperfectFixing):
        def faults_removed(self, version, demand, rng):
            return np.empty(0, dtype=np.int64)

    _space, profile, _universe, population, generator = model
    fixing = NeverFixing(0.9)
    assert not back_to_back_supported(fixing)
    with pytest.raises(ModelError, match="engine='batch'"):
        back_to_back_envelope(
            population,
            generator,
            profile,
            fixing=fixing,
            n_replications=10,
            engine="batch",
        )
    # auto falls back to the scalar loop, which honours the override:
    # repair never happens, so the post-test version pfd stays untested
    envelope = back_to_back_envelope(
        population, generator, profile, fixing=fixing, n_replications=50, rng=71
    )
    assert envelope.optimistic_version_pfd == pytest.approx(
        envelope.untested_version_pfd
    )


def test_back_to_back_rejects_out_of_space_demands(model):
    _space, _profile, universe, population, _generator = model
    faults = population.sample_fault_matrix(4, rng=73)
    bad = np.full((4, 3), universe.space.size, dtype=np.int64)
    with pytest.raises(ModelError, match="outside space"):
        back_to_back_batch(
            faults,
            faults,
            bad,
            universe,
            universe,
            BackToBackComparator(optimistic_outputs()),
        )
