"""Tests for DemandPartition."""

import numpy as np
import pytest

from repro.demand import DemandPartition, DemandSpace
from repro.errors import IncompatibleSpaceError, ModelError


class TestEqualBlocks:
    def test_block_count(self):
        partition = DemandPartition.equal_blocks(DemandSpace(10), 5)
        assert partition.n_blocks == 5

    def test_blocks_cover_space(self):
        partition = DemandPartition.equal_blocks(DemandSpace(10), 3)
        covered = np.concatenate(partition.blocks())
        np.testing.assert_array_equal(np.sort(covered), np.arange(10))

    def test_uneven_split_sizes(self):
        partition = DemandPartition.equal_blocks(DemandSpace(10), 3)
        sizes = sorted(block.size for block in partition.blocks())
        assert sizes == [3, 3, 4]

    def test_single_block(self):
        partition = DemandPartition.equal_blocks(DemandSpace(4), 1)
        assert partition.block(0).size == 4

    def test_invalid_block_count(self):
        with pytest.raises(ModelError):
            DemandPartition.equal_blocks(DemandSpace(4), 0)
        with pytest.raises(ModelError):
            DemandPartition.equal_blocks(DemandSpace(4), 5)


class TestFromBlocks:
    def test_round_trip(self):
        space = DemandSpace(5)
        partition = DemandPartition.from_blocks(space, [[0, 1], [2], [3, 4]])
        assert partition.block_of(0) == 0
        assert partition.block_of(2) == 1
        assert partition.block_of(4) == 2

    def test_overlap_rejected(self):
        with pytest.raises(ModelError):
            DemandPartition.from_blocks(DemandSpace(4), [[0, 1], [1, 2, 3]])

    def test_uncovered_rejected(self):
        with pytest.raises(ModelError):
            DemandPartition.from_blocks(DemandSpace(4), [[0, 1], [2]])


class TestValidation:
    def test_wrong_label_length(self):
        with pytest.raises(IncompatibleSpaceError):
            DemandPartition(DemandSpace(4), np.array([0, 0, 1]))

    def test_negative_labels_rejected(self):
        with pytest.raises(ModelError):
            DemandPartition(DemandSpace(3), np.array([0, -1, 1]))

    def test_gap_in_labels_rejected(self):
        with pytest.raises(ModelError):
            DemandPartition(DemandSpace(3), np.array([0, 0, 2]))

    def test_block_out_of_range(self):
        partition = DemandPartition.equal_blocks(DemandSpace(4), 2)
        with pytest.raises(ModelError):
            partition.block(2)
