"""Tests for UsageProfile and the profile factories."""

import numpy as np
import pytest

from repro.demand import (
    DemandSpace,
    UsageProfile,
    custom_profile,
    geometric_profile,
    mixture_profile,
    uniform_profile,
    zipf_profile,
)
from repro.errors import IncompatibleSpaceError, ProbabilityError


class TestConstruction:
    def test_valid_profile(self, space):
        probs = np.full(10, 0.1)
        profile = UsageProfile(space, probs)
        assert profile.probability(0) == pytest.approx(0.1)

    def test_wrong_length_rejected(self, space):
        with pytest.raises(IncompatibleSpaceError):
            UsageProfile(space, np.full(9, 1.0 / 9))

    def test_negative_rejected(self, space):
        probs = np.full(10, 0.1)
        probs[0] = -0.1
        probs[1] = 0.3
        with pytest.raises(ProbabilityError):
            UsageProfile(space, probs)

    def test_not_summing_to_one_rejected(self, space):
        with pytest.raises(ProbabilityError):
            UsageProfile(space, np.full(10, 0.2))

    def test_nan_rejected(self, space):
        probs = np.full(10, 0.1)
        probs[0] = np.nan
        with pytest.raises(ProbabilityError):
            UsageProfile(space, probs)

    def test_normalised_constructor(self, space):
        profile = UsageProfile.normalised(space, np.arange(10))
        assert profile.probabilities.sum() == pytest.approx(1.0)

    def test_normalised_zero_weights_rejected(self, space):
        with pytest.raises(ProbabilityError):
            UsageProfile.normalised(space, np.zeros(10))


class TestQueries:
    def test_mass_of(self, profile):
        assert profile.mass_of([0, 1, 2]) == pytest.approx(0.3)

    def test_mass_of_duplicates_counted_once(self, profile):
        assert profile.mass_of([3, 3, 3]) == pytest.approx(0.1)

    def test_expectation(self, profile):
        values = np.arange(10, dtype=float)
        assert profile.expectation(values) == pytest.approx(4.5)

    def test_expectation_wrong_length(self, profile):
        with pytest.raises(IncompatibleSpaceError):
            profile.expectation(np.ones(3))

    def test_variance_constant_is_zero(self, profile):
        assert profile.variance(np.full(10, 0.7)) == pytest.approx(0.0)

    def test_variance_known_value(self, profile):
        values = np.zeros(10)
        values[0] = 1.0
        # Bernoulli(0.1): var = 0.09
        assert profile.variance(values) == pytest.approx(0.09)

    def test_covariance_of_identical_is_variance(self, skewed_profile):
        values = np.arange(10, dtype=float)
        assert skewed_profile.covariance(values, values) == pytest.approx(
            skewed_profile.variance(values)
        )

    def test_covariance_sign_flip(self, profile):
        up = np.arange(10, dtype=float)
        assert profile.covariance(up, -up) == pytest.approx(-profile.variance(up))

    def test_support(self, space):
        probs = np.zeros(10)
        probs[2] = 0.5
        probs[7] = 0.5
        profile = UsageProfile(space, probs)
        np.testing.assert_array_equal(profile.support, [2, 7])


class TestSampling:
    def test_scalar_sample_in_range(self, profile, rng):
        for _ in range(20):
            assert 0 <= profile.sample(rng) < 10

    def test_vector_sample_shape(self, profile, rng):
        out = profile.sample(rng, size=100)
        assert out.shape == (100,)
        assert out.dtype == np.int64

    def test_degenerate_profile_always_same(self, space, rng):
        probs = np.zeros(10)
        probs[4] = 1.0
        profile = UsageProfile(space, probs)
        assert set(profile.sample(rng, size=50).tolist()) == {4}

    def test_empirical_frequencies_match(self, space):
        probs = np.zeros(10)
        probs[0] = 0.8
        probs[9] = 0.2
        profile = UsageProfile(space, probs)
        draws = profile.sample(np.random.default_rng(0), size=20000)
        frequency = np.mean(draws == 0)
        assert frequency == pytest.approx(0.8, abs=0.02)


class TestRestrict:
    def test_restrict_renormalises(self, profile):
        restricted = profile.restrict([0, 1])
        assert restricted.probability(0) == pytest.approx(0.5)
        assert restricted.probability(5) == 0.0

    def test_restrict_empty_mass_rejected(self, space):
        probs = np.zeros(10)
        probs[0] = 1.0
        profile = UsageProfile(space, probs)
        with pytest.raises(ProbabilityError):
            profile.restrict([5])


class TestFactories:
    def test_uniform(self):
        profile = uniform_profile(DemandSpace(4))
        np.testing.assert_allclose(profile.probabilities, 0.25)

    def test_zipf_decreasing(self):
        profile = zipf_profile(DemandSpace(5), exponent=1.0)
        assert np.all(np.diff(profile.probabilities) < 0)

    def test_zipf_zero_exponent_is_uniform(self):
        profile = zipf_profile(DemandSpace(5), exponent=0.0)
        np.testing.assert_allclose(profile.probabilities, 0.2)

    def test_zipf_negative_exponent_rejected(self):
        with pytest.raises(ProbabilityError):
            zipf_profile(DemandSpace(5), exponent=-1.0)

    def test_geometric_ratio_one_is_uniform(self):
        profile = geometric_profile(DemandSpace(5), ratio=1.0)
        np.testing.assert_allclose(profile.probabilities, 0.2)

    def test_geometric_invalid_ratio(self):
        with pytest.raises(ProbabilityError):
            geometric_profile(DemandSpace(5), ratio=0.0)
        with pytest.raises(ProbabilityError):
            geometric_profile(DemandSpace(5), ratio=1.5)

    def test_custom(self):
        profile = custom_profile(DemandSpace(3), [1, 1, 2])
        assert profile.probability(2) == pytest.approx(0.5)

    def test_mixture(self):
        space = DemandSpace(4)
        a = custom_profile(space, [1, 0, 0, 0])
        b = custom_profile(space, [0, 0, 0, 1])
        mixed = mixture_profile([a, b], [0.25, 0.75])
        assert mixed.probability(0) == pytest.approx(0.25)
        assert mixed.probability(3) == pytest.approx(0.75)

    def test_mixture_weight_validation(self):
        space = DemandSpace(2)
        a = uniform_profile(space)
        with pytest.raises(ProbabilityError):
            mixture_profile([a], [1.0, 2.0])
        with pytest.raises(ProbabilityError):
            mixture_profile([a], [-1.0])
        with pytest.raises(ProbabilityError):
            mixture_profile([], [])

    def test_mixture_space_mismatch(self):
        a = uniform_profile(DemandSpace(2))
        b = uniform_profile(DemandSpace(3))
        with pytest.raises(IncompatibleSpaceError):
            mixture_profile([a, b], [0.5, 0.5])
