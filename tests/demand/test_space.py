"""Tests for DemandSpace."""

import numpy as np
import pytest

from repro.demand import DemandSpace
from repro.errors import IncompatibleSpaceError, ModelError


class TestConstruction:
    def test_size(self):
        assert len(DemandSpace(7)) == 7

    @pytest.mark.parametrize("bad", [0, -1, -100])
    def test_non_positive_size_rejected(self, bad):
        with pytest.raises(ModelError):
            DemandSpace(bad)


class TestMembership:
    def test_contains_valid(self):
        space = DemandSpace(5)
        assert 0 in space
        assert 4 in space

    def test_excludes_out_of_range(self):
        space = DemandSpace(5)
        assert 5 not in space
        assert -1 not in space

    def test_non_integer_not_contained(self):
        assert "x" not in DemandSpace(5)
        assert 1.5 not in DemandSpace(5)

    def test_numpy_integer_contained(self):
        assert np.int64(3) in DemandSpace(5)

    def test_iteration(self):
        assert list(DemandSpace(3)) == [0, 1, 2]


class TestValidation:
    def test_validate_demand_passes(self):
        assert DemandSpace(4).validate_demand(2) == 2

    def test_validate_demand_rejects(self):
        with pytest.raises(IncompatibleSpaceError):
            DemandSpace(4).validate_demand(4)

    def test_validate_demands_canonicalises(self):
        out = DemandSpace(6).validate_demands([5, 1, 5])
        np.testing.assert_array_equal(out, [1, 5])

    def test_validate_demands_rejects_out_of_range(self):
        with pytest.raises(IncompatibleSpaceError):
            DemandSpace(4).validate_demands([0, 9])

    def test_validate_empty(self):
        assert DemandSpace(4).validate_demands([]).size == 0


class TestIndicator:
    def test_indicator_marks_members(self):
        mask = DemandSpace(5).indicator([1, 3])
        np.testing.assert_array_equal(mask, [False, True, False, True, False])

    def test_indicator_empty(self):
        assert not DemandSpace(5).indicator([]).any()


class TestRequireSame:
    def test_same_size_passes(self):
        DemandSpace(4).require_same(DemandSpace(4))

    def test_different_size_raises(self):
        with pytest.raises(IncompatibleSpaceError):
            DemandSpace(4).require_same(DemandSpace(5))

    def test_non_space_raises(self):
        with pytest.raises(IncompatibleSpaceError):
            DemandSpace(4).require_same("not a space")


class TestDemandsProperty:
    def test_demands_array(self):
        np.testing.assert_array_equal(DemandSpace(3).demands, [0, 1, 2])
