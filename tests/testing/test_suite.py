"""Tests for TestSuite."""

import numpy as np
import pytest

from repro.demand import DemandSpace
from repro.errors import IncompatibleSpaceError, ModelError
from repro.testing import TestSuite


class TestConstruction:
    def test_of(self, space):
        suite = TestSuite.of(space, [3, 1, 3])
        np.testing.assert_array_equal(suite.demands, [3, 1, 3])

    def test_empty(self, space):
        suite = TestSuite.empty(space)
        assert len(suite) == 0
        assert suite.n_unique == 0

    def test_out_of_range_rejected(self, space):
        with pytest.raises(ModelError):
            TestSuite.of(space, [10])

    def test_order_preserved(self, space):
        suite = TestSuite.of(space, [5, 2, 9])
        assert list(suite) == [5, 2, 9]


class TestSetView:
    def test_unique_demands_sorted_dedup(self, space):
        suite = TestSuite.of(space, [4, 2, 4, 2, 7])
        np.testing.assert_array_equal(suite.unique_demands, [2, 4, 7])
        assert suite.n_unique == 3
        assert len(suite) == 5

    def test_contains(self, space):
        suite = TestSuite.of(space, [1, 5])
        assert suite.contains(5)
        assert not suite.contains(2)

    def test_mask(self, space):
        suite = TestSuite.of(space, [0, 9])
        mask = suite.mask()
        assert mask[0] and mask[9]
        assert mask.sum() == 2


class TestEqualityHash:
    def test_equal_same_order(self, space):
        assert TestSuite.of(space, [1, 2]) == TestSuite.of(space, [1, 2])

    def test_order_matters(self, space):
        assert TestSuite.of(space, [1, 2]) != TestSuite.of(space, [2, 1])

    def test_hashable(self, space):
        suites = {TestSuite.of(space, [1]), TestSuite.of(space, [1])}
        assert len(suites) == 1


class TestOperations:
    def test_concatenate(self, space):
        merged = TestSuite.of(space, [1, 2]).concatenate(TestSuite.of(space, [2, 3]))
        assert list(merged) == [1, 2, 2, 3]
        np.testing.assert_array_equal(merged.unique_demands, [1, 2, 3])

    def test_concatenate_space_mismatch(self, space):
        other = TestSuite.of(DemandSpace(5), [1])
        with pytest.raises(IncompatibleSpaceError):
            TestSuite.of(space, [1]).concatenate(other)

    def test_prefix(self, space):
        suite = TestSuite.of(space, [4, 5, 6])
        assert list(suite.prefix(2)) == [4, 5]
        assert list(suite.prefix(0)) == []
        assert list(suite.prefix(99)) == [4, 5, 6]

    def test_prefix_negative_rejected(self, space):
        with pytest.raises(ModelError):
            TestSuite.of(space, [1]).prefix(-1)
