"""Tests for the suite generators (the measures M)."""

import numpy as np
import pytest

from repro.demand import (
    DemandPartition,
    DemandSpace,
    UsageProfile,
    custom_profile,
    uniform_profile,
)
from repro.errors import ModelError, NotEnumerableError, ProbabilityError
from repro.testing import (
    EnumerableSuiteGenerator,
    ExhaustiveSuiteGenerator,
    OperationalSuiteGenerator,
    PartitionCoverageGenerator,
    TestSuite,
    WeightedDebugGenerator,
    WithoutReplacementGenerator,
)


class TestOperational:
    def test_size(self, profile, rng):
        generator = OperationalSuiteGenerator(profile, 6)
        suite = generator.sample(rng)
        assert len(suite) == 6

    def test_zero_size(self, profile, rng):
        generator = OperationalSuiteGenerator(profile, 0)
        assert len(generator.sample(rng)) == 0

    def test_negative_size_rejected(self, profile):
        with pytest.raises(ModelError):
            OperationalSuiteGenerator(profile, -1)

    def test_draws_follow_profile(self, space):
        profile = custom_profile(space, [10, 0, 0, 0, 0, 0, 0, 0, 0, 0])
        generator = OperationalSuiteGenerator(profile, 5)
        suite = generator.sample(np.random.default_rng(0))
        assert set(suite) == {0}

    def test_with_size(self, profile):
        generator = OperationalSuiteGenerator(profile, 3)
        resized = generator.with_size(7)
        assert resized.size == 7
        assert resized.profile is profile

    def test_not_enumerable(self, operational_generator):
        with pytest.raises(NotEnumerableError):
            list(operational_generator.enumerate())

    def test_sample_many_independent(self, operational_generator):
        suites = operational_generator.sample_many(10, np.random.default_rng(1))
        assert len({tuple(s.demands.tolist()) for s in suites}) > 1


class TestWithoutReplacement:
    def test_distinct_demands(self, profile, rng):
        generator = WithoutReplacementGenerator(profile, 8)
        suite = generator.sample(rng)
        assert suite.n_unique == 8

    def test_size_cap(self, profile):
        with pytest.raises(ModelError):
            WithoutReplacementGenerator(profile, 11)

    def test_support_cap(self, space):
        profile = custom_profile(space, [1, 1, 0, 0, 0, 0, 0, 0, 0, 0])
        with pytest.raises(ModelError):
            WithoutReplacementGenerator(profile, 3)


class TestPartitionCoverage:
    def test_every_block_covered(self, space, profile, rng):
        partition = DemandPartition.equal_blocks(space, 5)
        generator = PartitionCoverageGenerator(partition, profile)
        suite = generator.sample(rng)
        blocks_hit = {partition.block_of(int(d)) for d in suite}
        assert blocks_hit == set(range(5))

    def test_per_block(self, space, profile, rng):
        partition = DemandPartition.equal_blocks(space, 2)
        generator = PartitionCoverageGenerator(partition, profile, per_block=3)
        assert len(generator.sample(rng)) == 6

    def test_per_block_validation(self, space, profile):
        partition = DemandPartition.equal_blocks(space, 2)
        with pytest.raises(ModelError):
            PartitionCoverageGenerator(partition, profile, per_block=0)


class TestWeightedDebug:
    def test_biased_towards_boosts(self, space):
        profile = uniform_profile(space)
        generator = WeightedDebugGenerator.biased_towards(
            profile, [0], boost=1000.0, size=50
        )
        suite = generator.sample(np.random.default_rng(0))
        assert np.mean(suite.demands == 0) > 0.9

    def test_zero_boost_rejected(self, profile):
        with pytest.raises(ProbabilityError):
            WeightedDebugGenerator.biased_towards(profile, [0], boost=0.0, size=5)


class TestExhaustive:
    def test_covers_everything(self, space, rng):
        generator = ExhaustiveSuiteGenerator(space)
        suite = generator.sample(rng)
        assert suite.n_unique == 10

    def test_enumerable(self, space):
        generator = ExhaustiveSuiteGenerator(space)
        pairs = list(generator.enumerate())
        assert len(pairs) == 1
        assert pairs[0][1] == 1.0


class TestEnumerable:
    def test_enumerate_matches_input(self, enumerable_generator):
        pairs = list(enumerable_generator.enumerate())
        assert len(pairs) == 3
        assert sum(p for _, p in pairs) == pytest.approx(1.0)

    def test_sampling_frequencies(self, enumerable_generator):
        rng = np.random.default_rng(9)
        counts = {}
        n = 5000
        for _ in range(n):
            suite = enumerable_generator.sample(rng)
            key = tuple(suite.demands.tolist())
            counts[key] = counts.get(key, 0) + 1
        assert counts[(0,)] / n == pytest.approx(0.5, abs=0.03)
        assert counts[(2, 4)] / n == pytest.approx(0.3, abs=0.03)

    def test_probability_validation(self, space):
        suite = TestSuite.of(space, [0])
        with pytest.raises(ProbabilityError):
            EnumerableSuiteGenerator(space, [suite], [0.5])
        with pytest.raises(ModelError):
            EnumerableSuiteGenerator(space, [], [])

    def test_uniform_over(self, space):
        suites = [TestSuite.of(space, [0]), TestSuite.of(space, [1])]
        generator = EnumerableSuiteGenerator.uniform_over(space, suites)
        for _, probability in generator.enumerate():
            assert probability == pytest.approx(0.5)

    def test_all_subsets(self, space):
        profile = uniform_profile(space)
        generator = EnumerableSuiteGenerator.all_subsets(profile, 2)
        pairs = list(generator.enumerate())
        assert len(pairs) == 45  # C(10, 2)
        assert sum(p for _, p in pairs) == pytest.approx(1.0)
        for suite, _ in pairs:
            assert suite.n_unique == 2
