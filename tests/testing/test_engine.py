"""Tests for the testing engine — the heart of the paper's §3 mechanics."""

import numpy as np
import pytest

from repro.testing import (
    BackToBackComparator,
    ImperfectFixing,
    ImperfectOracle,
    PerfectOracle,
    TestSuite,
    apply_testing,
    back_to_back_testing,
)
from repro.versions import (
    Version,
    optimistic_outputs,
    pessimistic_outputs,
    shared_fault_outputs,
)


class TestPerfectTesting:
    def test_triggered_faults_removed(self, universe, space):
        version = Version.with_all_faults(universe)
        suite = TestSuite.of(space, [0])  # triggers fault 0 only
        outcome = apply_testing(version, suite)
        np.testing.assert_array_equal(outcome.after.fault_ids, [1, 2])

    def test_fixing_repairs_whole_region(self, universe, space):
        """The paper's point: demands outside the suite get repaired too."""
        version = Version(universe, np.array([1]))  # fails on {2,3,4}
        suite = TestSuite.of(space, [2])
        outcome = apply_testing(version, suite)
        assert outcome.after.is_correct
        assert outcome.demands_repaired == 3  # 2, 3 and 4 all fixed
        assert outcome.detected_failures == 1

    def test_miss_changes_nothing(self, universe, space):
        version = Version(universe, np.array([0]))
        suite = TestSuite.of(space, [5, 9])
        outcome = apply_testing(version, suite)
        assert outcome.after == version
        assert outcome.detected_failures == 0
        assert outcome.faults_removed == 0

    def test_repeated_demand_counts_twice(self, universe, space):
        version = Version(universe, np.array([0]))
        suite = TestSuite.of(space, [0, 0])
        outcome = apply_testing(version, suite)
        assert outcome.detected_failures == 2
        assert outcome.faults_removed == 1

    def test_score_monotonicity(self, universe, space, rng):
        """The fundamental inequality: scores never increase under testing."""
        for _ in range(50):
            fault_ids = np.flatnonzero(rng.random(3) < 0.5)
            version = Version(universe, fault_ids)
            demands = rng.integers(0, 10, size=rng.integers(0, 6))
            suite = TestSuite(space, demands)
            outcome = apply_testing(version, suite)
            assert np.all(
                outcome.after.failure_mask <= version.failure_mask
            )

    def test_empty_suite(self, universe, space):
        version = Version.with_all_faults(universe)
        outcome = apply_testing(version, TestSuite.empty(space))
        assert outcome.after == version

    def test_exhaustive_suite_fixes_everything(self, universe, space):
        version = Version.with_all_faults(universe)
        suite = TestSuite(space, space.demands)
        outcome = apply_testing(version, suite)
        assert outcome.after.is_correct


class TestImperfectTesting:
    def test_perfect_parameters_match_fast_path(self, universe, space, rng):
        version = Version.with_all_faults(universe)
        suite = TestSuite.of(space, [0, 2, 5])
        fast = apply_testing(version, suite)
        slow = apply_testing(
            version,
            suite,
            ImperfectOracle(1.0),
            ImperfectFixing(1.0),
            rng=rng,
        )
        assert fast.after == slow.after
        assert fast.detected_failures == slow.detected_failures

    def test_dead_oracle_changes_nothing(self, universe, space, rng):
        version = Version.with_all_faults(universe)
        suite = TestSuite(space, space.demands)
        outcome = apply_testing(version, suite, ImperfectOracle(0.0), rng=rng)
        assert outcome.after == version
        assert outcome.detected_failures == 0

    def test_useless_fixing_detects_but_keeps_faults(self, universe, space, rng):
        version = Version(universe, np.array([0]))
        suite = TestSuite.of(space, [0, 1])
        outcome = apply_testing(
            version, suite, PerfectOracle(), ImperfectFixing(0.0), rng=rng
        )
        assert outcome.after == version
        assert outcome.detected_failures == 2  # both demands kept failing

    def test_later_demand_can_catch_missed_fault(self, universe, space):
        """With detection probability between 0 and 1, a fault missed on one
        demand of its region may be caught on another."""
        version = Version(universe, np.array([1]))  # region {2,3,4}
        suite = TestSuite.of(space, [2, 3, 4])
        caught = 0
        trials = 400
        for i in range(trials):
            outcome = apply_testing(
                version,
                suite,
                ImperfectOracle(0.5),
                rng=np.random.default_rng(i),
            )
            if outcome.after.is_correct:
                caught += 1
        # P(caught) = 1 - 0.5^3 = 0.875
        assert caught / trials == pytest.approx(0.875, abs=0.06)

    def test_monotonicity_under_imperfection(self, universe, space, rng):
        version = Version.with_all_faults(universe)
        suite = TestSuite(space, space.demands)
        outcome = apply_testing(
            version,
            suite,
            ImperfectOracle(0.5),
            ImperfectFixing(0.5),
            rng=rng,
        )
        assert np.all(outcome.after.failure_mask <= version.failure_mask)


class TestBackToBack:
    def test_single_failure_fixed(self, universe, space):
        comparator = BackToBackComparator(pessimistic_outputs())
        failing = Version(universe, np.array([0]))
        correct = Version.correct(universe)
        outcome_a, outcome_b = back_to_back_testing(
            failing, correct, TestSuite.of(space, [0]), comparator
        )
        assert outcome_a.after.is_correct
        assert outcome_b.after.is_correct

    def test_pessimistic_coincident_failure_silent(self, universe, space):
        comparator = BackToBackComparator(pessimistic_outputs())
        via_f1 = Version(universe, np.array([1]))
        via_f2 = Version(universe, np.array([2]))
        outcome_a, outcome_b = back_to_back_testing(
            via_f1, via_f2, TestSuite.of(space, [4]), comparator
        )
        assert outcome_a.after == via_f1
        assert outcome_b.after == via_f2

    def test_optimistic_coincident_failure_fixes_both(self, universe, space):
        comparator = BackToBackComparator(optimistic_outputs())
        via_f1 = Version(universe, np.array([1]))
        via_f2 = Version(universe, np.array([2]))
        outcome_a, outcome_b = back_to_back_testing(
            via_f1, via_f2, TestSuite.of(space, [4]), comparator
        )
        assert outcome_a.after.is_correct
        assert outcome_b.after.is_correct

    def test_optimistic_equals_perfect_oracle(self, universe, space, rng):
        """§4.2: optimistic back-to-back = perfect oracle, per realisation."""
        comparator = BackToBackComparator(optimistic_outputs())
        for _ in range(40):
            a = Version(universe, np.flatnonzero(rng.random(3) < 0.6))
            b = Version(universe, np.flatnonzero(rng.random(3) < 0.6))
            suite = TestSuite(space, rng.integers(0, 10, size=4))
            b2b_a, b2b_b = back_to_back_testing(a, b, suite, comparator)
            assert b2b_a.after == apply_testing(a, suite).after
            assert b2b_b.after == apply_testing(b, suite).after

    def test_state_evolution_order_matters(self, universe, space):
        """Fixing earlier in the suite unlocks detection later: after the
        shared-cause failure is silent, removing the other channel's other
        fault first changes nothing — but a single-failure demand earlier in
        the suite does unlock the coincident demand."""
        comparator = BackToBackComparator(shared_fault_outputs())
        a = Version(universe, np.array([1]))       # fails {2,3,4}
        b = Version(universe, np.array([1, 2]))    # fails {2,3,4,5}
        # demand 3: both fail via fault 1 (same cause for a; b's causes are
        # {1} too since fault 2 does not cover 3) -> silent
        silent_a, silent_b = back_to_back_testing(
            a, b, TestSuite.of(space, [3]), comparator
        )
        assert silent_a.after == a
        assert silent_b.after == b
        # demand 5 first: only b fails -> fault 2 removed from b; then
        # demand 4: a fails via {1}, b via {1} -> identical -> silent
        ordered_a, ordered_b = back_to_back_testing(
            a, b, TestSuite.of(space, [5, 4]), comparator
        )
        assert ordered_b.after.fault_ids.tolist() == [1]
        assert ordered_a.after == a

    def test_outcome_bookkeeping(self, universe, space):
        comparator = BackToBackComparator(optimistic_outputs())
        a = Version(universe, np.array([0]))
        b = Version.correct(universe)
        outcome_a, outcome_b = back_to_back_testing(
            a, b, TestSuite.of(space, [0, 1]), comparator
        )
        assert outcome_a.detected_failures == 1  # fixed after first hit
        assert outcome_a.faults_removed == 1
        assert outcome_b.detected_failures == 0
