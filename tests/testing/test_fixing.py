"""Tests for the fixing policies."""

import numpy as np
import pytest

from repro.errors import ProbabilityError
from repro.testing import ImperfectFixing, PerfectFixing
from repro.versions import Version


class TestPerfectFixing:
    def test_removes_all_causes(self, universe, rng):
        policy = PerfectFixing()
        version = Version.with_all_faults(universe)
        removed = policy.faults_removed(version, 4, rng)
        np.testing.assert_array_equal(removed, [1, 2])

    def test_nothing_to_remove(self, universe, rng):
        policy = PerfectFixing()
        version = Version.correct(universe)
        assert policy.faults_removed(version, 4, rng).size == 0


class TestImperfectFixing:
    def test_validation(self):
        with pytest.raises(ProbabilityError):
            ImperfectFixing(-0.5)
        with pytest.raises(ProbabilityError):
            ImperfectFixing(2.0)

    def test_probability_one_is_perfect(self, universe, rng):
        policy = ImperfectFixing(1.0)
        version = Version.with_all_faults(universe)
        np.testing.assert_array_equal(policy.faults_removed(version, 4, rng), [1, 2])

    def test_probability_zero_removes_nothing(self, universe, rng):
        policy = ImperfectFixing(0.0)
        version = Version.with_all_faults(universe)
        assert policy.faults_removed(version, 4, rng).size == 0

    def test_removal_rate(self, universe):
        policy = ImperfectFixing(0.4)
        version = Version.with_all_faults(universe)
        rng = np.random.default_rng(11)
        total = sum(
            policy.faults_removed(version, 4, rng).size for _ in range(5000)
        )
        # 2 candidate faults per call
        assert total / (5000 * 2) == pytest.approx(0.4, abs=0.03)

    def test_only_causes_removed(self, universe, rng):
        policy = ImperfectFixing(1.0)
        version = Version.with_all_faults(universe)
        removed = policy.faults_removed(version, 0, rng)
        np.testing.assert_array_equal(removed, [0])
