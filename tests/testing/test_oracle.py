"""Tests for oracles and the back-to-back comparator."""

import numpy as np
import pytest

from repro.errors import ProbabilityError
from repro.testing import BackToBackComparator, ImperfectOracle, PerfectOracle
from repro.versions import (
    Version,
    optimistic_outputs,
    pessimistic_outputs,
    shared_fault_outputs,
)


class TestPerfectOracle:
    def test_always_detects(self, universe, rng):
        oracle = PerfectOracle()
        version = Version(universe, np.array([0]))
        assert all(oracle.detects(version, 0, rng) for _ in range(10))


class TestImperfectOracle:
    def test_validation(self):
        with pytest.raises(ProbabilityError):
            ImperfectOracle(-0.1)
        with pytest.raises(ProbabilityError):
            ImperfectOracle(1.1)

    def test_extremes(self, universe, rng):
        version = Version(universe, np.array([0]))
        always = ImperfectOracle(1.0)
        never = ImperfectOracle(0.0)
        assert all(always.detects(version, 0, rng) for _ in range(10))
        assert not any(never.detects(version, 0, rng) for _ in range(10))

    def test_detection_rate(self, universe):
        oracle = ImperfectOracle(0.3)
        version = Version(universe, np.array([0]))
        rng = np.random.default_rng(7)
        hits = sum(oracle.detects(version, 0, rng) for _ in range(5000))
        assert hits / 5000 == pytest.approx(0.3, abs=0.03)


class TestBackToBackComparator:
    def test_detected_failures_requires_mismatch(self, universe):
        comparator = BackToBackComparator(pessimistic_outputs())
        via_f1 = Version(universe, np.array([1]))
        via_f2 = Version(universe, np.array([2]))
        # both fail on demand 4, pessimistic: silent
        assert comparator.detected_failures(via_f1, via_f2, 4) == (False, False)

    def test_single_failure_detected(self, universe):
        comparator = BackToBackComparator(pessimistic_outputs())
        failing = Version(universe, np.array([0]))
        correct = Version.correct(universe)
        assert comparator.detected_failures(failing, correct, 0) == (True, False)
        assert comparator.detected_failures(correct, failing, 0) == (False, True)

    def test_optimistic_coincident_detects_both(self, universe):
        comparator = BackToBackComparator(optimistic_outputs())
        via_f1 = Version(universe, np.array([1]))
        via_f2 = Version(universe, np.array([2]))
        assert comparator.detected_failures(via_f1, via_f2, 4) == (True, True)

    def test_shared_fault_coincident_same_cause_silent(self, universe):
        comparator = BackToBackComparator(shared_fault_outputs())
        a = Version(universe, np.array([1]))
        b = Version(universe, np.array([1]))
        assert comparator.detected_failures(a, b, 3) == (False, False)

    def test_no_failures_nothing_detected(self, universe):
        comparator = BackToBackComparator(optimistic_outputs())
        correct = Version.correct(universe)
        assert comparator.detected_failures(correct, correct, 0) == (False, False)
