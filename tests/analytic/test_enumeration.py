"""Tests for the brute-force enumeration engine."""

import numpy as np
import pytest

from repro.analytic import (
    exact_joint_per_demand,
    exact_marginal_system_pfd,
    exact_zeta,
)
from repro.core import IndependentSuites, SameSuite
from repro.errors import NotEnumerableError
from repro.testing import OperationalSuiteGenerator


class TestExactZeta:
    def test_matches_population_path(self, finite_population, enumerable_generator):
        """Enumerated zeta must equal the per-suite tested_difficulty
        averaged under M (two different code paths)."""
        zeta = exact_zeta(finite_population, enumerable_generator)
        expected = np.zeros(10)
        for suite, probability in enumerable_generator.enumerate():
            expected += probability * finite_population.tested_difficulty(
                suite.unique_demands
            )
        np.testing.assert_allclose(zeta, expected, atol=1e-12)

    def test_zeta_below_theta(self, finite_population, enumerable_generator):
        zeta = exact_zeta(finite_population, enumerable_generator)
        assert np.all(zeta <= finite_population.difficulty() + 1e-15)

    def test_requires_enumerable(self, finite_population, profile):
        generator = OperationalSuiteGenerator(profile, 3)
        with pytest.raises(NotEnumerableError):
            exact_zeta(finite_population, generator)


class TestExactJoint:
    def test_independent_factorises(self, finite_population, enumerable_generator):
        joint = exact_joint_per_demand(
            IndependentSuites(enumerable_generator), finite_population
        )
        zeta = exact_zeta(finite_population, enumerable_generator)
        np.testing.assert_allclose(joint, zeta**2, atol=1e-12)

    def test_same_suite_literal_triple_sum(
        self, finite_population, enumerable_generator
    ):
        """Re-derive the same-suite joint with an explicit python loop over
        (version_a, version_b, suite) and compare."""
        from repro.testing import apply_testing

        joint = exact_joint_per_demand(
            SameSuite(enumerable_generator), finite_population
        )
        expected = np.zeros(10)
        for version_a, pa in finite_population.enumerate():
            for version_b, pb in finite_population.enumerate():
                for suite, pt in enumerable_generator.enumerate():
                    mask_a = apply_testing(version_a, suite).after.failure_mask
                    mask_b = apply_testing(version_b, suite).after.failure_mask
                    expected += pa * pb * pt * (mask_a & mask_b)
        np.testing.assert_allclose(joint, expected, atol=1e-12)

    def test_unknown_regime(self, finite_population):
        with pytest.raises(TypeError):
            exact_joint_per_demand(object(), finite_population)


class TestExactMarginal:
    def test_marginal_integrates_joint(
        self, finite_population, enumerable_generator, profile
    ):
        regime = SameSuite(enumerable_generator)
        joint = exact_joint_per_demand(regime, finite_population)
        marginal = exact_marginal_system_pfd(regime, finite_population, profile)
        assert marginal == pytest.approx(profile.expectation(joint))
