"""Tests for the weighted-moment helpers."""

import numpy as np
import pytest

from repro.analytic import weighted_cov, weighted_mean, weighted_var
from repro.analytic.moments import validate_weights
from repro.errors import ProbabilityError


UNIFORM4 = np.full(4, 0.25)


class TestValidateWeights:
    def test_valid(self):
        out = validate_weights(UNIFORM4)
        assert out.dtype == np.float64

    def test_negative_rejected(self):
        with pytest.raises(ProbabilityError):
            validate_weights(np.array([0.5, 0.6, -0.1]))

    def test_sum_rejected(self):
        with pytest.raises(ProbabilityError):
            validate_weights(np.array([0.5, 0.6]))

    def test_shape_rejected(self):
        with pytest.raises(ProbabilityError):
            validate_weights(np.eye(2) / 2)


class TestWeightedMean:
    def test_uniform(self):
        assert weighted_mean(np.array([1.0, 2, 3, 4]), UNIFORM4) == pytest.approx(2.5)

    def test_point_mass(self):
        weights = np.array([0.0, 1.0, 0.0])
        assert weighted_mean(np.array([5.0, 7.0, 9.0]), weights) == 7.0

    def test_shape_mismatch(self):
        with pytest.raises(ProbabilityError):
            weighted_mean(np.ones(3), UNIFORM4)


class TestWeightedVar:
    def test_constant_zero(self):
        assert weighted_var(np.full(4, 3.3), UNIFORM4) == 0.0

    def test_known_value(self):
        values = np.array([0.0, 1.0])
        weights = np.array([0.5, 0.5])
        assert weighted_var(values, weights) == pytest.approx(0.25)

    def test_never_negative(self):
        rng = np.random.default_rng(1)
        for _ in range(50):
            weights = rng.random(6)
            weights /= weights.sum()
            assert weighted_var(rng.random(6), weights) >= 0.0


class TestWeightedCov:
    def test_self_cov_is_var(self):
        rng = np.random.default_rng(2)
        values = rng.random(5)
        weights = np.full(5, 0.2)
        assert weighted_cov(values, values, weights) == pytest.approx(
            weighted_var(values, weights)
        )

    def test_anti_correlated(self):
        values = np.array([0.0, 1.0])
        weights = np.array([0.5, 0.5])
        assert weighted_cov(values, 1 - values, weights) == pytest.approx(-0.25)

    def test_independent_of_shift(self):
        rng = np.random.default_rng(3)
        u = rng.random(6)
        v = rng.random(6)
        weights = np.full(6, 1 / 6)
        assert weighted_cov(u, v, weights) == pytest.approx(
            weighted_cov(u + 10, v - 3, weights)
        )
