"""Tests for the inclusion-exclusion closed forms."""

import numpy as np
import pytest

from repro.analytic import BernoulliExactEngine, suite_miss_probability
from repro.demand import DemandSpace, uniform_profile, zipf_profile
from repro.errors import ModelError
from repro.faults import FaultUniverse
from repro.populations import BernoulliFaultPopulation
from repro.testing import OperationalSuiteGenerator


@pytest.fixture
def engine(universe, profile):
    return BernoulliExactEngine(universe, profile)


class TestSuiteMissProbability:
    def test_known_value(self, profile):
        # region of mass 0.2, suite of 3 -> 0.8^3
        assert suite_miss_probability(profile, [0, 1], 3) == pytest.approx(0.512)

    def test_zero_tests(self, profile):
        assert suite_miss_probability(profile, [0], 0) == 1.0

    def test_negative_rejected(self, profile):
        with pytest.raises(ModelError):
            suite_miss_probability(profile, [0], -1)


class TestZeta:
    def test_zero_tests_is_theta(self, engine, bernoulli_population):
        np.testing.assert_allclose(
            engine.zeta(bernoulli_population, 0),
            bernoulli_population.difficulty(),
            atol=1e-12,
        )

    def test_single_fault_demand_closed_form(self, engine, bernoulli_population):
        """Demand 0 covered only by fault 0 (p=.5, region mass .2):
        zeta_n(0) = 0.5 * 0.8^n."""
        for n in (1, 5, 20):
            zeta = engine.zeta(bernoulli_population, n)
            assert zeta[0] == pytest.approx(0.5 * 0.8**n)

    def test_two_fault_demand_inclusion_exclusion(
        self, engine, bernoulli_population
    ):
        """Demand 4 covered by faults 1 (p=.25, R={2,3,4}) and 2 (p=.4,
        R={4,5}).  E[prod] = 1 - .25*(.7)^n - .4*(.8)^n + .1*(1-Q(R1 u R2))^n
        with Q(R1 u R2) = .4."""
        for n in (1, 3, 10):
            expected_product = (
                1.0
                - 0.25 * 0.7**n
                - 0.4 * 0.8**n
                + 0.25 * 0.4 * 0.6**n
            )
            zeta = engine.zeta(bernoulli_population, n)
            assert zeta[4] == pytest.approx(1.0 - expected_product)

    def test_monotone_in_effort(self, engine, bernoulli_population):
        values = [engine.zeta(bernoulli_population, n) for n in (0, 2, 5, 20)]
        for earlier, later in zip(values, values[1:]):
            assert np.all(later <= earlier + 1e-15)

    def test_matches_suite_sampling(self, universe, bernoulli_population):
        """The closed form must agree with Monte-Carlo suite averaging."""
        space = universe.space
        profile = zipf_profile(space, 0.8)
        engine = BernoulliExactEngine(universe, profile)
        generator = OperationalSuiteGenerator(profile, 5)
        exact = engine.zeta(bernoulli_population, 5)
        sampled = np.zeros(10)
        n_suites = 4000
        rng = np.random.default_rng(0)
        for suite in generator.sample_many(n_suites, rng):
            sampled += bernoulli_population.tested_difficulty(
                suite.unique_demands
            )
        np.testing.assert_allclose(sampled / n_suites, exact, atol=0.02)


class TestSecondMoment:
    def test_bounded_by_zeta(self, engine, bernoulli_population):
        for n in (0, 3, 10):
            zeta = engine.zeta(bernoulli_population, n)
            second = engine.xi_second_moment(bernoulli_population, n)
            assert np.all(second >= zeta**2 - 1e-15)
            assert np.all(second <= zeta + 1e-15)  # xi in [0,1]

    def test_variance_nonnegative_and_bounded(self, engine, bernoulli_population):
        for n in (1, 5, 20):
            variance = engine.xi_variance(bernoulli_population, n)
            assert np.all(variance >= 0)
            assert np.all(variance <= 0.25 + 1e-15)

    def test_single_fault_second_moment(self, engine, bernoulli_population):
        """For a single covering fault, xi(x,T) = p * Z, so
        E[xi^2] = p^2 * P(miss)."""
        for n in (1, 4):
            second = engine.xi_second_moment(bernoulli_population, n)
            assert second[0] == pytest.approx(0.25 * 0.8**n)


class TestCrossMoment:
    def test_same_population_reduces_to_second_moment(
        self, engine, bernoulli_population
    ):
        second = engine.xi_second_moment(bernoulli_population, 4)
        cross = engine.xi_cross_moment(
            bernoulli_population, bernoulli_population, 4
        )
        np.testing.assert_allclose(cross, second, atol=1e-12)

    def test_disjoint_methodologies_on_shared_demand(self, universe, profile):
        """A has only fault 1, B only fault 2; they meet on demand 4.
        xi_A(4,T) = pA Z1, xi_B(4,T) = pB Z2, cross = pA pB P(miss both)."""
        engine = BernoulliExactEngine(universe, profile)
        pop_a = BernoulliFaultPopulation(universe, [0.0, 0.5, 0.0])
        pop_b = BernoulliFaultPopulation(universe, [0.0, 0.0, 0.5])
        n = 3
        cross = engine.xi_cross_moment(pop_a, pop_b, n)
        # miss both regions {2,3,4} u {4,5}: mass .4 -> 0.6^3
        assert cross[4] == pytest.approx(0.25 * 0.6**n)

    def test_covariance_sign_positive_for_shared_fault(self, universe, profile):
        engine = BernoulliExactEngine(universe, profile)
        shared = BernoulliFaultPopulation(universe, [0.0, 0.5, 0.0])
        covariance = engine.xi_covariance(shared, shared, 4)
        assert covariance[2] > 0  # same fault, same survival event


class TestMarginals:
    def test_version_pfd_integrates_zeta(self, engine, bernoulli_population, profile):
        assert engine.version_pfd(bernoulli_population, 6) == pytest.approx(
            profile.expectation(engine.zeta(bernoulli_population, 6))
        )

    def test_system_orderings(self, engine, bernoulli_population):
        for n in (0, 5, 15):
            independent = engine.system_pfd_independent_suites(
                bernoulli_population, n
            )
            same = engine.system_pfd_same_suite(bernoulli_population, n)
            assert same >= independent - 1e-15

    def test_population_universe_check(self, engine, space):
        other_universe = FaultUniverse.from_regions(space, [[0]])
        foreign = BernoulliFaultPopulation.uniform(other_universe, 0.5)
        with pytest.raises(ModelError):
            engine.zeta(foreign, 3)


class TestMaxCover:
    def test_cover_cap_enforced(self, profile):
        space = DemandSpace(10)
        # 5 faults all covering demand 0
        universe = FaultUniverse.from_regions(space, [[0, i + 1] for i in range(5)])
        engine = BernoulliExactEngine(universe, uniform_profile(space), max_cover=3)
        population = BernoulliFaultPopulation.uniform(universe, 0.5)
        with pytest.raises(ModelError):
            engine.zeta(population, 2)

    def test_zero_coefficient_faults_do_not_count(self, profile):
        space = DemandSpace(10)
        universe = FaultUniverse.from_regions(space, [[0, i + 1] for i in range(5)])
        engine = BernoulliExactEngine(universe, uniform_profile(space), max_cover=3)
        probs = np.zeros(5)
        probs[0] = 0.5  # only one active fault
        population = BernoulliFaultPopulation(universe, probs)
        zeta = engine.zeta(population, 2)  # should not raise
        assert zeta[0] == pytest.approx(0.5 * 0.8**2)
