"""Tests for the N-version power-moment closed forms."""

import numpy as np
import pytest

from repro.analytic import BernoulliExactEngine
from repro.errors import ModelError


@pytest.fixture
def engine(universe, profile):
    return BernoulliExactEngine(universe, profile)


class TestXiPowerMoment:
    def test_power_one_is_zeta(self, engine, bernoulli_population):
        for n in (0, 3, 10):
            first = engine.xi_power_moment(bernoulli_population, n, 1)
            np.testing.assert_allclose(
                first, engine.zeta(bernoulli_population, n), atol=1e-12
            )

    def test_power_two_matches_second_moment(self, engine, bernoulli_population):
        for n in (0, 3, 10):
            squared = engine.xi_power_moment(bernoulli_population, n, 2)
            np.testing.assert_allclose(
                squared,
                engine.xi_second_moment(bernoulli_population, n),
                atol=1e-12,
            )

    def test_moments_decrease_in_power(self, engine, bernoulli_population):
        """xi in [0,1] so E[xi^k] is non-increasing in k."""
        n = 4
        moments = [
            engine.xi_power_moment(bernoulli_population, n, k)
            for k in (1, 2, 3, 4, 5)
        ]
        for lower_k, higher_k in zip(moments, moments[1:]):
            assert np.all(higher_k <= lower_k + 1e-12)

    def test_power_moment_exceeds_zeta_power(self, engine, bernoulli_population):
        """Jensen: E[xi^k] >= (E[xi])^k — the N-channel eq. (20)."""
        n = 6
        zeta = engine.zeta(bernoulli_population, n)
        for k in (2, 3, 4):
            moment = engine.xi_power_moment(bernoulli_population, n, k)
            assert np.all(moment >= zeta**k - 1e-12)

    def test_against_suite_enumeration(self, universe, profile, bernoulli_population):
        """Brute-force over an enumerable suite measure for k = 3."""
        from repro.testing import EnumerableSuiteGenerator, TestSuite

        # build the corresponding enumerable measure: all single-demand
        # suites of a 2-demand i.i.d. draw is hard; instead verify with the
        # definition over n=1 suites: T = one uniform demand
        n = 1
        space = universe.space
        suites = [TestSuite.of(space, [d]) for d in range(space.size)]
        weights = profile.probabilities
        expected = np.zeros(space.size)
        for suite, weight in zip(suites, weights):
            xi = bernoulli_population.tested_difficulty(suite.unique_demands)
            expected += weight * xi**3
        engine = BernoulliExactEngine(universe, profile)
        third = engine.xi_power_moment(bernoulli_population, n, 3)
        np.testing.assert_allclose(third, expected, atol=1e-12)

    def test_invalid_power(self, engine, bernoulli_population):
        with pytest.raises(ModelError):
            engine.xi_power_moment(bernoulli_population, 3, 0)


class TestNVersionMarginals:
    def test_n_equals_two_matches_pairwise(self, engine, bernoulli_population):
        n = 5
        assert engine.system_pfd_same_suite_n_versions(
            bernoulli_population, n, 2
        ) == pytest.approx(engine.system_pfd_same_suite(bernoulli_population, n))
        assert engine.system_pfd_independent_suites_n_versions(
            bernoulli_population, n, 2
        ) == pytest.approx(
            engine.system_pfd_independent_suites(bernoulli_population, n)
        )

    def test_more_channels_more_reliable(self, engine, bernoulli_population):
        n = 5
        same = [
            engine.system_pfd_same_suite_n_versions(bernoulli_population, n, k)
            for k in (1, 2, 3, 4)
        ]
        independent = [
            engine.system_pfd_independent_suites_n_versions(
                bernoulli_population, n, k
            )
            for k in (1, 2, 3, 4)
        ]
        assert all(b <= a + 1e-15 for a, b in zip(same, same[1:]))
        assert all(b <= a + 1e-15 for a, b in zip(independent, independent[1:]))

    def test_same_suite_dominates_per_n(self, engine, bernoulli_population):
        n = 5
        for k in (2, 3, 4):
            assert engine.system_pfd_same_suite_n_versions(
                bernoulli_population, n, k
            ) >= engine.system_pfd_independent_suites_n_versions(
                bernoulli_population, n, k
            ) - 1e-15

    def test_mc_agreement_three_channels(self, universe, profile):
        """Full-pipeline simulation of a 1oo3 same-suite system agrees with
        the closed form."""
        from repro.populations import BernoulliFaultPopulation
        from repro.rng import as_generator, spawn_many
        from repro.testing import OperationalSuiteGenerator, apply_testing

        population = BernoulliFaultPopulation(universe, [0.5, 0.25, 0.4])
        generator = OperationalSuiteGenerator(profile, 4)
        engine = BernoulliExactEngine(universe, profile)
        exact = engine.system_pfd_same_suite_n_versions(population, 4, 3)

        rng = as_generator(11)
        total = 0.0
        n_replications = 2500
        for replication in spawn_many(rng, n_replications):
            streams = spawn_many(replication, 4)
            suite = generator.sample(streams[0])
            masks = []
            for i in range(3):
                version = population.sample(streams[1 + i])
                masks.append(apply_testing(version, suite).after.failure_mask)
            joint = masks[0] & masks[1] & masks[2]
            total += float(profile.probabilities[joint].sum())
        estimate = total / n_replications
        assert estimate == pytest.approx(exact, abs=0.01)
