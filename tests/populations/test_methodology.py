"""Tests for Methodology and MethodologyPair."""

import numpy as np
import pytest

from repro.errors import IncompatibleSpaceError, ModelError
from repro.populations import (
    BernoulliFaultPopulation,
    Methodology,
    MethodologyPair,
)


@pytest.fixture
def pair(universe):
    pop_a = BernoulliFaultPopulation(universe, [0.5, 0.0, 0.5])
    pop_b = BernoulliFaultPopulation(universe, [0.0, 0.5, 0.5])
    return MethodologyPair(
        Methodology("A", pop_a), Methodology("B", pop_b)
    )


class TestMethodology:
    def test_empty_name_rejected(self, bernoulli_population):
        with pytest.raises(ModelError):
            Methodology("", bernoulli_population)

    def test_difficulty_delegates(self, bernoulli_population):
        methodology = Methodology("A", bernoulli_population)
        np.testing.assert_allclose(
            methodology.difficulty(), bernoulli_population.difficulty()
        )

    def test_sample(self, bernoulli_population, rng):
        methodology = Methodology("A", bernoulli_population)
        version = methodology.sample(rng)
        assert version.universe is bernoulli_population.universe


class TestMethodologyPair:
    def test_same_universe_required(self, universe, space):
        from repro.faults import FaultUniverse

        other = FaultUniverse.from_regions(space, [[0]])
        pop_a = BernoulliFaultPopulation.uniform(universe, 0.5)
        pop_b = BernoulliFaultPopulation.uniform(other, 0.5)
        with pytest.raises(IncompatibleSpaceError):
            MethodologyPair(Methodology("A", pop_a), Methodology("B", pop_b))

    def test_homogeneous(self, bernoulli_population):
        pair = MethodologyPair.homogeneous(Methodology("A", bernoulli_population))
        assert pair.is_homogeneous

    def test_heterogeneous_flag(self, pair):
        assert not pair.is_homogeneous

    def test_sample_pair_independent(self, pair):
        rng = np.random.default_rng(0)
        pairs = [pair.sample_pair(rng) for _ in range(200)]
        # methodology A can never contain fault 1; B never fault 0
        for version_a, version_b in pairs:
            assert 1 not in version_a.fault_ids.tolist()
            assert 0 not in version_b.fault_ids.tolist()

    def test_difficulties(self, pair):
        theta_a, theta_b = pair.difficulties()
        assert theta_a[0] == pytest.approx(0.5)
        assert theta_b[0] == 0.0
        assert theta_b[2] == pytest.approx(0.5)

    def test_difficulty_covariance_positive_for_shared_fault(
        self, universe, profile
    ):
        pop = BernoulliFaultPopulation.uniform(universe, 0.5)
        pair = MethodologyPair.homogeneous(Methodology("A", pop))
        assert pair.difficulty_covariance(profile) > 0

    def test_mean_difficulties(self, pair, profile):
        mean_a, mean_b = pair.mean_difficulties(profile)
        theta_a, theta_b = pair.difficulties()
        assert mean_a == pytest.approx(profile.expectation(theta_a))
        assert mean_b == pytest.approx(profile.expectation(theta_b))
