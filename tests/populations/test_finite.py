"""Tests for FinitePopulation."""

import numpy as np
import pytest

from repro.errors import EmptyPopulationError, ModelError, ProbabilityError
from repro.faults import FaultUniverse
from repro.populations import FinitePopulation
from repro.versions import Version


class TestConstruction:
    def test_empty_rejected(self, universe):
        with pytest.raises(EmptyPopulationError):
            FinitePopulation(universe, [], [])

    def test_duplicate_versions_rejected(self, universe):
        a = Version(universe, np.array([0]))
        b = Version(universe, np.array([0]))
        with pytest.raises(ModelError):
            FinitePopulation(universe, [a, b], [0.5, 0.5])

    def test_probabilities_must_sum_to_one(self, universe):
        a = Version.correct(universe)
        with pytest.raises(ProbabilityError):
            FinitePopulation(universe, [a], [0.5])

    def test_negative_probability_rejected(self, universe):
        a = Version.correct(universe)
        b = Version(universe, np.array([0]))
        with pytest.raises(ProbabilityError):
            FinitePopulation(universe, [a, b], [1.5, -0.5])

    def test_length_mismatch_rejected(self, universe):
        a = Version.correct(universe)
        with pytest.raises(ModelError):
            FinitePopulation(universe, [a], [0.5, 0.5])

    def test_foreign_universe_rejected(self, universe, space):
        other = FaultUniverse.from_regions(space, [[0]])
        foreign = Version(other, np.array([0]))
        with pytest.raises(ModelError):
            FinitePopulation(universe, [foreign], [1.0])

    def test_uniform_over(self, universe):
        versions = [Version.correct(universe), Version(universe, np.array([1]))]
        population = FinitePopulation.uniform_over(universe, versions)
        np.testing.assert_allclose(population.probabilities, 0.5)


class TestSampling:
    def test_sampling_follows_probabilities(self, finite_population):
        rng = np.random.default_rng(2)
        counts = {}
        n = 4000
        for _ in range(n):
            version = finite_population.sample(rng)
            key = version.fault_ids.tobytes()
            counts[key] = counts.get(key, 0) + 1
        frequencies = sorted(c / n for c in counts.values())
        np.testing.assert_allclose(frequencies, [0.1, 0.2, 0.3, 0.4], atol=0.03)

    def test_degenerate_single_version(self, universe, rng):
        only = Version(universe, np.array([1]))
        population = FinitePopulation(universe, [only], [1.0])
        assert population.sample(rng) == only


class TestExactQuantities:
    def test_difficulty_by_hand(self, finite_population):
        theta = finite_population.difficulty()
        # demand 0 covered by fault 0: versions {0} (0.3) and all (0.1)
        assert theta[0] == pytest.approx(0.4)
        # demand 2 covered by fault 1: versions {1,2} (0.2) and all (0.1)
        assert theta[2] == pytest.approx(0.3)
        # demand 9 uncovered
        assert theta[9] == 0.0

    def test_score_expectation_matches_difficulty(self, finite_population):
        theta = finite_population.difficulty()
        for demand in range(10):
            assert finite_population.score_expectation(demand) == pytest.approx(
                theta[demand]
            )

    def test_tested_difficulty_removes_triggered(self, finite_population):
        # suite {0} triggers fault 0 in every version containing it
        xi = finite_population.tested_difficulty([0])
        assert xi[0] == 0.0
        assert xi[1] == 0.0
        # fault 1 and 2 untouched
        assert xi[2] == pytest.approx(0.3)

    def test_tested_difficulty_monotone(self, finite_population):
        theta = finite_population.difficulty()
        xi = finite_population.tested_difficulty([4])
        assert np.all(xi <= theta + 1e-15)

    def test_enumerate_covers_support(self, finite_population):
        pairs = list(finite_population.enumerate())
        assert len(pairs) == 4
        assert sum(p for _, p in pairs) == pytest.approx(1.0)

    def test_len(self, finite_population):
        assert len(finite_population) == 4
