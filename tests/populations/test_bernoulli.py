"""Tests for BernoulliFaultPopulation."""

import numpy as np
import pytest

from repro.errors import ModelError, NotEnumerableError, ProbabilityError
from repro.faults import FaultUniverse
from repro.populations import BernoulliFaultPopulation


class TestConstruction:
    def test_wrong_length_rejected(self, universe):
        with pytest.raises(ModelError):
            BernoulliFaultPopulation(universe, [0.5])

    def test_out_of_range_rejected(self, universe):
        with pytest.raises(ProbabilityError):
            BernoulliFaultPopulation(universe, [0.5, -0.1, 0.2])

    def test_uniform_constructor(self, universe):
        population = BernoulliFaultPopulation.uniform(universe, 0.3)
        np.testing.assert_allclose(population.presence_probs, 0.3)

    def test_over_fault_subset(self, universe):
        population = BernoulliFaultPopulation.over_fault_subset(
            universe, [0, 2], 0.4
        )
        np.testing.assert_allclose(population.presence_probs, [0.4, 0.0, 0.4])

    def test_presence_probs_are_copies(self, bernoulli_population):
        probs = bernoulli_population.presence_probs
        probs[0] = 0.99
        assert bernoulli_population.presence_probs[0] == pytest.approx(0.5)


class TestSampling:
    def test_sample_is_version(self, bernoulli_population, rng):
        version = bernoulli_population.sample(rng)
        assert version.universe is bernoulli_population.universe

    def test_degenerate_probabilities(self, universe, rng):
        always = BernoulliFaultPopulation(universe, [1.0, 1.0, 1.0])
        never = BernoulliFaultPopulation(universe, [0.0, 0.0, 0.0])
        assert always.sample(rng).n_faults == 3
        assert never.sample(rng).is_correct

    def test_empirical_inclusion_rates(self, universe):
        population = BernoulliFaultPopulation(universe, [0.8, 0.2, 0.5])
        rng = np.random.default_rng(3)
        counts = np.zeros(3)
        n = 4000
        for version in population.sample_many(n, rng):
            counts[version.fault_ids] += 1
        np.testing.assert_allclose(counts / n, [0.8, 0.2, 0.5], atol=0.03)

    def test_sample_many_independent(self, bernoulli_population):
        versions = bernoulli_population.sample_many(50, np.random.default_rng(1))
        fault_counts = {v.n_faults for v in versions}
        assert len(fault_counts) > 1  # not all identical


class TestDifficulty:
    def test_difficulty_matches_closed_form(self, bernoulli_population):
        theta = bernoulli_population.difficulty()
        assert theta[4] == pytest.approx(1 - 0.75 * 0.6)

    def test_difficulty_matches_empirical(self, bernoulli_population):
        theta = bernoulli_population.difficulty()
        rng = np.random.default_rng(5)
        n = 4000
        empirical = np.zeros(10)
        for version in bernoulli_population.sample_many(n, rng):
            empirical += version.failure_mask
        np.testing.assert_allclose(empirical / n, theta, atol=0.03)

    def test_tested_difficulty_respects_suite(self, bernoulli_population):
        xi = bernoulli_population.tested_difficulty([0])
        assert xi[0] == 0.0
        assert xi[2] == pytest.approx(0.25)

    def test_pfd(self, bernoulli_population, profile):
        expected = profile.expectation(bernoulli_population.difficulty())
        assert bernoulli_population.pfd(profile) == pytest.approx(expected)


class TestEnumeration:
    def test_enumeration_sums_to_one(self, bernoulli_population):
        total = sum(p for _, p in bernoulli_population.enumerate())
        assert total == pytest.approx(1.0)

    def test_enumeration_reproduces_difficulty(self, bernoulli_population):
        theta = np.zeros(10)
        for version, probability in bernoulli_population.enumerate():
            theta += probability * version.failure_mask
        np.testing.assert_allclose(theta, bernoulli_population.difficulty())

    def test_zero_prob_faults_skipped(self, universe):
        population = BernoulliFaultPopulation(universe, [0.5, 0.0, 0.0])
        supports = list(population.enumerate())
        assert len(supports) == 2  # {} and {0}

    def test_certain_faults_always_present(self, universe):
        population = BernoulliFaultPopulation(universe, [1.0, 0.5, 0.0])
        for version, _probability in population.enumerate():
            assert 0 in version.fault_ids.tolist()

    def test_large_universe_not_enumerable(self):
        from repro.demand import DemandSpace

        space = DemandSpace(40)
        universe = FaultUniverse.from_regions(
            space, [[i] for i in range(20)]
        )
        population = BernoulliFaultPopulation.uniform(universe, 0.5)
        with pytest.raises(NotEnumerableError):
            list(population.enumerate())


class TestScaled:
    def test_scaling(self, bernoulli_population):
        scaled = bernoulli_population.scaled(0.5)
        np.testing.assert_allclose(
            scaled.presence_probs, [0.25, 0.125, 0.2]
        )

    def test_scaling_clips_at_one(self, bernoulli_population):
        scaled = bernoulli_population.scaled(10.0)
        assert scaled.presence_probs.max() == 1.0

    def test_negative_factor_rejected(self, bernoulli_population):
        with pytest.raises(ModelError):
            bernoulli_population.scaled(-1.0)

    def test_expected_fault_count(self, bernoulli_population):
        assert bernoulli_population.expected_fault_count() == pytest.approx(1.15)
