"""Tests for the coverage oracle/fixing pair and its engine integration.

The pair must (a) behave correctly on the scalar path, (b) be recognised
structurally by the batch planner with scalar/batch statistical parity,
(c) be rejected by the compiled backend with a pointer to engine='batch',
and (d) travel as the default policies of a
:class:`~repro.core.CoverageAwareRegime`.
"""

import numpy as np
import pytest

from repro.core import CoverageAwareRegime, SameSuite
from repro.coverage import (
    ComponentModel,
    CoverageFixing,
    CoverageOracle,
    coverage_testing_pair,
    fault_detection_probs,
    synthetic_coverage,
)
from repro.demand import DemandSpace, zipf_profile
from repro.errors import ModelError, ProbabilityError
from repro.faults import clustered_universe
from repro.mc import batch_supported, simulate_marginal_system_pfd
from repro.mc.kernels import compiled_supported
from repro.populations import BernoulliFaultPopulation
from repro.rng import as_generator
from repro.testing import (
    ImperfectFixing,
    OperationalSuiteGenerator,
    apply_testing,
)


@pytest.fixture
def model():
    space = DemandSpace(60)
    profile = zipf_profile(space, exponent=0.7)
    universe = clustered_universe(space, n_faults=12, region_size=5, rng=3)
    population = BernoulliFaultPopulation.uniform(universe, 0.35)
    generator = OperationalSuiteGenerator(profile, 15)
    components = ComponentModel.round_robin(universe, 4)
    matrix = synthetic_coverage(10, 4, density=0.6, rng=5)
    return profile, universe, population, generator, components, matrix


def _overlap(first, second, confidence=0.99):
    low_a, high_a = first.normal_interval(confidence)
    low_b, high_b = second.normal_interval(confidence)
    return low_a <= high_b and low_b <= high_a


def test_fault_detection_probs_are_column_densities(model):
    _profile, _universe, _population, _generator, components, matrix = model
    probs = fault_detection_probs(components, matrix)
    expected = matrix.component_densities()[components.assignment]
    np.testing.assert_allclose(probs, expected)
    assert probs.shape == (12,)


def test_fault_detection_probs_component_mismatch(model):
    _profile, universe, _population, _generator, components, _matrix = model
    with pytest.raises(ModelError):
        fault_detection_probs(components, synthetic_coverage(10, 5, rng=5))


def test_pair_validation():
    with pytest.raises(ProbabilityError):
        CoverageOracle((0.5, 1.2))
    with pytest.raises(ProbabilityError):
        CoverageFixing((-0.1,))
    with pytest.raises(ProbabilityError):
        CoverageOracle(((0.5, 0.5),))


def test_oracle_always_detects(model):
    _profile, _universe, _population, _generator, components, matrix = model
    oracle, _fixing = coverage_testing_pair(components, matrix)
    assert oracle.detects(None, 0, as_generator(0))


def test_fixing_removes_only_causing_faults_with_probs(model):
    _profile, universe, population, _generator, components, matrix = model
    _oracle, fixing = coverage_testing_pair(components, matrix)
    version = population.sample(as_generator(2))
    demand = int(np.flatnonzero(version.failure_mask)[0])
    causes = version.faults_causing_failure(demand)
    removed = fixing.faults_removed(version, demand, as_generator(3))
    assert set(removed.tolist()) <= set(causes.tolist())
    # a zero-probability fault is never removed
    zero = CoverageFixing((0.0,) * len(universe))
    assert zero.faults_removed(version, demand, as_generator(3)).size == 0
    # a probability-one fixing removes every causing fault
    one = CoverageFixing((1.0,) * len(universe))
    np.testing.assert_array_equal(
        one.faults_removed(version, demand, as_generator(3)), causes
    )


def test_scalar_engine_runs_the_pair(model):
    profile, _universe, population, generator, components, matrix = model
    oracle, fixing = coverage_testing_pair(components, matrix)
    version = population.sample(as_generator(5))
    suite = generator.sample(as_generator(6))
    outcome = apply_testing(version, suite, oracle, fixing, rng=7)
    assert outcome.after.fault_ids.size <= version.fault_ids.size


def test_batch_supported_truth_table(model):
    _profile, universe, _population, _generator, components, matrix = model
    oracle, fixing = coverage_testing_pair(components, matrix)
    assert batch_supported(oracle, fixing)
    # half-supplied or mismatched pairs fall back to scalar
    assert not batch_supported(oracle, None)
    assert not batch_supported(None, fixing)
    assert not batch_supported(oracle, ImperfectFixing(0.5))
    other = CoverageFixing((0.5,) * len(universe))
    assert not batch_supported(oracle, other)


def test_compiled_backend_rejects_coverage_pairs(model):
    _profile, _universe, _population, generator, components, matrix = model
    oracle, fixing = coverage_testing_pair(components, matrix)
    assert not compiled_supported(oracle, fixing)


def test_scalar_and_batch_engines_agree(model):
    profile, _universe, population, generator, components, matrix = model
    oracle, fixing = coverage_testing_pair(components, matrix)
    regime = SameSuite(generator)
    kwargs = dict(oracle=oracle, fixing=fixing, n_replications=2000, rng=61)
    scalar = simulate_marginal_system_pfd(
        regime, population, profile, engine="scalar", **kwargs
    )
    batch = simulate_marginal_system_pfd(
        regime, population, profile, engine="batch", **kwargs
    )
    assert _overlap(scalar, batch)


def test_coverage_testing_weaker_than_perfect(model):
    # coverage-limited diagnosis leaves more faults in place than perfect
    # testing, so the post-test system pfd is no better
    profile, _universe, population, generator, components, matrix = model
    oracle, fixing = coverage_testing_pair(components, matrix)
    regime = SameSuite(generator)
    limited = simulate_marginal_system_pfd(
        regime, population, profile, engine="batch",
        oracle=oracle, fixing=fixing, n_replications=4000, rng=61,
    )
    perfect = simulate_marginal_system_pfd(
        regime, population, profile, engine="batch",
        n_replications=4000, rng=61,
    )
    assert limited.mean >= perfect.mean


def test_coverage_aware_regime_supplies_default_policies(model):
    profile, _universe, population, generator, components, matrix = model
    oracle, fixing = coverage_testing_pair(components, matrix)
    base = SameSuite(generator)
    regime = CoverageAwareRegime(base, oracle, fixing)
    assert regime.shares_suite == base.shares_suite
    assert regime.label == "coverage-aware same suite"
    assert regime.base is base
    via_regime = simulate_marginal_system_pfd(
        regime, population, profile, engine="batch",
        n_replications=500, rng=11,
    )
    explicit = simulate_marginal_system_pfd(
        base, population, profile, engine="batch",
        oracle=oracle, fixing=fixing, n_replications=500, rng=11,
    )
    assert via_regime.mean == explicit.mean
    assert via_regime.variance == explicit.variance


def test_coverage_aware_regime_explicit_policies_win(model):
    profile, _universe, population, generator, components, matrix = model
    oracle, fixing = coverage_testing_pair(components, matrix)
    regime = CoverageAwareRegime(SameSuite(generator), oracle, fixing)
    overridden = simulate_marginal_system_pfd(
        regime, population, profile, n_replications=500, rng=11,
    )
    perfect = simulate_marginal_system_pfd(
        regime, population, profile, n_replications=500, rng=11,
        oracle=None, fixing=ImperfectFixing(1.0),
    )
    # ImperfectFixing(1.0) is perfect fixing with a perfect default oracle,
    # which differs from the coverage default almost surely at this size
    assert perfect.mean != overridden.mean


def test_coverage_aware_regime_validation(model):
    _profile, universe, _population, generator, components, matrix = model
    oracle, fixing = coverage_testing_pair(components, matrix)
    base = SameSuite(generator)
    with pytest.raises(ModelError):
        CoverageAwareRegime("not a regime", oracle, fixing)
    with pytest.raises(ModelError):
        CoverageAwareRegime(base, oracle, ImperfectFixing(0.5))
    with pytest.raises(ModelError):
        CoverageAwareRegime(base, oracle, CoverageFixing((0.5,) * len(universe)))


def test_coverage_aware_regime_delegates_draws(model):
    profile, _universe, _population, generator, components, matrix = model
    oracle, fixing = coverage_testing_pair(components, matrix)
    base = SameSuite(generator)
    regime = CoverageAwareRegime(base, oracle, fixing)
    suite_a, suite_b = regime.draw_suites(3)
    base_a, base_b = base.draw_suites(3)
    np.testing.assert_array_equal(suite_a.demands, base_a.demands)
    masks = regime.draw_suite_masks(4, 5)
    base_masks = base.draw_suite_masks(4, 5)
    np.testing.assert_array_equal(masks[0], base_masks[0])
    counts = regime.draw_suite_counts(4, 5)
    base_counts = base.draw_suite_counts(4, 5)
    np.testing.assert_array_equal(counts[1], base_counts[1])
