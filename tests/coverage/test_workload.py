"""Tests for the localized reliability-growth workload."""

import numpy as np
import pytest

from repro.coverage import (
    ComponentModel,
    LocalizedGrowthResult,
    simulate_localized_growth,
    synthetic_coverage,
)
from repro.demand import DemandSpace, zipf_profile
from repro.errors import ModelError
from repro.faults import clustered_universe
from repro.populations import BernoulliFaultPopulation, FinitePopulation


@pytest.fixture
def setup():
    space = DemandSpace(50)
    profile = zipf_profile(space, exponent=0.8)
    universe = clustered_universe(space, n_faults=10, region_size=6, rng=9)
    population = BernoulliFaultPopulation.uniform(universe, 0.5)
    components = ComponentModel.blocked(universe, 5)
    matrix = synthetic_coverage(12, 5, density=0.5, bandwidth=2, rng=4)
    return profile, universe, population, components, matrix


def _run(setup, **kwargs):
    profile, _universe, population, components, matrix = setup
    defaults = dict(
        policy="sbfl",
        rounds=4,
        n_replications=60,
        rng=21,
    )
    defaults.update(kwargs)
    return simulate_localized_growth(
        population, profile, matrix, components, **defaults
    )


def test_result_shape_and_invariants(setup):
    result = _run(setup)
    assert isinstance(result, LocalizedGrowthResult)
    assert len(result.mean_pfd) == result.rounds + 1
    assert result.initial_pfd == result.mean_pfd[0]
    assert result.final_pfd == result.mean_pfd[-1]
    assert 0.0 <= result.reached_fraction <= 1.0
    assert 0.0 < result.mean_rounds_to_target <= result.rounds + 1
    # fixing never adds faults: mean pfd is non-increasing
    trajectory = np.asarray(result.mean_pfd)
    assert np.all(np.diff(trajectory) <= 1e-12)


def test_seed_determinism(setup):
    first = _run(setup)
    second = _run(setup)
    third = _run(setup, rng=22)
    assert first == second
    assert first.mean_pfd != third.mean_pfd


def test_chunking_and_n_jobs_invariance(setup):
    baseline = _run(setup)
    for kwargs in (
        dict(chunk_size=7),
        dict(chunk_size=64),
        dict(chunk_size=13, n_jobs=2),
    ):
        assert _run(setup, **kwargs) == baseline


def test_vectorized_matches_reference(setup):
    fast = _run(setup, n_replications=30)
    slow = _run(setup, n_replications=30, vectorized=False)
    # identical draws: the integer effort outcomes agree exactly, the
    # float trajectories up to reduction order
    assert fast.mean_rounds_to_target == slow.mean_rounds_to_target
    assert fast.reached_fraction == slow.reached_fraction
    np.testing.assert_allclose(fast.mean_pfd, slow.mean_pfd, rtol=1e-12)


def test_random_policy_runs_and_differs(setup):
    sbfl = _run(setup, rounds=6)
    random = _run(setup, rounds=6, policy="random")
    assert random.policy == "random"
    assert sbfl.mean_pfd != random.mean_pfd


@pytest.mark.parametrize("metric", ["tarantula", "dstar"])
def test_alternative_metrics(setup, metric):
    result = _run(setup, metric=metric, n_replications=20)
    assert result.metric == metric


def test_validation(setup):
    profile, universe, population, components, matrix = setup
    with pytest.raises(ModelError, match="policy"):
        _run(setup, policy="oracle")
    with pytest.raises(ModelError, match="metric"):
        _run(setup, metric="jaccard")
    with pytest.raises(ModelError, match="rounds"):
        _run(setup, rounds=0)
    with pytest.raises(ModelError, match="target_fraction"):
        _run(setup, target_fraction=0.0)
    with pytest.raises(ModelError, match="n_replications"):
        _run(setup, n_replications=0)
    with pytest.raises(ModelError, match="chunk_size"):
        _run(setup, chunk_size=0)
    with pytest.raises(ModelError, match="Bernoulli"):
        from repro.rng import as_generator

        finite = FinitePopulation(
            universe, [population.sample(as_generator(0))], [1.0]
        )
        simulate_localized_growth(finite, profile, matrix, components)
    with pytest.raises(ModelError, match="components"):
        simulate_localized_growth(
            population,
            profile,
            synthetic_coverage(12, 4, rng=4),
            components,
        )


def test_sbfl_localizes_better_on_a_separable_model():
    # one dominant component holds all the large faults; tests are
    # component-focused, so SBFL should find-and-fix it faster than a
    # uniformly random pick among failing-evidence components
    space = DemandSpace(80)
    profile = zipf_profile(space, exponent=0.5)
    universe = clustered_universe(space, n_faults=12, region_size=6, rng=15)
    population = BernoulliFaultPopulation.uniform(universe, 0.6)
    components = ComponentModel.blocked(universe, 6)
    matrix = synthetic_coverage(18, 6, density=0.9, bandwidth=1, overlap=0.1, rng=2)
    common = dict(
        rounds=8,
        target_fraction=0.5,
        n_replications=300,
        rng=33,
    )
    sbfl = simulate_localized_growth(
        population, profile, matrix, components, policy="sbfl", **common
    )
    random = simulate_localized_growth(
        population, profile, matrix, components, policy="random", **common
    )
    assert sbfl.mean_rounds_to_target < random.mean_rounds_to_target
