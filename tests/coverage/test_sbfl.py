"""Unit tests for the SBFL suspiciousness metrics."""

import numpy as np
import pytest

from repro.coverage import (
    SBFL_METRICS,
    dstar,
    ochiai,
    rank_components,
    spectrum_counts,
    suspiciousness,
    tarantula,
    top_component,
)
from repro.errors import ModelError


@pytest.fixture
def spectrum():
    # 4 tests x 3 components; tests 0 and 2 fail
    covered = np.array(
        [
            [True, True, False],
            [True, False, False],
            [False, True, True],
            [False, False, True],
        ]
    )
    failing = np.array([True, False, True, False])
    return failing, covered


def test_spectrum_counts_quadruple(spectrum):
    failing, covered = spectrum
    n_cf, n_cs, n_uf, n_us = spectrum_counts(failing, covered)
    np.testing.assert_allclose(n_cf, [1.0, 2.0, 1.0])
    np.testing.assert_allclose(n_cs, [1.0, 0.0, 1.0])
    np.testing.assert_allclose(n_uf, [1.0, 0.0, 1.0])
    np.testing.assert_allclose(n_us, [1.0, 2.0, 1.0])
    # the quadruple always sums to the number of tests
    np.testing.assert_allclose(n_cf + n_cs + n_uf + n_us, 4.0)


def test_spectrum_counts_batched(spectrum):
    failing, covered = spectrum
    stacked = np.stack([failing, ~failing])
    n_cf, n_cs, n_uf, n_us = spectrum_counts(stacked, covered)
    assert n_cf.shape == (2, 3)
    single = spectrum_counts(failing, covered)
    np.testing.assert_allclose(n_cf[0], single[0])


def test_spectrum_counts_validation(spectrum):
    failing, covered = spectrum
    with pytest.raises(ModelError):
        spectrum_counts(failing, covered[:, 0])
    with pytest.raises(ModelError):
        spectrum_counts(failing[:3], covered)


def test_ochiai_values(spectrum):
    scores = ochiai(*spectrum_counts(*spectrum))
    np.testing.assert_allclose(
        scores, [1 / np.sqrt(4.0), 2 / np.sqrt(4.0), 1 / np.sqrt(4.0)]
    )


def test_tarantula_values(spectrum):
    scores = tarantula(*spectrum_counts(*spectrum))
    np.testing.assert_allclose(scores, [0.5, 1.0, 0.5])


def test_dstar_values(spectrum):
    scores = dstar(*spectrum_counts(*spectrum))
    # component 1 has no counter-evidence: scored n_cf**2, finite maximal
    np.testing.assert_allclose(scores, [0.5, 4.0, 0.5])


@pytest.mark.parametrize("metric", SBFL_METRICS)
def test_degenerate_spectra_are_finite(metric):
    covered = np.array([[True, False], [True, True]])
    for failing in ([False, False], [True, True]):
        scores = suspiciousness(
            metric, *spectrum_counts(np.array(failing), covered)
        )
        assert np.all(np.isfinite(scores))
    # a never-covered component is also finite (and never preferred)
    covered = np.array([[True, False], [True, False]])
    scores = suspiciousness(
        metric, *spectrum_counts(np.array([True, False]), covered)
    )
    assert np.all(np.isfinite(scores))
    assert scores[1] <= scores[0]


def test_suspiciousness_rejects_unknown_metric():
    with pytest.raises(ModelError, match="metric must be one of"):
        suspiciousness("jaccard", 1.0, 1.0, 1.0, 1.0)


def test_rank_components_ties_break_to_lowest_id():
    ranking = rank_components(np.array([0.5, 0.9, 0.5, 0.9]))
    assert ranking.tolist() == [1, 3, 0, 2]
    with pytest.raises(ModelError):
        rank_components(np.zeros((2, 2)))


def test_top_component_matches_ranking_head():
    scores = np.array([[0.1, 0.7, 0.7], [0.9, 0.0, 0.2]])
    np.testing.assert_array_equal(top_component(scores), [1, 0])
    for row in scores:
        assert top_component(row) == rank_components(row)[0]
