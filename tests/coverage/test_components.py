"""Tests for the component-structured program model."""

import numpy as np
import pytest

from repro.coverage import ComponentModel
from repro.demand import DemandSpace, uniform_profile
from repro.errors import ModelError
from repro.faults import clustered_universe


@pytest.fixture
def universe():
    return clustered_universe(DemandSpace(40), n_faults=9, region_size=4, rng=7)


def test_round_robin_assignment(universe):
    model = ComponentModel.round_robin(universe, 4)
    assert model.n_components == 4
    np.testing.assert_array_equal(
        model.assignment, np.arange(9, dtype=np.int64) % 4
    )


def test_blocked_assignment_is_contiguous_and_balanced(universe):
    model = ComponentModel.blocked(universe, 3)
    np.testing.assert_array_equal(model.assignment, np.repeat([0, 1, 2], 3))
    assert model.component_sizes().tolist() == [3, 3, 3]


def test_from_lines_buckets_nearby_lines_together(universe):
    lines = [10, 11, 12, 50, 51, 52, 90, 91, 92]
    model = ComponentModel.from_lines(universe, lines, 3)
    np.testing.assert_array_equal(model.assignment, np.repeat([0, 1, 2], 3))
    # repeated lines always share a component
    model = ComponentModel.from_lines(universe, [5] * 9, 3)
    assert len(set(model.assignment.tolist())) == 1


def test_explicit_n_components_allows_trailing_empty(universe):
    model = ComponentModel(universe, np.zeros(9, dtype=np.int64), 5)
    assert model.n_components == 5
    assert model.component_sizes().tolist() == [9, 0, 0, 0, 0]
    assert model.faults_in(4).size == 0


def test_faults_in_partitions_the_universe(universe):
    model = ComponentModel.round_robin(universe, 4)
    seen = np.concatenate([model.faults_in(k) for k in range(4)])
    assert sorted(seen.tolist()) == list(range(9))
    with pytest.raises(ModelError):
        model.faults_in(4)
    with pytest.raises(ModelError):
        model.faults_in(-1)


def test_validation_rejects_bad_assignments(universe):
    with pytest.raises(ModelError):
        ComponentModel(universe, np.zeros(4, dtype=np.int64))
    with pytest.raises(ModelError):
        ComponentModel(universe, np.full(9, -1, dtype=np.int64))
    with pytest.raises(ModelError):
        ComponentModel(universe, np.full(9, 3, dtype=np.int64), 3)
    with pytest.raises(ModelError):
        ComponentModel.round_robin(universe, 0)
    with pytest.raises(ModelError):
        ComponentModel.from_lines(universe, [1, 2], 3)


def test_assignment_is_read_only(universe):
    model = ComponentModel.round_robin(universe, 4)
    with pytest.raises(ValueError):
        model.assignment[0] = 3


def test_component_masses_sum_to_total_region_mass(universe):
    profile = uniform_profile(universe.space)
    model = ComponentModel.round_robin(universe, 4)
    masses = model.component_masses(profile.probabilities)
    total = universe.region_masses(profile.probabilities).sum()
    assert masses.shape == (4,)
    assert masses.sum() == pytest.approx(total)


def test_union_masses_bounded_by_additive_masses(universe):
    profile = uniform_profile(universe.space)
    model = ComponentModel.blocked(universe, 3)
    union = model.union_masses(profile.probabilities)
    additive = model.component_masses(profile.probabilities)
    assert np.all(union <= additive + 1e-12)
    assert np.all(union >= 0.0)


def test_describe_mentions_shape(universe):
    text = ComponentModel.round_robin(universe, 4).describe()
    assert "4 components" in text and "9 faults" in text
