"""Tests for the synthetic and empirical coverage-matrix constructors."""

import numpy as np
import pytest

from repro.coverage import (
    CoverageMatrix,
    empirical_coverage,
    measured_component_assignment,
    synthetic_coverage,
)
from repro.errors import ModelError
from repro.mutation.measured import MEASURED, measured_target_names


def test_matrix_validation_and_properties():
    matrix = CoverageMatrix([[True, False], [True, True], [False, True]])
    assert matrix.n_tests == 3
    assert matrix.n_components == 2
    assert matrix.density == pytest.approx(4 / 6)
    np.testing.assert_allclose(
        matrix.component_densities(), [2 / 3, 2 / 3]
    )
    with pytest.raises(ModelError):
        CoverageMatrix(np.ones(3, dtype=bool))
    with pytest.raises(ModelError):
        CoverageMatrix(np.ones((0, 2), dtype=bool))


def test_matrix_is_read_only_and_copies_input():
    source = np.ones((2, 2), dtype=bool)
    matrix = CoverageMatrix(source)
    source[0, 0] = False
    assert matrix.covered[0, 0]
    with pytest.raises(ValueError):
        matrix.covered[0, 0] = False


def test_synthetic_is_seed_deterministic():
    first = synthetic_coverage(12, 6, density=0.4, rng=11)
    second = synthetic_coverage(12, 6, density=0.4, rng=11)
    third = synthetic_coverage(12, 6, density=0.4, rng=12)
    np.testing.assert_array_equal(first.covered, second.covered)
    assert not np.array_equal(first.covered, third.covered)


def test_synthetic_density_extremes():
    full = synthetic_coverage(8, 5, density=1.0, rng=0)
    assert full.density == 1.0
    # density 0 keeps only the guaranteed focus diagonal
    sparse = synthetic_coverage(8, 5, density=0.0, rng=0)
    assert sparse.covered.sum() == 8
    assert np.all(sparse.covered.sum(axis=1) == 1)


def test_synthetic_every_test_and_component_covered():
    matrix = synthetic_coverage(10, 5, density=0.2, bandwidth=2, rng=3)
    assert np.all(matrix.covered.sum(axis=1) >= 1)
    # n_tests >= n_components: the focus centres sweep every component
    assert np.all(matrix.covered.sum(axis=0) >= 1)


def test_synthetic_bandwidth_confines_coverage():
    matrix = synthetic_coverage(9, 9, density=1.0, bandwidth=3, overlap=0.0, rng=1)
    rows, cols = np.nonzero(matrix.covered)
    assert np.all(np.abs(rows - cols) <= 2)


def test_synthetic_overlap_leaks_outside_the_band():
    rng = 17
    confined = synthetic_coverage(30, 10, density=0.9, bandwidth=2, overlap=0.0, rng=rng)
    leaky = synthetic_coverage(30, 10, density=0.9, bandwidth=2, overlap=0.8, rng=rng)
    assert leaky.covered.sum() > confined.covered.sum()


def test_synthetic_validation():
    with pytest.raises(ModelError):
        synthetic_coverage(0, 4)
    with pytest.raises(ModelError):
        synthetic_coverage(4, 4, density=1.5)
    with pytest.raises(ModelError):
        synthetic_coverage(4, 4, overlap=-0.1)
    with pytest.raises(ModelError):
        synthetic_coverage(4, 4, bandwidth=0)


def test_measured_assignment_matches_mutant_order():
    for target in measured_target_names():
        entry = MEASURED[target]
        assignment = measured_component_assignment(target, 5)
        assert assignment.shape == (len(entry["mutants"]),)
        assert assignment.min() >= 0 and assignment.max() < 5
        # assignment is monotone in source line (contiguous bands)
        lines = np.asarray([m["line"] for m in entry["mutants"]])
        order = np.argsort(lines, kind="stable")
        assert np.all(np.diff(assignment[order]) >= 0)


def test_empirical_coverage_reflects_kill_records():
    target = measured_target_names()[0]
    entry = MEASURED[target]
    matrix = empirical_coverage(target, 5)
    assert matrix.n_tests == entry["n_tests"]
    assert matrix.n_components == 5
    assignment = measured_component_assignment(target, 5)
    expected = np.zeros((entry["n_tests"], 5), dtype=bool)
    for mutant, component in zip(entry["mutants"], assignment):
        for test_index in mutant["kills"]:
            expected[test_index, component] = True
    np.testing.assert_array_equal(matrix.covered, expected)


def test_empirical_coverage_unknown_target():
    with pytest.raises(ModelError, match="known:"):
        empirical_coverage("no_such_target", 3)
    with pytest.raises(ModelError):
        measured_component_assignment("triangle", 0)
