"""Backend conformance suite: every store backend honors one contract.

The sweep layer, the service cache and the mutation campaign runner all
talk to a store through the :class:`~repro.store.backend.StoreBackend`
protocol; this suite is the contract those callers rely on, parametrized
over every backend (JSONL and SQLite) so a future backend gets the whole
net for free:

* roundtrip — ``put`` then ``get``/``records``/``keys`` returns the
  record unchanged;
* last-wins duplicates — re-putting a key replaces the payload but keeps
  the key's first-written position (dict semantics, both backends);
* interrupt safety — a writer SIGKILLed mid-stream loses at most the
  record in flight; everything already acknowledged survives reload;
* concurrent writers — multiprocess ``put()`` stress, no corruption;
* ``compact()`` — record-preserving, space-reclaiming, honest stats;
* aggregate parity — the golden sweep grid renders byte-identical
  summary and comparison tables from either backend (the SQLite
  backend's SQL pushdown must not drift from the Python scan).
"""

import json
import multiprocessing
import os
import signal
import subprocess
import sys
import time
import warnings
from pathlib import Path

import pytest

from repro.store import (
    ResultStore,
    SqliteStore,
    StoreBackend,
    make_record,
    open_store,
)

ROOT = Path(__file__).resolve().parents[2]

BACKENDS = ("jsonl", "sqlite")


def _open(tmp_path, backend):
    return open_store(tmp_path / backend, backend=backend)


@pytest.fixture(params=BACKENDS)
def backend(request):
    return request.param


@pytest.fixture
def store(tmp_path, backend):
    return _open(tmp_path, backend)


class TestProtocol:
    def test_both_backends_satisfy_the_protocol(self, store):
        assert isinstance(store, StoreBackend)

    def test_open_store_picks_the_requested_backend(self, tmp_path, backend):
        store = _open(tmp_path, backend)
        expected = ResultStore if backend == "jsonl" else SqliteStore
        assert type(store) is expected


class TestRoundtrip:
    def test_put_get_roundtrip(self, store):
        record = make_record("a5", seed=7, params={"x": 1.5, "name": "n"})
        store.put(record)
        assert record["key"] in store
        assert store.get(record["key"]) == record
        assert len(store) == 1
        assert list(store) == [record]
        assert store.keys() == [record["key"]]
        assert store.experiment_ids() == ["a5"]

    def test_records_filter_by_experiment(self, store):
        a_record = make_record("a5", seed=1)
        b_record = make_record("a4", seed=1)
        store.put(a_record)
        store.put(b_record)
        assert store.records("a5") == [a_record]
        assert store.records("a4") == [b_record]
        assert store.records() == [a_record, b_record]
        assert store.experiment_ids() == ["a5", "a4"]  # first-written order

    def test_missing_key_is_absent(self, store):
        assert store.get("no-such-key") is None
        assert "no-such-key" not in store

    def test_reload_from_disk(self, tmp_path, backend):
        writer = _open(tmp_path, backend)
        record = make_record("a5", seed=3, params={"deep": {"nested": [1, 2]}})
        writer.put(record)
        reader = _open(tmp_path, backend)
        assert reader.get(record["key"]) == record

    def test_unicode_and_float_payloads_survive(self, store):
        record = make_record(
            "a5", seed=5, params={"label": "π≈3.14159", "ratio": 0.1 + 0.2}
        )
        store.put(record)
        loaded = store.get(record["key"])
        assert loaded["params"]["label"] == "π≈3.14159"
        assert loaded["params"]["ratio"] == 0.1 + 0.2  # bit-exact


class TestLastWins:
    def test_duplicate_key_keeps_newest_payload(self, store):
        first = make_record("a5", seed=9)
        store.put(first)
        newer = dict(first, extra_marker="newer")
        store.put(newer)
        assert len(store) == 1
        assert store.get(first["key"]) == newer

    def test_duplicate_keeps_first_written_order(self, store):
        early = make_record("a5", seed=1)
        middle = make_record("a5", seed=2)
        late = make_record("a5", seed=3)
        for record in (early, middle, late):
            store.put(record)
        replacement = dict(early, extra_marker="v2")
        store.put(replacement)
        # dict semantics: the key stays where it first appeared
        assert store.records() == [replacement, middle, late]


def _stress_writer(path, backend, worker):
    store = open_store(path, backend=backend)
    for index in range(25):
        store.put(
            make_record(
                "a5",
                seed=worker * 10_000 + index,
                params={"pad": "x" * 300, "worker": worker},
            )
        )


class TestConcurrency:
    def test_multiprocess_put_stress(self, tmp_path, backend):
        path = str(tmp_path / backend)
        open_store(path, backend=backend)  # create before forking
        workers = [
            multiprocessing.Process(
                target=_stress_writer, args=(path, backend, w)
            )
            for w in range(4)
        ]
        for process in workers:
            process.start()
        for process in workers:
            process.join(timeout=120)
            assert process.exitcode == 0
        store = open_store(path, backend=backend)
        assert len(store) == 4 * 25
        for record in store.records():
            assert record["params"]["pad"] == "x" * 300


_INTERRUPT_SCRIPT = """
import sys
import repro.experiments  # noqa: F401  (registers modules; import order)
from repro.store import make_record, open_store

path, backend = sys.argv[1], sys.argv[2]
store = open_store(path, backend=backend)
for index in range(10_000):
    store.put(make_record("a5", seed=index, params={"pad": "y" * 200}))
    print(index, flush=True)  # parent watches acknowledged seq numbers
"""


class TestInterruptSafety:
    @pytest.mark.slow
    def test_sigkill_mid_stream_loses_at_most_the_record_in_flight(
        self, tmp_path, backend
    ):
        path = str(tmp_path / backend)
        env = dict(os.environ)
        env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        process = subprocess.Popen(
            [sys.executable, "-c", _INTERRUPT_SCRIPT, path, backend],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
        )
        acknowledged = -1
        deadline = time.monotonic() + 60
        while acknowledged < 40:  # let a few dozen records land first
            line = process.stdout.readline()
            assert line, "writer exited before producing records"
            acknowledged = int(line)
            assert time.monotonic() < deadline
        os.kill(process.pid, signal.SIGKILL)
        process.wait(timeout=30)
        # recovery: the store loads, and every acknowledged record is
        # present and complete (the unacknowledged in-flight one may or
        # may not have reached disk)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")  # jsonl may drop a torn tail
            store = open_store(path, backend=backend)
            records = {r["seed"]: r for r in store.records()}
        for seed in range(acknowledged + 1):
            assert seed in records, f"acknowledged record {seed} lost"
            assert records[seed]["params"]["pad"] == "y" * 200


class TestCompact:
    def test_compact_preserves_records_and_reports_stats(self, store):
        records = [make_record("a5", seed=i) for i in range(5)]
        for record in records:
            store.put(record)
        for record in records[:3]:  # superseded duplicates
            store.put(dict(record, extra_marker="v2"))
        before = {record["key"]: record for record in store.records()}
        stats = store.compact()
        assert stats["records"] == 5
        assert stats["bytes_after"] <= stats["bytes_before"]
        assert set(stats) >= {
            "records",
            "dropped_duplicates",
            "dropped_unreadable",
            "bytes_before",
            "bytes_after",
        }
        after = {record["key"]: record for record in store.records()}
        assert after == before
        # and a fresh handle sees the same state
        reread = open_store(store.path)
        assert {r["key"]: r for r in reread.records()} == before


# ---------------------------------------------------------------------------
# aggregate parity on the golden grid
# ---------------------------------------------------------------------------

GOLDEN_GRID = dict(
    experiments=["a4", "a2"],
    seeds=[0, 1],
    experiment_params={"a2": {"presence_prob": [0.2, 0.3]}},
)


@pytest.fixture(scope="module")
def golden_records(tmp_path_factory):
    """One real sweep's records (computed once, shared read-only)."""
    from repro.sweeps import Sweep, SweepSpec

    store = ResultStore(tmp_path_factory.mktemp("golden"))
    report = Sweep(SweepSpec(**GOLDEN_GRID), store).run()
    assert report.passed
    return store.records()


class TestAggregateParity:
    @pytest.mark.parametrize("fmt", ["text", "csv", "json"])
    def test_summary_table_is_byte_identical_across_backends(
        self, golden_records, tmp_path, fmt
    ):
        from repro.sweeps import render_table, summary_table

        rendered = {}
        for backend in BACKENDS:
            store = _open(tmp_path, backend)
            for record in golden_records:
                store.put(record)
            rendered[backend] = render_table(summary_table(store), fmt)
        assert rendered["jsonl"] == rendered["sqlite"]

    def test_comparison_table_is_byte_identical_across_backends(
        self, golden_records, tmp_path
    ):
        from repro.sweeps import comparison_table, render_table

        rendered = {}
        for backend in BACKENDS:
            store = _open(tmp_path, backend)
            for record in golden_records:
                store.put(record)
            rendered[backend] = render_table(
                comparison_table(store, "a2"), "csv"
            )
        assert rendered["jsonl"] == rendered["sqlite"]

    def test_sqlite_summary_uses_the_sql_pushdown(self, golden_records, tmp_path):
        # guard against the fast path silently disappearing: the SQLite
        # backend must expose summary_rows and its output must match the
        # Python-side scan entry for entry
        store = _open(tmp_path, "sqlite")
        reference = _open(tmp_path, "jsonl")
        for record in golden_records:
            store.put(record)
            reference.put(record)
        from repro.sweeps.aggregate import _summary_entries

        assert hasattr(store, "summary_rows")
        sql_entries = sorted(
            store.summary_rows(), key=lambda e: json.dumps(e, sort_keys=True)
        )
        scan_entries = sorted(
            _summary_entries(reference),
            key=lambda e: json.dumps(e, sort_keys=True),
        )
        assert sql_entries == scan_entries
