"""Multiprocess stress test: concurrent appenders cannot corrupt a store.

Each record goes to disk as a single ``write(2)`` on an ``O_APPEND``
descriptor, so writers in different processes may interleave *records*
but never *bytes within a record*.  The padding knob makes records a few
hundred bytes wide — big enough that buffered multi-syscall writes (the
bug this guards against) would interleave with near-certainty over a few
hundred appends.
"""

import json
import multiprocessing
import warnings

from repro.store import ResultStore, make_record

_WRITERS = 4
_RECORDS_EACH = 50


def _append_records(path: str, worker: int) -> None:
    """Worker process: append records with worker-unique identities."""
    store = ResultStore(path)
    for index in range(_RECORDS_EACH):
        record = make_record(
            "a5",
            seed=worker * 10_000 + index,
            params={"pad": "x" * 400, "worker": worker},
        )
        store.put(record)


class TestConcurrentWriters:
    def test_parallel_appends_never_interleave(self, tmp_path):
        path = str(tmp_path)
        workers = [
            multiprocessing.Process(target=_append_records, args=(path, w))
            for w in range(_WRITERS)
        ]
        for process in workers:
            process.start()
        for process in workers:
            process.join(timeout=120)
            assert process.exitcode == 0
        # every line is complete, valid JSON — loading emits no warnings
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            store = ResultStore(path).load()
        assert len(store) == _WRITERS * _RECORDS_EACH
        content = store.path.read_text(encoding="utf-8")
        assert content.endswith("\n")
        for line in content.splitlines():
            json.loads(line)

    def test_writer_and_fresh_reader_agree(self, tmp_path):
        # a reader constructed mid-run sees only complete records; after a
        # reload it also sees records other handles appended meanwhile
        first = ResultStore(tmp_path)
        first.put(make_record("a5", seed=1))
        second = ResultStore(tmp_path)
        assert len(second) == 1
        first.put(make_record("a5", seed=2))
        assert len(second.load()) == 2
