"""Property-based tests (hypothesis) for the result store.

Two families of guarantees:

* **round-trip** — any record built from any serializable
  :class:`ExperimentResult` (non-finite floats, numpy scalars and all)
  survives write → read identically, through both the payload codec and
  the JSONL file;
* **cache keys** — stable under param-dict insertion order, and distinct
  whenever any identity component (id, seed, mode, a knob value, the
  package version) differs.
"""

from __future__ import annotations

import math
import tempfile

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.base import Claim, ExperimentResult, canonical_cell
from repro.store import ResultStore, cache_key, canonical_json, make_record
from repro.store.records import record_result

# -- strategies -------------------------------------------------------------

_names = st.text(
    alphabet="abcdefghij_", min_size=1, max_size=10
).filter(lambda s: not s.startswith("_"))

_scalars = st.one_of(
    st.booleans(),
    st.integers(min_value=-(2**40), max_value=2**40),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=12),
)

_param_values = st.one_of(_scalars, st.lists(_scalars, max_size=3))

_params = st.dictionaries(_names, _param_values, max_size=4)

# cells may additionally be non-finite floats and numpy scalars — exactly
# the values experiment tables produce
_cells = st.one_of(
    _scalars,
    st.floats(allow_nan=True, allow_infinity=True),
    st.sampled_from(
        [np.float64(0.25), np.int64(7), np.bool_(True), np.float64("nan")]
    ),
    st.none(),
)


@st.composite
def _results(draw) -> ExperimentResult:
    width = draw(st.integers(min_value=1, max_value=4))
    columns = [f"col{i}" for i in range(width)]
    rows = draw(
        st.lists(
            st.lists(_cells, min_size=width, max_size=width), max_size=4
        )
    )
    claims = draw(
        st.lists(
            st.builds(
                Claim,
                description=st.text(max_size=20),
                holds=st.booleans(),
                detail=st.text(max_size=20),
            ),
            max_size=3,
        )
    )
    return ExperimentResult(
        experiment_id="a5",
        title=draw(st.text(max_size=20)),
        paper_reference=draw(st.text(max_size=20)),
        columns=columns,
        rows=rows,
        claims=claims,
        notes=draw(st.text(max_size=20)),
    )


# -- round-trip -------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(result=_results())
def test_payload_roundtrip_identical(result):
    payload = result.to_payload()
    rebuilt = ExperimentResult.from_payload(payload)
    # payload equality covers every cell bit-for-bit (NaN included: both
    # sides canonicalize to the same tagged object)
    assert rebuilt.to_payload() == payload
    assert rebuilt.claims == list(result.claims)


@settings(max_examples=25, deadline=None)
@given(result=_results(), params=_params, seed=st.integers(0, 2**31 - 1))
def test_store_write_read_identical_record(result, params, seed):
    record = make_record(
        "a5", seed=seed, fast=True, params=params, result=result
    )
    with tempfile.TemporaryDirectory() as tmp:
        store = ResultStore(tmp)
        store.put(record)
        reread = ResultStore(tmp)
        assert reread.get(record["key"]) == record
        rebuilt = record_result(reread.get(record["key"]))
        assert rebuilt.to_payload() == result.to_payload()


@settings(max_examples=60, deadline=None)
@given(value=st.floats(allow_nan=True, allow_infinity=True))
def test_float_cells_roundtrip_exactly(value):
    encoded = canonical_cell(value)
    decoded = ExperimentResult.from_payload(
        {
            "experiment_id": "a5",
            "title": "",
            "paper_reference": "",
            "columns": ["v"],
            "rows": [[encoded]],
            "claims": [],
        }
    ).rows[0][0]
    if math.isnan(value):
        assert math.isnan(decoded)
    else:
        assert decoded == value
        # repr-stability: canonical JSON of the same float is identical
        assert canonical_json(encoded) == canonical_json(canonical_cell(value))


# -- cache keys -------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(params=_params, seed=st.integers(0, 2**31 - 1), fast=st.booleans())
def test_cache_key_ignores_param_insertion_order(params, seed, fast):
    shuffled = dict(reversed(list(params.items())))
    assert cache_key("e01", seed, fast, params) == cache_key(
        "e01", seed, fast, shuffled
    )


@settings(max_examples=60, deadline=None)
@given(params=_params, seed=st.integers(0, 2**30 - 1), fast=st.booleans())
def test_cache_key_unique_across_identity_changes(params, seed, fast):
    key = cache_key("e01", seed, fast, params)
    assert cache_key("e02", seed, fast, params) != key
    assert cache_key("e01", seed + 1, fast, params) != key
    assert cache_key("e01", seed, not fast, params) != key
    assert cache_key("e01", seed, fast, params, version="0.0.0-other") != key
    # "zz" cannot be generated by the name alphabet, so this always adds
    # a genuinely new axis
    assert cache_key("e01", seed, fast, {**params, "zz": 1}) != key


@settings(max_examples=60, deadline=None)
@given(params=_params, value=_param_values)
def test_cache_key_sensitive_to_param_values(params, value):
    base = {**params, "knob": canonical_cell(value)}
    changed = {**params, "knob": [canonical_cell(value), "sentinel"]}
    assert cache_key("e01", 0, True, base) != cache_key("e01", 0, True, changed)


def test_cache_key_is_hex_sha256():
    key = cache_key("a5", 0, True)
    assert len(key) == 64
    int(key, 16)  # raises if not hex
