"""Unit tests for the JSONL result store."""

import json

import pytest

from repro.errors import ModelError
from repro.experiments import run_experiment
from repro.store import ResultStore, cache_key, make_record, record_result
from repro.store.records import validate_record


@pytest.fixture(scope="module")
def a5_result():
    return run_experiment("a5", seed=0, fast=True)


class TestRecords:
    def test_make_record_includes_key_and_identity(self, a5_result):
        record = make_record("a5", seed=0, fast=True, result=a5_result)
        assert record["key"] == cache_key("a5", 0, True)
        assert record["experiment_id"] == "a5"
        assert record["result"]["passed"] is True
        validate_record(record)

    def test_record_result_roundtrips_bit_for_bit(self, a5_result):
        record = make_record("a5", seed=0, fast=True, result=a5_result)
        rebuilt = record_result(record)
        assert [list(r) for r in rebuilt.rows] == [
            list(r) for r in a5_result.rows
        ]
        assert rebuilt.claims == a5_result.claims
        assert rebuilt.notes == a5_result.notes

    def test_mismatched_result_id_rejected(self, a5_result):
        with pytest.raises(ModelError, match="a result of 'a5'"):
            make_record("a4", seed=0, fast=True, result=a5_result)

    def test_record_without_result_payload(self):
        record = make_record("a5", seed=1)
        with pytest.raises(ModelError, match="no result payload"):
            record_result(record)

    def test_tampered_key_fails_validation(self, a5_result):
        record = make_record("a5", seed=0, result=a5_result)
        record["seed"] = 1  # identity no longer matches the key
        with pytest.raises(ModelError, match="does not match its identity"):
            validate_record(record)

    def test_version_changes_key(self):
        assert cache_key("a5", 0, True, version="1.0.0") != cache_key(
            "a5", 0, True, version="1.0.1"
        )


class TestResultStore:
    def test_put_get_contains(self, tmp_path, a5_result):
        store = ResultStore(tmp_path)
        record = make_record("a5", seed=0, result=a5_result)
        key = store.put(record)
        assert key in store
        assert store.get(key) == record
        assert len(store) == 1
        assert store.experiment_ids() == ["a5"]

    def test_fresh_instance_reads_what_was_written(self, tmp_path, a5_result):
        record = make_record("a5", seed=3, result=a5_result)
        ResultStore(tmp_path).put(record)
        reread = ResultStore(tmp_path)
        assert reread.get(record["key"]) == record

    def test_explicit_jsonl_path(self, tmp_path, a5_result):
        path = tmp_path / "mine.jsonl"
        store = ResultStore(path)
        store.put(make_record("a5", seed=0, result=a5_result))
        assert store.path == path
        assert path.exists()
        assert len(ResultStore(path)) == 1

    def test_missing_file_is_empty_store(self, tmp_path):
        store = ResultStore(tmp_path / "nowhere")
        assert len(store) == 0
        assert store.keys() == []

    def test_truncated_trailing_line_skipped_with_warning(
        self, tmp_path, a5_result
    ):
        store = ResultStore(tmp_path)
        store.put(make_record("a5", seed=0, result=a5_result))
        store.put(make_record("a5", seed=1, result=None))
        # simulate an interrupt mid-append: chop the last record in half
        content = store.path.read_text()
        store.path.write_text(content[: len(content) - 40])
        with pytest.warns(UserWarning, match="skipping unreadable record"):
            reread = ResultStore(tmp_path).load()
        assert len(reread) == 1
        assert cache_key("a5", 0, True) in reread

    def test_append_after_truncated_tail_starts_a_fresh_line(
        self, tmp_path, a5_result
    ):
        """A put() after an interrupt must not merge into the partial line.

        Regression: without the newline repair, the record written on
        resume lands on the same line as the truncated garbage, stays
        unreadable forever, and the point is recomputed on *every* resume.
        """
        store = ResultStore(tmp_path)
        store.put(make_record("a5", seed=0, result=a5_result))
        store.put(make_record("a5", seed=1, result=a5_result))
        content = store.path.read_text()
        store.path.write_text(content[: len(content) - 40])  # kill mid-append
        with pytest.warns(UserWarning):
            recovering = ResultStore(tmp_path).load()
        recovering.put(make_record("a5", seed=1, result=a5_result))
        # second recovery reads BOTH records (the garbage line itself stays
        # in the file and is skipped, but no longer swallows its successor)
        with pytest.warns(UserWarning):
            healed = ResultStore(tmp_path).load()
        assert len(healed) == 2
        assert cache_key("a5", 1, True) in healed

    def test_duplicate_keys_resolve_last_wins(self, tmp_path):
        store = ResultStore(tmp_path)
        record = make_record("a5", seed=0)
        store.put(record)
        shadow = dict(record)
        shadow["result"] = {"passed": True, "marker": "second-write"}
        store.put(shadow)
        reread = ResultStore(tmp_path)
        assert len(reread) == 1
        assert reread.get(record["key"])["result"]["marker"] == "second-write"

    def test_hand_edited_record_skipped_not_fatal(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(make_record("a5", seed=0))
        with open(store.path, "a", encoding="utf-8") as handle:
            bogus = make_record("a4", seed=9)
            bogus["seed"] = 7  # key no longer matches identity
            handle.write(json.dumps(bogus) + "\n")
        with pytest.warns(UserWarning, match="skipping unreadable record"):
            reread = ResultStore(tmp_path).load()
        assert reread.keys() == [cache_key("a5", 0, True)]

    def test_records_filter_by_experiment(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(make_record("a5", seed=0))
        store.put(make_record("a4", seed=0))
        store.put(make_record("a5", seed=1))
        assert len(store.records("a5")) == 2
        assert len(store.records("a4")) == 1
        assert store.experiment_ids() == ["a5", "a4"]
