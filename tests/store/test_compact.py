"""Tests for ResultStore.compact() and the compact_store CLI tool."""

import json
import warnings

import pytest

from repro.experiments import run_experiment
from repro.store import ResultStore, make_record


@pytest.fixture(scope="module")
def records():
    results = {
        seed: run_experiment("a5", seed=seed, fast=True) for seed in (0, 1, 2)
    }
    return [
        make_record("a5", seed=seed, result=result)
        for seed, result in results.items()
    ]


class TestCompact:
    def test_drops_superseded_duplicates(self, tmp_path, records):
        store = ResultStore(tmp_path)
        for record in records:
            store.put(record)
        for record in records[:2]:  # re-appended: shadowed duplicates
            store.put(record)
        lines_before = store.path.read_text().count("\n")
        assert lines_before == 5
        stats = store.compact()
        assert stats["records"] == 3
        assert stats["dropped_duplicates"] == 2
        assert stats["dropped_unreadable"] == 0
        assert stats["bytes_after"] < stats["bytes_before"]
        assert store.path.read_text().count("\n") == 3

    def test_preserves_survivors_byte_for_byte(self, tmp_path, records):
        store = ResultStore(tmp_path)
        for record in records:
            store.put(record)
        before = {r["key"]: r for r in ResultStore(tmp_path).load()}
        store.put(records[0])  # duplicate
        store.compact()
        after = {r["key"]: r for r in ResultStore(tmp_path).load()}
        assert after == before

    def test_drops_partial_trailing_line(self, tmp_path, records):
        store = ResultStore(tmp_path)
        store.put(records[0])
        with open(store.path, "a", encoding="utf-8") as handle:
            handle.write('{"key": "interrupted mid-wri')
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            stats = ResultStore(tmp_path).compact()
        assert stats["records"] == 1
        assert stats["dropped_unreadable"] == 1
        # the compacted file loads silently — no partial lines left
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            reloaded = ResultStore(tmp_path).load()
        assert len(reloaded) == 1
        content = store.path.read_text()
        assert content.endswith("\n")
        for line in content.splitlines():
            json.loads(line)

    def test_missing_store_is_a_noop(self, tmp_path):
        stats = ResultStore(tmp_path / "nowhere").compact()
        assert stats == {
            "records": 0,
            "dropped_duplicates": 0,
            "dropped_unreadable": 0,
            "bytes_before": 0,
            "bytes_after": 0,
        }

    def test_store_stays_usable_after_compact(self, tmp_path, records):
        store = ResultStore(tmp_path)
        store.put(records[0])
        store.put(records[0])
        store.compact()
        store.put(records[1])  # append-after-compact works
        assert len(ResultStore(tmp_path).load()) == 2


class TestCompactTool:
    def _run(self, argv):
        import importlib.util
        import pathlib

        path = (
            pathlib.Path(__file__).resolve().parents[2]
            / "tools"
            / "compact_store.py"
        )
        spec = importlib.util.spec_from_file_location("compact_store", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module.main(argv)

    def test_tool_compacts_and_reports(self, tmp_path, records, capsys):
        store = ResultStore(tmp_path)
        for record in records:
            store.put(record)
        store.put(records[0])
        assert self._run(["--store", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "kept 3 records" in out
        assert "dropped 1 superseded duplicates" in out
        assert len(ResultStore(tmp_path).load()) == 3

    def test_tool_dry_run_leaves_file_alone(self, tmp_path, records, capsys):
        store = ResultStore(tmp_path)
        store.put(records[0])
        store.put(records[0])
        before = store.path.read_bytes()
        assert self._run(["--store", str(tmp_path), "--dry-run"]) == 0
        assert "dry run" in capsys.readouterr().out
        assert store.path.read_bytes() == before

    def test_tool_missing_store(self, tmp_path, capsys):
        assert self._run(["--store", str(tmp_path / "nope")]) == 0
        assert "nothing to compact" in capsys.readouterr().out
