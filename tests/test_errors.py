"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    ConvergenceError,
    EmptyPopulationError,
    IncompatibleSpaceError,
    ModelError,
    NotEnumerableError,
    ProbabilityError,
    ReproError,
)


@pytest.mark.parametrize(
    "exception_class",
    [
        ModelError,
        ProbabilityError,
        IncompatibleSpaceError,
        NotEnumerableError,
        ConvergenceError,
        EmptyPopulationError,
    ],
)
def test_all_errors_derive_from_repro_error(exception_class):
    assert issubclass(exception_class, ReproError)


def test_probability_error_is_model_error():
    assert issubclass(ProbabilityError, ModelError)


def test_incompatible_space_error_is_model_error():
    assert issubclass(IncompatibleSpaceError, ModelError)


def test_errors_carry_messages():
    error = ModelError("something specific")
    assert "something specific" in str(error)
