"""Tests for the fault-universe generators."""

import numpy as np
import pytest

from repro.demand import DemandPartition, DemandSpace
from repro.errors import ModelError
from repro.faults import (
    blockwise_universe,
    clustered_universe,
    disjoint_universe,
    overlapping_pair,
    uniform_random_universe,
    zipf_sized_universe,
)

SPACE = DemandSpace(100)


class TestUniformRandom:
    def test_counts_and_sizes(self):
        universe = uniform_random_universe(SPACE, 10, 5, rng=0)
        assert len(universe) == 10
        assert all(fault.size == 5 for fault in universe)

    def test_reproducible(self):
        a = uniform_random_universe(SPACE, 5, 3, rng=1)
        b = uniform_random_universe(SPACE, 5, 3, rng=1)
        for fa, fb in zip(a, b):
            np.testing.assert_array_equal(fa.region, fb.region)

    def test_zero_faults(self):
        assert len(uniform_random_universe(SPACE, 0, 5, rng=0)) == 0

    def test_invalid_region_size(self):
        with pytest.raises(ModelError):
            uniform_random_universe(SPACE, 1, 0, rng=0)
        with pytest.raises(ModelError):
            uniform_random_universe(SPACE, 1, 101, rng=0)

    def test_negative_faults_rejected(self):
        with pytest.raises(ModelError):
            uniform_random_universe(SPACE, -1, 5, rng=0)


class TestClustered:
    def test_clustering_reduces_spread(self):
        tight = clustered_universe(SPACE, 20, 6, concentration=20.0, rng=2)
        loose = clustered_universe(SPACE, 20, 6, concentration=0.01, rng=2)

        def mean_spread(universe):
            spreads = []
            for fault in universe:
                region = np.sort(fault.region)
                spreads.append(region[-1] - region[0])
            return np.mean(spreads)

        assert mean_spread(tight) < mean_spread(loose)

    def test_invalid_concentration(self):
        with pytest.raises(ModelError):
            clustered_universe(SPACE, 1, 2, concentration=0.0, rng=0)


class TestBlockwise:
    def test_faults_confined_to_blocks(self):
        partition = DemandPartition.equal_blocks(SPACE, 4)
        universe = blockwise_universe(partition, faults_per_block=3, region_size=5, rng=3)
        assert len(universe) == 12
        for index, fault in enumerate(universe):
            block = partition.block(index // 3)
            assert set(fault.region.tolist()) <= set(block.tolist())

    def test_region_capped_at_block_size(self):
        partition = DemandPartition.equal_blocks(DemandSpace(8), 4)
        universe = blockwise_universe(partition, 1, region_size=10, rng=0)
        assert all(fault.size == 2 for fault in universe)


class TestDisjoint:
    def test_regions_disjoint(self):
        universe = disjoint_universe(SPACE, 10, 7, rng=4)
        counts = universe.coverage_counts()
        assert counts.max() <= 1

    def test_overflow_rejected(self):
        with pytest.raises(ModelError):
            disjoint_universe(DemandSpace(10), 3, 4, rng=0)


class TestZipfSized:
    def test_sizes_decay(self):
        universe = zipf_sized_universe(SPACE, 8, max_region_size=20, exponent=1.0, rng=5)
        sizes = [fault.size for fault in universe]
        assert sizes[0] == 20
        assert all(sizes[i] >= sizes[i + 1] for i in range(len(sizes) - 1))
        assert sizes[-1] >= 1

    def test_zero_exponent_constant_sizes(self):
        universe = zipf_sized_universe(SPACE, 5, max_region_size=10, exponent=0.0, rng=6)
        assert all(fault.size == 10 for fault in universe)


class TestOverlappingPair:
    def test_shared_and_unique_ids(self):
        universe, ids_a, ids_b = overlapping_pair(
            SPACE, n_shared=3, n_unique_each=4, region_size=5, rng=7
        )
        assert len(universe) == 11
        shared = set(ids_a.tolist()) & set(ids_b.tolist())
        assert shared == {0, 1, 2}
        assert len(ids_a) == len(ids_b) == 7

    def test_disjoint_unique_regions_split_halves(self):
        universe, ids_a, ids_b = overlapping_pair(
            DemandSpace(100),
            n_shared=0,
            n_unique_each=3,
            region_size=5,
            rng=8,
            disjoint_unique_regions=True,
        )
        for fault_id in ids_a:
            assert universe[int(fault_id)].region.max() < 50
        for fault_id in ids_b:
            assert universe[int(fault_id)].region.min() >= 50

    def test_too_small_space_rejected(self):
        with pytest.raises(ModelError):
            overlapping_pair(
                DemandSpace(6),
                n_shared=0,
                n_unique_each=1,
                region_size=5,
                rng=0,
                disjoint_unique_regions=True,
            )
