"""Tests for Fault."""

import numpy as np
import pytest

from repro.demand import DemandSpace
from repro.errors import ModelError
from repro.faults import Fault


@pytest.fixture
def fault(space):
    return Fault(space, np.array([1, 3, 5]), identifier=0)


class TestConstruction:
    def test_region_canonicalised(self, space):
        fault = Fault(space, np.array([5, 1, 5]), identifier=2)
        np.testing.assert_array_equal(fault.region, [1, 5])

    def test_empty_region_rejected(self, space):
        with pytest.raises(ModelError):
            Fault(space, np.array([], dtype=np.int64), identifier=0)

    def test_negative_identifier_rejected(self, space):
        with pytest.raises(ModelError):
            Fault(space, np.array([0]), identifier=-1)

    def test_out_of_space_region_rejected(self, space):
        with pytest.raises(ModelError):
            Fault(space, np.array([10]), identifier=0)


class TestQueries:
    def test_size(self, fault):
        assert fault.size == 3

    def test_covers(self, fault):
        assert fault.covers(3)
        assert not fault.covers(2)

    def test_mask(self, fault):
        expected = np.zeros(10, dtype=bool)
        expected[[1, 3, 5]] = True
        np.testing.assert_array_equal(fault.mask, expected)

    def test_triggered_by_hit(self, fault):
        assert fault.triggered_by([0, 3])

    def test_triggered_by_miss(self, fault):
        assert not fault.triggered_by([0, 2, 4])

    def test_triggered_by_empty(self, fault):
        assert not fault.triggered_by([])

    def test_overlap(self, space):
        a = Fault(space, np.array([0, 1, 2]), identifier=0)
        b = Fault(space, np.array([2, 3]), identifier=1)
        assert a.overlap(b) == 1

    def test_overlap_disjoint(self, space):
        a = Fault(space, np.array([0]), identifier=0)
        b = Fault(space, np.array([1]), identifier=1)
        assert a.overlap(b) == 0
