"""Tests for the Bernoulli difficulty closed forms."""

import numpy as np
import pytest

from repro.errors import ModelError, ProbabilityError
from repro.faults import (
    difficulty_from_bernoulli,
    tested_difficulty_given_suite,
)


class TestDifficultyFromBernoulli:
    def test_known_values(self, universe):
        theta = difficulty_from_bernoulli(universe, [0.5, 0.25, 0.4])
        # demand 0: only fault 0 -> 0.5
        assert theta[0] == pytest.approx(0.5)
        # demand 2: only fault 1 -> 0.25
        assert theta[2] == pytest.approx(0.25)
        # demand 4: faults 1 and 2 -> 1 - 0.75*0.6 = 0.55
        assert theta[4] == pytest.approx(0.55)
        # demand 9: uncovered -> 0
        assert theta[9] == 0.0

    def test_zero_probabilities(self, universe):
        theta = difficulty_from_bernoulli(universe, [0.0, 0.0, 0.0])
        np.testing.assert_allclose(theta, 0.0)

    def test_certain_fault(self, universe):
        theta = difficulty_from_bernoulli(universe, [1.0, 0.0, 0.0])
        assert theta[0] == 1.0
        assert theta[1] == 1.0
        assert theta[2] == 0.0

    def test_all_certain(self, universe):
        theta = difficulty_from_bernoulli(universe, [1.0, 1.0, 1.0])
        np.testing.assert_array_equal(
            theta[:6], np.ones(6)
        )

    def test_wrong_length_rejected(self, universe):
        with pytest.raises(ModelError):
            difficulty_from_bernoulli(universe, [0.5])

    def test_out_of_range_rejected(self, universe):
        with pytest.raises(ProbabilityError):
            difficulty_from_bernoulli(universe, [0.5, 1.5, 0.2])

    def test_matches_brute_force_enumeration(self, universe, rng):
        probs = np.array([0.3, 0.6, 0.15])
        theta = difficulty_from_bernoulli(universe, probs)
        # brute force over all 8 fault subsets
        expected = np.zeros(10)
        for bits in range(8):
            ids = [i for i in range(3) if bits >> i & 1]
            probability = 1.0
            for i in range(3):
                probability *= probs[i] if i in ids else 1 - probs[i]
            mask = universe.union_mask(ids)
            expected += probability * mask
        np.testing.assert_allclose(theta, expected, atol=1e-12)


class TestTestedDifficulty:
    def test_suite_hitting_fault_removes_it(self, universe):
        probs = [0.5, 0.25, 0.4]
        xi = tested_difficulty_given_suite(universe, probs, [0])
        assert xi[0] == 0.0  # fault 0 triggered and removed
        assert xi[1] == 0.0
        assert xi[2] == pytest.approx(0.25)  # fault 1 untouched

    def test_shared_demand_partial_removal(self, universe):
        # suite {2} triggers fault 1 only; demand 4 still covered by fault 2
        xi = tested_difficulty_given_suite(universe, [0.5, 0.25, 0.4], [2])
        assert xi[4] == pytest.approx(0.4)

    def test_empty_suite_is_theta(self, universe):
        probs = [0.5, 0.25, 0.4]
        xi = tested_difficulty_given_suite(universe, probs, [])
        theta = difficulty_from_bernoulli(universe, probs)
        np.testing.assert_allclose(xi, theta)

    def test_exhaustive_suite_removes_everything(self, universe, space):
        xi = tested_difficulty_given_suite(
            universe, [0.5, 0.25, 0.4], list(range(10))
        )
        np.testing.assert_allclose(xi, 0.0)

    def test_monotone_in_suite(self, universe):
        probs = [0.5, 0.25, 0.4]
        xi_small = tested_difficulty_given_suite(universe, probs, [0])
        xi_large = tested_difficulty_given_suite(universe, probs, [0, 2])
        assert np.all(xi_large <= xi_small + 1e-15)

    def test_never_exceeds_theta(self, universe, rng):
        probs = rng.random(3)
        theta = difficulty_from_bernoulli(universe, probs)
        for suite in ([0], [4], [9], [1, 3, 5]):
            xi = tested_difficulty_given_suite(universe, probs, suite)
            assert np.all(xi <= theta + 1e-15)
