"""Tests for FaultUniverse."""

import numpy as np
import pytest

from repro.demand import DemandSpace
from repro.errors import IncompatibleSpaceError, ModelError
from repro.faults import Fault, FaultUniverse


class TestConstruction:
    def test_from_regions(self, universe):
        assert len(universe) == 3
        assert universe[0].size == 2

    def test_identifier_convention_enforced(self, space):
        wrong = Fault(space, np.array([0]), identifier=5)
        with pytest.raises(ModelError):
            FaultUniverse(space, (wrong,))

    def test_non_fault_rejected(self, space):
        with pytest.raises(ModelError):
            FaultUniverse(space, ("not a fault",))

    def test_empty_universe_allowed(self, space):
        universe = FaultUniverse(space, ())
        assert len(universe) == 0
        assert universe.coverage.shape == (0, 10)


class TestCoverage:
    def test_coverage_matrix_shape(self, universe):
        assert universe.coverage.shape == (3, 10)

    def test_faults_covering_shared_demand(self, universe):
        np.testing.assert_array_equal(universe.faults_covering(4), [1, 2])

    def test_faults_covering_uncovered_demand(self, universe):
        assert universe.faults_covering(9).size == 0

    def test_coverage_counts(self, universe):
        counts = universe.coverage_counts()
        assert counts[4] == 2
        assert counts[0] == 1
        assert counts[9] == 0


class TestTriggering:
    def test_triggered_by(self, universe):
        np.testing.assert_array_equal(universe.triggered_by([0, 4]), [0, 1, 2])

    def test_triggered_by_single(self, universe):
        np.testing.assert_array_equal(universe.triggered_by([2]), [1])

    def test_triggered_by_nothing(self, universe):
        assert universe.triggered_by([9]).size == 0
        assert universe.triggered_by([]).size == 0

    def test_surviving_complements_triggered(self, universe):
        for demands in ([0], [4], [9], [0, 2, 5]):
            triggered = set(universe.triggered_by(demands).tolist())
            surviving = set(universe.surviving(demands).tolist())
            assert triggered | surviving == {0, 1, 2}
            assert triggered & surviving == set()

    def test_surviving_empty_suite_is_everything(self, universe):
        np.testing.assert_array_equal(universe.surviving([]), [0, 1, 2])


class TestMasses:
    def test_region_masses_uniform(self, universe, profile):
        masses = universe.region_masses(profile.probabilities)
        np.testing.assert_allclose(masses, [0.2, 0.3, 0.2])

    def test_region_masses_length_check(self, universe):
        with pytest.raises(IncompatibleSpaceError):
            universe.region_masses(np.ones(3))


class TestMasksAndIds:
    def test_union_mask(self, universe):
        mask = universe.union_mask([0, 2])
        np.testing.assert_array_equal(
            np.flatnonzero(mask), [0, 1, 4, 5]
        )

    def test_union_mask_empty(self, universe):
        assert not universe.union_mask([]).any()

    def test_validate_fault_ids_rejects(self, universe):
        with pytest.raises(ModelError):
            universe.validate_fault_ids([3])

    def test_presence_mask(self, universe):
        mask = universe.presence_mask([1])
        np.testing.assert_array_equal(mask, [False, True, False])

    def test_restrict(self, universe):
        sub = universe.restrict([1, 2])
        assert len(sub) == 2
        np.testing.assert_array_equal(sub[0].region, [2, 3, 4])

    def test_overlap_matrix(self, universe):
        matrix = universe.overlap_matrix()
        assert matrix[1, 2] == 1  # share demand 4
        assert matrix[0, 1] == 0
        assert matrix[0, 0] == 2  # own size

    def test_describe_mentions_counts(self, universe):
        text = universe.describe()
        assert "n_faults=3" in text
