"""Tests for the experiment registry and result types."""

import pytest

from repro.errors import ModelError
from repro.experiments import all_experiment_ids, get_runner, run_experiment
from repro.experiments.base import Claim, ExperimentResult
from repro.experiments.registry import register


class TestRegistry:
    def test_all_ids_present(self):
        ids = all_experiment_ids()
        expected = {f"e{n:02d}" for n in range(1, 15)} | {
            "a1",
            "a2",
            "a3",
            "a4",
            "a5",
        }
        assert expected <= set(ids)

    def test_e_ids_listed_before_a_ids(self):
        ids = all_experiment_ids()
        first_a = min(i for i, x in enumerate(ids) if x.startswith("a"))
        last_e = max(i for i, x in enumerate(ids) if x.startswith("e"))
        assert last_e < first_a

    def test_unknown_id_raises_with_listing(self):
        with pytest.raises(ModelError, match="e01"):
            get_runner("zz")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ModelError):
            register("e01")(lambda seed, fast: None)

    def test_runner_is_callable(self):
        runner = get_runner("a5")
        result = runner(0, True)
        assert isinstance(result, ExperimentResult)


class TestResultTypes:
    def test_passed_requires_all_claims(self):
        good = Claim("x", True)
        bad = Claim("y", False, "detail")
        result = ExperimentResult(
            experiment_id="t",
            title="t",
            paper_reference="t",
            columns=["a"],
            rows=[[1]],
            claims=[good, bad],
        )
        assert not result.passed
        assert result.claim_failures() == [bad]

    def test_all_claims_pass(self):
        result = ExperimentResult(
            experiment_id="t",
            title="t",
            paper_reference="t",
            columns=["a"],
            rows=[],
            claims=[Claim("x", True)],
        )
        assert result.passed
        assert result.claim_failures() == []
