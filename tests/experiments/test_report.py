"""Tests for the text reporter."""

from repro.experiments.base import Claim, ExperimentResult
from repro.experiments.report import format_result, format_summary


def _result(passed: bool) -> ExperimentResult:
    return ExperimentResult(
        experiment_id="e99",
        title="A demo experiment",
        paper_reference="eq. (0)",
        columns=["name", "value", "ok"],
        rows=[["row one", 0.123456789, True], ["tiny", 1.2e-7, False]],
        claims=[Claim("the demo claim", passed, "42")],
        notes="demo notes",
    )


class TestFormatResult:
    def test_contains_title_and_status(self):
        text = format_result(_result(True))
        assert "A demo experiment" in text
        assert "(PASS)" in text
        assert "eq. (0)" in text
        assert "demo notes" in text

    def test_fail_status(self):
        text = format_result(_result(False))
        assert "(FAIL)" in text
        assert "FAIL the demo claim" in text

    def test_float_formatting(self):
        text = format_result(_result(True))
        assert "0.123457" in text       # 6 decimal places
        assert "1.2000e-07" in text     # scientific for tiny values

    def test_bool_formatting(self):
        text = format_result(_result(True))
        assert "yes" in text
        assert "no" in text

    def test_columns_aligned(self):
        text = format_result(_result(True))
        lines = [l for l in text.splitlines() if "row one" in l or "tiny" in l]
        assert len(lines) == 2


class TestFormatSummary:
    def test_one_line_per_result(self):
        results = [_result(True), _result(False)]
        text = format_summary(results)
        assert text.count("e99") == 2
        assert "PASS" in text
        assert "FAIL" in text
        assert "1/1" in text
        assert "0/1" in text
