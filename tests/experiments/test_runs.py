"""Every registered experiment must run green in fast mode.

These are the executable form of EXPERIMENTS.md: each experiment's claims
encode the paper's qualitative results, so a claim failure here is a
reproduction regression.
"""

import pytest

from repro.experiments import all_experiment_ids, format_result, run_experiment

CHEAP_IDS = [
    "e01", "e02", "e13", "a1", "a2", "a3", "a4", "a5", "a6",
    "c1", "c2", "c3", "m1", "m2", "m3", "x1",
]
SIMULATION_IDS = [
    "e03",
    "e04",
    "e05",
    "e06",
    "e07",
    "e08",
    "e09",
    "e10",
    "e11",
    "e12",
    "e14",
    "x2",
    "x3",
]


@pytest.mark.parametrize("experiment_id", CHEAP_IDS)
def test_cheap_experiments_pass(experiment_id):
    result = run_experiment(experiment_id, seed=0, fast=True)
    assert result.passed, format_result(result)


@pytest.mark.slow
@pytest.mark.parametrize("experiment_id", SIMULATION_IDS)
def test_simulation_experiments_pass(experiment_id):
    result = run_experiment(experiment_id, seed=0, fast=True)
    assert result.passed, format_result(result)


def test_registry_covers_design_md_index():
    """DESIGN.md promises E1-E14 and A1-A5; the registry must provide them."""
    ids = set(all_experiment_ids())
    for n in range(1, 15):
        assert f"e{n:02d}" in ids
    for n in range(1, 6):
        assert f"a{n}" in ids


def test_experiments_have_paper_references():
    for experiment_id in ("e01", "e07", "e12", "a5"):
        result = run_experiment(experiment_id, seed=0, fast=True)
        assert result.paper_reference
        assert result.columns
        assert result.rows


def test_different_seed_still_passes():
    """The claims are structural, not seed-lucky: a different seed must
    pass too (spot-checked on the cheapest experiments)."""
    for experiment_id in ("e01", "e13", "a5"):
        result = run_experiment(experiment_id, seed=7, fast=True)
        assert result.passed, format_result(result)
