"""Tests for the shared experiment scenarios."""

import numpy as np
import pytest

from repro.experiments.models import (
    forced_design_scenario,
    standard_scenario,
    tiny_enumerable_scenario,
)


class TestStandardScenario:
    def test_shapes(self):
        scenario = standard_scenario(seed=0)
        assert scenario.space.size == 80
        assert len(scenario.universe) == 14
        assert scenario.generator.size == 30

    def test_reproducible(self):
        a = standard_scenario(seed=5)
        b = standard_scenario(seed=5)
        np.testing.assert_allclose(
            a.population.difficulty(), b.population.difficulty()
        )

    def test_difficulty_varies(self):
        """The scenario must have non-constant difficulty or the whole
        experiment suite degenerates."""
        scenario = standard_scenario(seed=0)
        theta = scenario.population.difficulty()
        assert theta.std() > 0.01


class TestForcedDesignScenario:
    def test_overlap_structure(self):
        scenario = forced_design_scenario(seed=0, n_shared=4, n_unique_each=6)
        probs_a = scenario.population_a.presence_probs
        probs_b = scenario.population_b.presence_probs
        both = np.flatnonzero((probs_a > 0) & (probs_b > 0))
        assert both.size == 4
        assert np.flatnonzero(probs_a > 0).size == 10
        assert np.flatnonzero(probs_b > 0).size == 10

    def test_zipf_usage_option(self):
        scenario = forced_design_scenario(seed=0, usage_zipf_exponent=1.0)
        probs = scenario.profile.probabilities
        assert probs[0] > probs[-1]

    def test_disjoint_unique_regions(self):
        scenario = forced_design_scenario(
            seed=0, n_shared=0, n_unique_each=4, disjoint_unique_regions=True
        )
        theta_a = scenario.population_a.difficulty()
        theta_b = scenario.population_b.difficulty()
        half = scenario.space.size // 2
        assert theta_a[half:].max() == 0.0
        assert theta_b[:half].max() == 0.0


class TestTinyEnumerableScenario:
    def test_fully_enumerable(self):
        scenario = tiny_enumerable_scenario()
        versions = list(scenario.population.enumerate())
        suites = list(scenario.generator.enumerate())
        assert len(versions) == 4
        assert len(suites) == 4
        assert sum(p for _, p in versions) == pytest.approx(1.0)
        assert sum(p for _, p in suites) == pytest.approx(1.0)

    def test_difficulty_nonconstant(self):
        scenario = tiny_enumerable_scenario()
        theta = scenario.population.difficulty()
        assert theta.max() > theta.min()

    def test_same_suite_excess_strictly_positive(self):
        """The tiny model must actually exhibit the eq. (20) phenomenon."""
        from repro.core import SameSuite, joint_failure_probability

        scenario = tiny_enumerable_scenario()
        decomposition = joint_failure_probability(
            SameSuite(scenario.generator), scenario.population
        )
        assert decomposition.max_excess > 1e-6
