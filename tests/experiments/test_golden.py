"""Golden-value regression suite over the whole experiment catalog.

Every registered experiment runs in fast mode at the golden seed and must
reproduce its checked-in snapshot (``golden/<id>.json``) — claim
descriptions and verdicts exactly, numeric cells to a tight relative
tolerance (floats are stored repr-stable, so on the same BLAS stack the
comparison is bit-for-bit; the tolerance only absorbs last-ulp
reduction-order differences across numpy builds).

When an output change is intentional, regenerate with either::

    PYTHONPATH=src python tools/update_golden.py
    PYTHONPATH=src python -m pytest tests/experiments/test_golden.py --update-golden

and commit the snapshot diff.
"""

from __future__ import annotations

import importlib.util
import json
import math
from pathlib import Path

import pytest

from repro.experiments import all_experiment_ids, run_experiment


def _load_update_golden_tool():
    """tools/update_golden.py is the single source of truth for snapshot
    serialization and the pinned run config; import it by path so the test
    and the regeneration CLI can never drift apart."""
    path = Path(__file__).parents[2] / "tools" / "update_golden.py"
    spec = importlib.util.spec_from_file_location("update_golden", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


_TOOL = _load_update_golden_tool()
GOLDEN_DIR = _TOOL.GOLDEN_DIR
GOLDEN_SEED = _TOOL.GOLDEN_SEED

# ids cheap enough for the default (non-slow) tier; everything else is a
# simulation-driven experiment gated behind the `slow` marker, mirroring
# test_runs.py
CHEAP_IDS = {
    "e01", "e02", "e13", "a1", "a2", "a3", "a4", "a5", "a6", "x1",
    # m* read committed campaign measurements — exact, no simulation
    "m1", "m2", "m3",
    # c* localization workloads are small (counter-RNG vectorized rounds)
    "c1", "c2", "c3",
}

ALL_IDS = all_experiment_ids()

_PARAMS = [
    pytest.param(
        experiment_id,
        marks=() if experiment_id in CHEAP_IDS else pytest.mark.slow,
    )
    for experiment_id in ALL_IDS
]

# floats are compared to a relative tolerance rather than bitwise so a
# different BLAS reduction order cannot fail the suite; any real modelling
# change moves numbers by far more than this
_REL_TOL = 1e-9
_ABS_TOL = 1e-12


def _assert_matches(actual, expected, context: str) -> None:
    if isinstance(expected, float) or isinstance(actual, float):
        assert isinstance(actual, (int, float)) and isinstance(
            expected, (int, float)
        ), f"{context}: {actual!r} vs golden {expected!r}"
        assert math.isclose(
            actual, expected, rel_tol=_REL_TOL, abs_tol=_ABS_TOL
        ), f"{context}: {actual!r} vs golden {expected!r}"
    elif isinstance(expected, list):
        assert isinstance(actual, list), f"{context}: {actual!r} is not a list"
        assert len(actual) == len(expected), (
            f"{context}: length {len(actual)} vs golden {len(expected)}"
        )
        for index, (item, golden) in enumerate(zip(actual, expected)):
            _assert_matches(item, golden, f"{context}[{index}]")
    elif isinstance(expected, dict):
        assert isinstance(actual, dict), f"{context}: {actual!r} is not a dict"
        assert set(actual) == set(expected), (
            f"{context}: keys {sorted(actual)} vs golden {sorted(expected)}"
        )
        for key in expected:
            _assert_matches(actual[key], expected[key], f"{context}.{key}")
    else:
        assert actual == expected, f"{context}: {actual!r} vs golden {expected!r}"


@pytest.mark.parametrize("experiment_id", _PARAMS)
def test_golden(experiment_id, request):
    result = run_experiment(
        experiment_id, seed=GOLDEN_SEED, fast=_TOOL.GOLDEN_FAST
    )
    payload = result.to_payload()
    path = _TOOL.snapshot_path(experiment_id)
    if request.config.getoption("--update-golden"):
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(_TOOL.render_snapshot(payload))
        return
    assert path.exists(), (
        f"missing golden snapshot {path.name}; regenerate with "
        f"PYTHONPATH=src python tools/update_golden.py {experiment_id}"
    )
    snapshot = json.loads(path.read_text())
    _assert_matches(payload, snapshot, context=experiment_id)


def test_no_stale_snapshots():
    """Every checked-in snapshot corresponds to a registered experiment."""
    stale = sorted(
        path.stem
        for path in GOLDEN_DIR.glob("*.json")
        if path.stem not in ALL_IDS
    )
    assert not stale, (
        f"snapshots without a registered experiment: {stale}; "
        "tools/update_golden.py removes them"
    )


def test_snapshots_cover_every_experiment():
    """The net has no holes: each registered id has a snapshot on disk."""
    missing = [
        experiment_id
        for experiment_id in ALL_IDS
        if not (GOLDEN_DIR / f"{experiment_id}.json").exists()
    ]
    assert not missing, (
        f"experiments without golden snapshots: {missing}; run "
        "PYTHONPATH=src python tools/update_golden.py"
    )
