"""Experiment-level determinism for the localization c-family.

The counter-based workload RNG promises replication ``i`` the same draws
no matter how the replication range is chunked or sharded, so the
*payload* of a c-experiment — every table cell, claim verdict, and extra
— must be byte-identical under any ``--n-jobs`` setting and between the
``auto`` and ``batch`` engine spellings.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ModelError
from repro.experiments import run_experiment
from repro.experiments.base import set_engine_config


def _payload_bytes(experiment_id: str, engine: str, n_jobs: int) -> bytes:
    previous = set_engine_config(engine=engine, n_jobs=n_jobs)
    try:
        result = run_experiment(experiment_id, seed=0, fast=True)
    finally:
        set_engine_config(engine=previous.engine, n_jobs=previous.n_jobs)
    return json.dumps(result.to_payload(), sort_keys=True).encode()


@pytest.mark.parametrize("experiment_id", ["c1", "c3"])
def test_payload_byte_identical_across_n_jobs(experiment_id):
    baseline = _payload_bytes(experiment_id, "auto", 1)
    assert _payload_bytes(experiment_id, "auto", 2) == baseline
    assert _payload_bytes(experiment_id, "batch", 1) == baseline


def test_compiled_engine_rejected_loudly():
    previous = set_engine_config(engine="compiled", n_jobs=1)
    try:
        with pytest.raises(ModelError, match="no compiled kernels"):
            run_experiment("c3", seed=0, fast=True)
    finally:
        set_engine_config(engine=previous.engine, n_jobs=previous.n_jobs)


def test_scalar_engine_runs_and_agrees_on_outcomes():
    """--engine scalar drives the workload's reference path; its integer
    outcomes (fix effort, reached fraction) match the vectorized path
    exactly, so the claim verdicts cannot flip with the engine."""
    baseline = json.loads(_payload_bytes("c3", "auto", 1))
    scalar = json.loads(_payload_bytes("c3", "scalar", 1))
    assert [claim["holds"] for claim in scalar["claims"]] == [
        claim["holds"] for claim in baseline["claims"]
    ]
    for row_scalar, row_auto in zip(scalar["rows"], baseline["rows"]):
        assert row_scalar[5] == pytest.approx(row_auto[5], rel=1e-12)
