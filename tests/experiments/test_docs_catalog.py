"""The experiment catalog must stay in sync with the registry.

docs/experiments.md is the user-facing map from experiment ids to the
paper claims they reproduce; a registered experiment without a catalog row
(or a stale row for a removed experiment) is a doc bug.  CI also runs
tools/check_experiments_docs.py, which shares the row-parsing convention
tested here.
"""

import pathlib
import sys

import pytest

from repro.experiments import all_experiment_ids

_REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def checker():
    sys.path.insert(0, str(_REPO_ROOT / "tools"))
    try:
        import check_experiments_docs
    finally:
        sys.path.pop(0)
    return check_experiments_docs


@pytest.fixture(scope="module")
def catalog_text():
    path = _REPO_ROOT / "docs" / "experiments.md"
    assert path.exists(), "docs/experiments.md is missing"
    return path.read_text()


def test_every_registered_id_is_documented(checker, catalog_text):
    documented = checker.documented_ids(catalog_text)
    missing = [eid for eid in all_experiment_ids() if eid not in documented]
    assert not missing, f"catalog rows missing for: {missing}"


def test_no_stale_or_duplicate_catalog_rows(checker, catalog_text):
    documented = checker.documented_ids(catalog_text)
    registered = set(all_experiment_ids())
    stale = [eid for eid in documented if eid not in registered]
    assert not stale, f"catalog documents unknown ids: {stale}"
    assert len(documented) == len(set(documented)), "duplicate catalog rows"


def test_checker_script_passes(checker, capsys):
    assert checker.main() == 0
