"""Exit-code and error-path tests for the sweep/aggregate CLI subcommands.

Contract: 0 — success, 1 — experiments ran but claims failed, 2 — usage
error (bad grid file, unknown id, missing store).  Usage errors print to
stderr and never run an experiment.
"""

import json

import pytest

from repro.experiments.__main__ import main
from repro.store import ResultStore

GRID = """
[sweep]
experiments = ["a4", "a5"]
seeds = [0, 1]
"""


@pytest.fixture
def grid_file(tmp_path):
    path = tmp_path / "grid.toml"
    path.write_text(GRID)
    return path


class TestSweepCli:
    def test_sweep_runs_and_resumes(self, grid_file, tmp_path, capsys):
        out = tmp_path / "results"
        argv = ["sweep", "--grid", str(grid_file), "--out", str(out)]
        assert main(argv) == 0
        captured = capsys.readouterr()
        assert "sweep: 4 points, 4 executed, 0 cached" in captured.out
        # resume: everything served from the store
        assert main(argv) == 0
        captured = capsys.readouterr()
        assert "sweep: 4 points, 0 executed, 4 cached" in captured.out

    def test_sweep_resume_after_interrupt(self, grid_file, tmp_path, capsys):
        out = tmp_path / "results"
        argv = ["sweep", "--grid", str(grid_file), "--out", str(out)]
        assert main(argv) == 0
        capsys.readouterr()
        # kill mid-append: drop the tail of the store file
        store_file = out / "records.jsonl"
        content = store_file.read_text()
        store_file.write_text(content[: len(content) - 60])
        with pytest.warns(UserWarning, match="skipping unreadable record"):
            code = main(argv)
        assert code == 0
        captured = capsys.readouterr()
        assert "3 cached" in captured.out
        assert "1 executed" in captured.out

    def test_missing_grid_file_exits_2(self, tmp_path, capsys):
        code = main(["sweep", "--grid", str(tmp_path / "absent.toml")])
        assert code == 2
        assert "grid file not found" in capsys.readouterr().err

    def test_malformed_grid_exits_2(self, tmp_path, capsys):
        path = tmp_path / "bad.toml"
        path.write_text("[sweep\noops")
        assert main(["sweep", "--grid", str(path)]) == 2
        assert "invalid TOML" in capsys.readouterr().err

    def test_unknown_experiment_id_exits_2(self, tmp_path, capsys):
        path = tmp_path / "grid.toml"
        path.write_text('[sweep]\nexperiments = ["zz99"]\n')
        assert main(["sweep", "--grid", str(path)]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_unknown_knob_exits_2(self, tmp_path, capsys):
        path = tmp_path / "grid.toml"
        path.write_text('[sweep]\nexperiments = ["a4"]\n[params]\nwarp = [1]\n')
        assert main(["sweep", "--grid", str(path)]) == 2
        assert "does not accept param" in capsys.readouterr().err

    def test_dry_run_executes_nothing(self, grid_file, tmp_path, capsys):
        out = tmp_path / "results"
        code = main(
            ["sweep", "--grid", str(grid_file), "--out", str(out), "--dry-run"]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "pending  a4 seed=0" in captured.out
        assert "0 executed" in captured.out
        assert not (out / "records.jsonl").exists()


class TestAggregateCli:
    @pytest.fixture
    def store_dir(self, grid_file, tmp_path, capsys):
        out = tmp_path / "results"
        assert main(["sweep", "--grid", str(grid_file), "--out", str(out)]) == 0
        capsys.readouterr()
        return out

    def test_summary_text(self, store_dir, capsys):
        assert main(["aggregate", "--store", str(store_dir)]) == 0
        captured = capsys.readouterr()
        assert "experiment" in captured.out
        assert captured.out.count("PASS") == 4

    def test_comparison_json_to_file(self, store_dir, tmp_path, capsys):
        out_file = tmp_path / "a5.json"
        code = main(
            [
                "aggregate",
                "--store",
                str(store_dir),
                "--experiment",
                "a5",
                "--format",
                "json",
                "--out",
                str(out_file),
            ]
        )
        assert code == 0
        parsed = json.loads(out_file.read_text())
        assert parsed["columns"][0] == "seed"
        assert len(parsed["rows"]) > 0

    def test_missing_store_exits_2(self, tmp_path, capsys):
        assert main(["aggregate", "--store", str(tmp_path / "none")]) == 2
        assert "no result store" in capsys.readouterr().err

    def test_empty_store_exits_2(self, tmp_path, capsys):
        store = ResultStore(tmp_path / "empty")
        store.path.parent.mkdir(parents=True, exist_ok=True)
        store.path.touch()
        assert main(["aggregate", "--store", str(tmp_path / "empty")]) == 2
        assert "no records to aggregate" in capsys.readouterr().err

    def test_unknown_experiment_in_store_exits_2(self, store_dir, capsys):
        code = main(
            ["aggregate", "--store", str(store_dir), "--experiment", "e01"]
        )
        assert code == 2
        assert "no records for 'e01'" in capsys.readouterr().err
