"""Tests for the python -m repro.experiments CLI (default run path)."""

from repro.experiments.__main__ import main


class TestCli:
    def test_single_experiment(self, capsys):
        code = main(["a5", "--seed", "0"])
        captured = capsys.readouterr()
        assert code == 0
        assert "A5" in captured.out.upper()
        assert "PASS" in captured.out

    def test_summary_only(self, capsys):
        code = main(["a5", "a4", "--summary-only"])
        captured = capsys.readouterr()
        assert code == 0
        # summary lines only: no per-claim "ok" markers
        assert "experiment  claims" in captured.out
        assert captured.out.count("PASS") == 2

    def test_unknown_id_fails_up_front_with_suggestion(self, capsys):
        # validation happens before any experiment runs, and close typos
        # get a "did you mean" hint; usage errors exit 2 (not a traceback)
        assert main(["e21", "a5"]) == 2
        captured = capsys.readouterr()
        assert "did you mean" in captured.err
        assert "e12" in captured.err
        assert "a5" not in captured.out  # nothing ran

    def test_unknown_id_without_close_match_lists_known(self, capsys):
        assert main(["nope"]) == 2
        assert "Known ids" in capsys.readouterr().err

    def test_seed_changes_tables_not_verdicts(self, capsys):
        assert main(["a5", "--seed", "3", "--summary-only"]) == 0

    def test_engine_flags_accepted(self, capsys):
        assert main(["a5", "--engine", "scalar", "--summary-only"]) == 0
        assert (
            main(["a5", "--engine", "batch", "--n-jobs", "2", "--summary-only"])
            == 0
        )

    def test_engine_config_restored_after_run(self):
        from repro.experiments.base import engine_config

        main(["a5", "--engine", "scalar", "--summary-only"])
        assert engine_config().engine == "auto"
        assert engine_config().n_jobs == 1


class TestCliPrecisionFlags:
    def test_adaptive_run_prints_convergence_line(self, capsys):
        code = main(["e01", "--target-rel-hw", "0.1"])
        captured = capsys.readouterr()
        assert code == 0
        assert "adaptive:" in captured.out
        assert "metrics converged to target" in captured.out

    def test_incapable_ids_fall_back_with_note(self, capsys):
        code = main(["a5", "--target-rel-hw", "0.1", "--summary-only"])
        captured = capsys.readouterr()
        assert code == 0
        assert "no 'precision' knob on a5" in captured.err

    def test_budget_requires_a_target(self, capsys):
        assert main(["e01", "--budget", "500"]) == 2
        assert "--budget needs" in capsys.readouterr().err

    def test_vr_requires_a_target(self, capsys):
        # an explicit --vr with no target would otherwise be silently
        # ignored (the run falls back to fixed-n with no adaptive report)
        assert main(["e01", "--vr", "control"]) == 2
        assert "--vr needs" in capsys.readouterr().err

    def test_vr_and_budget_flags_flow_through(self, capsys):
        code = main(
            [
                "e01",
                "--target-rel-hw",
                "0.2",
                "--budget",
                "600",
                "--vr",
                "control",
                "--summary-only",
            ]
        )
        assert code == 0
