"""Tests for the python -m repro.experiments CLI."""

import pytest

from repro.experiments.__main__ import main


class TestCli:
    def test_single_experiment(self, capsys):
        code = main(["a5", "--seed", "0"])
        captured = capsys.readouterr()
        assert code == 0
        assert "A5" in captured.out.upper()
        assert "PASS" in captured.out

    def test_summary_only(self, capsys):
        code = main(["a5", "a4", "--summary-only"])
        captured = capsys.readouterr()
        assert code == 0
        # summary lines only: no per-claim "ok" markers
        assert "experiment  claims" in captured.out
        assert captured.out.count("PASS") == 2

    def test_unknown_id_raises(self):
        from repro.errors import ModelError

        with pytest.raises(ModelError):
            main(["nope"])

    def test_seed_changes_tables_not_verdicts(self, capsys):
        assert main(["a5", "--seed", "3", "--summary-only"]) == 0
