"""CLI coverage beyond test_cli.py: exit codes, subcommand dispatch,
engine failure paths and usage errors across run/sweep/aggregate/serve.
"""

import json
from contextlib import contextmanager

import pytest

from repro.experiments.__main__ import (
    EXIT_CLAIM_FAILURES,
    EXIT_OK,
    EXIT_USAGE,
    main,
)
from repro.experiments.base import Claim, ExperimentResult
from repro.experiments.registry import _REGISTRY


@contextmanager
def temporary_experiment(experiment_id, runner):
    _REGISTRY[experiment_id] = runner
    try:
        yield
    finally:
        del _REGISTRY[experiment_id]


def _failing_runner(seed, fast):
    return ExperimentResult(
        experiment_id="ztest_fail",
        title="always fails",
        paper_reference="none",
        columns=["value"],
        rows=[[1.0]],
        claims=[Claim("a claim that cannot hold", holds=False)],
    )


def _raising_runner(seed, fast):
    from repro.errors import ModelError

    raise ModelError("runner exploded mid-run")


class TestRunExitCodes:
    def test_claim_failure_exits_1(self, capsys):
        with temporary_experiment("ztest_fail", _failing_runner):
            assert main(["ztest_fail"]) == EXIT_CLAIM_FAILURES
        out = capsys.readouterr().out
        assert "FAIL" in out

    def test_runtime_model_error_exits_2(self, capsys):
        with temporary_experiment("ztest_raise", _raising_runner):
            assert main(["ztest_raise"]) == EXIT_USAGE
        assert "runner exploded" in capsys.readouterr().err

    def test_success_exits_0(self, capsys):
        assert main(["a4", "--summary-only"]) == EXIT_OK


class TestSweepExitCodes:
    def test_missing_grid_file_exits_2(self, capsys):
        assert main(["sweep", "--grid", "no-such-grid.toml"]) == EXIT_USAGE
        assert "grid file not found" in capsys.readouterr().err

    def test_malformed_grid_exits_2(self, tmp_path, capsys):
        grid = tmp_path / "grid.json"
        grid.write_text(json.dumps({"nope": True}))
        code = main(
            ["sweep", "--grid", str(grid), "--out", str(tmp_path / "out")]
        )
        assert code == EXIT_USAGE
        assert "no [sweep] table" in capsys.readouterr().err

    def test_unknown_grid_experiment_exits_2(self, tmp_path, capsys):
        grid = tmp_path / "grid.json"
        grid.write_text(json.dumps({"sweep": {"experiments": ["e99"]}}))
        code = main(
            ["sweep", "--grid", str(grid), "--out", str(tmp_path / "out")]
        )
        assert code == EXIT_USAGE
        assert "unknown experiment" in capsys.readouterr().err

    def test_unreachable_service_exits_2(self, tmp_path, capsys):
        grid = tmp_path / "grid.json"
        grid.write_text(json.dumps({"sweep": {"experiments": ["a4"]}}))
        code = main(
            [
                "sweep",
                "--grid",
                str(grid),
                "--out",
                str(tmp_path / "out"),
                "--via-service",
                "http://127.0.0.1:9",
            ]
        )
        assert code == EXIT_USAGE
        assert "cannot reach service" in capsys.readouterr().err

    def test_dry_run_exits_0_and_runs_nothing(self, tmp_path, capsys):
        grid = tmp_path / "grid.json"
        grid.write_text(json.dumps({"sweep": {"experiments": ["a4"]}}))
        out = tmp_path / "out"
        code = main(
            ["sweep", "--grid", str(grid), "--out", str(out), "--dry-run"]
        )
        assert code == EXIT_OK
        assert "dry run" in capsys.readouterr().out
        assert not out.exists()


class TestAggregateExitCodes:
    def test_missing_store_exits_2(self, tmp_path, capsys):
        code = main(["aggregate", "--store", str(tmp_path / "nope")])
        assert code == EXIT_USAGE
        assert "no result store" in capsys.readouterr().err


class TestServeExitCodes:
    def test_bad_procs_exits_2(self, capsys):
        assert main(["serve", "--procs", "-1"]) == EXIT_USAGE
        assert "procs must be >= 0" in capsys.readouterr().err

    def test_bad_queue_limit_exits_2(self, capsys):
        assert main(["serve", "--queue-limit", "0"]) == EXIT_USAGE
        assert "queue_limit" in capsys.readouterr().err

    def test_bad_cache_size_exits_2(self, capsys):
        assert main(["serve", "--cache-size", "0"]) == EXIT_USAGE
        assert "capacity" in capsys.readouterr().err


class TestEngineFlagPaths:
    def test_scalar_and_batch_agree_on_verdict(self, capsys):
        assert main(["e12", "--engine", "scalar", "--summary-only"]) == EXIT_OK
        scalar_out = capsys.readouterr().out
        assert main(["e12", "--engine", "batch", "--summary-only"]) == EXIT_OK
        batch_out = capsys.readouterr().out
        assert "PASS" in scalar_out and "PASS" in batch_out

    def test_scalar_engine_rejects_precision_runs(self, capsys):
        # the adaptive engine rides the batch kernels; --engine scalar
        # with a precision target must fail loudly, not silently ignore
        code = main(
            ["e01", "--engine", "scalar", "--target-rel-hw", "0.5"]
        )
        assert code == EXIT_USAGE
        assert "scalar" in capsys.readouterr().err

    def test_multiple_unknown_ids_reported_together(self, capsys):
        assert main(["e99", "zzz", "a5"]) == EXIT_USAGE
        err = capsys.readouterr().err
        assert "e99" in err and "zzz" in err
