"""Tests for the common-clarification extension."""

import numpy as np
import pytest

from repro.demand import DemandSpace, uniform_profile
from repro.errors import ModelError, ProbabilityError
from repro.extensions import ClarificationProcess, clarification_effect
from repro.faults import FaultUniverse
from repro.populations import BernoulliFaultPopulation


@pytest.fixture
def model():
    space = DemandSpace(20)
    profile = uniform_profile(space)
    universe = FaultUniverse.from_regions(
        space, [[0, 1, 2], [5, 6], [10, 11, 12], [15]]
    )
    population = BernoulliFaultPopulation.uniform(universe, 0.5)
    return space, profile, population


class TestConstruction:
    def test_length_mismatch(self, model):
        space, _profile, _population = model
        with pytest.raises(ModelError):
            ClarificationProcess(space, [[0]], [0.5, 0.5])

    def test_probabilities_over_one(self, model):
        space, _profile, _population = model
        with pytest.raises(ProbabilityError):
            ClarificationProcess(space, [[0], [1]], [0.8, 0.8])

    def test_subunit_mass_adds_empty_suite(self, model):
        space, _profile, _population = model
        process = ClarificationProcess(space, [[0, 1]], [0.4])
        pairs = list(process.generator.enumerate())
        assert len(pairs) == 2
        total = sum(p for _, p in pairs)
        assert total == pytest.approx(1.0)
        empty = [s for s, _ in pairs if len(s) == 0]
        assert len(empty) == 1

    def test_full_mass_no_empty_suite(self, model):
        space, _profile, _population = model
        process = ClarificationProcess(space, [[0], [1]], [0.5, 0.5])
        assert len(list(process.generator.enumerate())) == 2


class TestEffect:
    def test_deterministic_has_no_penalty(self, model):
        space, profile, population = model
        process = ClarificationProcess(space, [[0, 1, 2]], [1.0])
        effect = clarification_effect(process, population, profile)
        assert effect.dependence_penalty == pytest.approx(0.0, abs=1e-12)
        assert effect.shared_pfd == pytest.approx(effect.per_team_pfd)

    def test_random_has_positive_penalty(self, model):
        space, profile, population = model
        process = ClarificationProcess(
            space, [[0, 1, 2], [10, 11, 12]], [0.5, 0.5]
        )
        effect = clarification_effect(process, population, profile)
        assert effect.dependence_penalty > 0

    def test_clarification_always_helps(self, model):
        space, profile, population = model
        process = ClarificationProcess(
            space, [[0, 1, 2], [5, 6]], [0.3, 0.3]
        )
        effect = clarification_effect(process, population, profile)
        assert effect.clarification_helps
        assert effect.per_team_pfd <= effect.untested_pfd + 1e-15

    def test_clarifying_everything_fixes_everything(self, model):
        space, profile, population = model
        process = ClarificationProcess(space, [list(range(20))], [1.0])
        effect = clarification_effect(process, population, profile)
        assert effect.shared_pfd == pytest.approx(0.0)

    def test_forced_diversity_channels(self, model):
        space, profile, population = model
        other = BernoulliFaultPopulation(
            population.universe, [0.0, 0.5, 0.5, 0.5]
        )
        process = ClarificationProcess(
            space, [[0, 1, 2], [10, 11, 12]], [0.5, 0.5]
        )
        effect = clarification_effect(process, population, profile, other)
        assert 0.0 <= effect.shared_pfd <= effect.untested_pfd + 1e-15
