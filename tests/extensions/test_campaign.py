"""Tests for the combined-activities campaign simulator."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.extensions import (
    BackToBackActivity,
    ClarificationActivity,
    ClarificationProcess,
    DevelopmentCampaign,
    IndependentTestingActivity,
    MistakeActivity,
    PerTeamClarificationActivity,
    SharedTestingActivity,
    SpecificationMistake,
)
from repro.testing import BackToBackComparator, OperationalSuiteGenerator
from repro.versions import Version, shared_fault_outputs


@pytest.fixture
def generator(profile):
    return OperationalSuiteGenerator(profile, 4)


@pytest.fixture
def version_pair(universe):
    return (
        Version(universe, np.array([0, 1])),
        Version(universe, np.array([1, 2])),
    )


class TestConstruction:
    def test_empty_campaign_rejected(self):
        with pytest.raises(ModelError):
            DevelopmentCampaign([])

    def test_non_activity_rejected(self, generator):
        with pytest.raises(ModelError):
            DevelopmentCampaign([SharedTestingActivity(generator), "tea break"])


class TestRun:
    def test_trajectory_structure(self, generator, version_pair, profile):
        campaign = DevelopmentCampaign(
            [SharedTestingActivity(generator), IndependentTestingActivity(generator)]
        )
        a, b = version_pair
        trajectory = campaign.run(a, b, profile, rng=0)
        assert len(trajectory) == 3
        assert trajectory[0].kind == "initial"
        assert trajectory[1].kind == "shared testing"
        assert trajectory[2].kind == "independent testing"

    def test_testing_activities_never_degrade(
        self, generator, version_pair, profile, space
    ):
        comparator = BackToBackComparator(shared_fault_outputs())
        process = ClarificationProcess(space, [[0, 1], [4, 5]], [0.5, 0.5])
        campaign = DevelopmentCampaign(
            [
                SharedTestingActivity(generator),
                BackToBackActivity(generator, comparator),
                ClarificationActivity(process),
                PerTeamClarificationActivity(process),
                IndependentTestingActivity(generator),
            ]
        )
        a, b = version_pair
        trajectory = campaign.run(a, b, profile, rng=1)
        assert not trajectory.degrading_steps()
        pfds = trajectory.system_pfds()
        assert np.all(np.diff(pfds) <= 1e-15)

    def test_mistake_degrades(self, generator, version_pair, profile, universe):
        mistake = SpecificationMistake((2,))
        campaign = DevelopmentCampaign(
            [SharedTestingActivity(generator), MistakeActivity(mistake)]
        )
        a = Version(universe, np.array([0]))
        b = Version(universe, np.array([1]))
        trajectory = campaign.run(a, b, profile, rng=2)
        degrading = trajectory.degrading_steps()
        assert len(degrading) == 1
        assert degrading[0].kind == "common mistake"
        # both channels now contain the mistake fault
        assert trajectory.final.faults_a >= 1
        assert trajectory.final.faults_b >= 1

    def test_mistake_injects_into_both(self, version_pair, profile, universe):
        mistake = SpecificationMistake((2,))
        activity = MistakeActivity(mistake)
        a = Version(universe, np.array([0]))
        b = Version.correct(universe)
        after_a, after_b = activity.apply(a, b, np.random.default_rng(0))
        assert 2 in after_a.fault_ids.tolist()
        assert 2 in after_b.fault_ids.tolist()

    def test_deterministic_under_seed(self, generator, version_pair, profile):
        campaign = DevelopmentCampaign([SharedTestingActivity(generator)])
        a, b = version_pair
        first = campaign.run(a, b, profile, rng=5)
        second = campaign.run(a, b, profile, rng=5)
        assert first.final == second.final


class TestMeanFinalPfd:
    def test_shared_worse_than_independent(
        self, bernoulli_population, generator, profile
    ):
        shared = DevelopmentCampaign([SharedTestingActivity(generator)])
        independent = DevelopmentCampaign(
            [IndependentTestingActivity(generator)]
        )
        shared_pfd = shared.mean_final_system_pfd(
            bernoulli_population, profile, n_replications=400, rng=3
        )
        independent_pfd = independent.mean_final_system_pfd(
            bernoulli_population, profile, n_replications=400, rng=3
        )
        assert shared_pfd >= independent_pfd - 0.01

    def test_replication_validation(self, bernoulli_population, generator, profile):
        campaign = DevelopmentCampaign([SharedTestingActivity(generator)])
        with pytest.raises(ModelError):
            campaign.mean_final_system_pfd(
                bernoulli_population, profile, n_replications=0
            )


class TestBatchPath:
    @pytest.fixture
    def full_campaign(self, generator, space):
        process = ClarificationProcess(space, [[0, 1]], [1.0])
        return DevelopmentCampaign(
            [
                SharedTestingActivity(generator),
                ClarificationActivity(process),
                PerTeamClarificationActivity(process),
                BackToBackActivity(
                    generator, BackToBackComparator(shared_fault_outputs())
                ),
                MistakeActivity(SpecificationMistake((0,))),
                IndependentTestingActivity(generator),
            ]
        )

    def test_all_builtin_activities_support_batch(self, full_campaign):
        assert full_campaign.supports_batch

    def test_batch_agrees_with_scalar(
        self, full_campaign, bernoulli_population, profile
    ):
        batch = full_campaign.mean_final_system_pfd(
            bernoulli_population, profile, n_replications=600, rng=7, engine="batch"
        )
        scalar = full_campaign.mean_final_system_pfd(
            bernoulli_population, profile, n_replications=600, rng=7, engine="scalar"
        )
        assert batch == pytest.approx(scalar, abs=0.03)

    def test_batch_deterministic_and_n_jobs_invariant(
        self, full_campaign, bernoulli_population, profile
    ):
        kwargs = dict(n_replications=300, rng=11, chunk_size=100)
        serial = full_campaign.mean_final_system_pfd(
            bernoulli_population, profile, n_jobs=1, **kwargs
        )
        sharded = full_campaign.mean_final_system_pfd(
            bernoulli_population, profile, n_jobs=2, **kwargs
        )
        assert serial == sharded

    def test_custom_activity_falls_back_to_scalar(
        self, generator, bernoulli_population, profile
    ):
        class NoOpActivity(SharedTestingActivity):
            @property
            def supports_batch(self):
                return False

        campaign = DevelopmentCampaign([NoOpActivity(generator)])
        assert not campaign.supports_batch
        # auto silently takes the scalar loop; forcing batch is an error
        value = campaign.mean_final_system_pfd(
            bernoulli_population, profile, n_replications=20, rng=13
        )
        assert 0.0 <= value <= 1.0
        with pytest.raises(ModelError, match="engine='batch'"):
            campaign.mean_final_system_pfd(
                bernoulli_population, profile, n_replications=20, engine="batch"
            )
