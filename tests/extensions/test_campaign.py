"""Tests for the combined-activities campaign simulator."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.extensions import (
    BackToBackActivity,
    ClarificationActivity,
    ClarificationProcess,
    DevelopmentCampaign,
    IndependentTestingActivity,
    MistakeActivity,
    PerTeamClarificationActivity,
    SharedTestingActivity,
    SpecificationMistake,
)
from repro.testing import BackToBackComparator, OperationalSuiteGenerator
from repro.versions import Version, shared_fault_outputs


@pytest.fixture
def generator(profile):
    return OperationalSuiteGenerator(profile, 4)


@pytest.fixture
def version_pair(universe):
    return (
        Version(universe, np.array([0, 1])),
        Version(universe, np.array([1, 2])),
    )


class TestConstruction:
    def test_empty_campaign_rejected(self):
        with pytest.raises(ModelError):
            DevelopmentCampaign([])

    def test_non_activity_rejected(self, generator):
        with pytest.raises(ModelError):
            DevelopmentCampaign([SharedTestingActivity(generator), "tea break"])


class TestRun:
    def test_trajectory_structure(self, generator, version_pair, profile):
        campaign = DevelopmentCampaign(
            [SharedTestingActivity(generator), IndependentTestingActivity(generator)]
        )
        a, b = version_pair
        trajectory = campaign.run(a, b, profile, rng=0)
        assert len(trajectory) == 3
        assert trajectory[0].kind == "initial"
        assert trajectory[1].kind == "shared testing"
        assert trajectory[2].kind == "independent testing"

    def test_testing_activities_never_degrade(
        self, generator, version_pair, profile, space
    ):
        comparator = BackToBackComparator(shared_fault_outputs())
        process = ClarificationProcess(space, [[0, 1], [4, 5]], [0.5, 0.5])
        campaign = DevelopmentCampaign(
            [
                SharedTestingActivity(generator),
                BackToBackActivity(generator, comparator),
                ClarificationActivity(process),
                PerTeamClarificationActivity(process),
                IndependentTestingActivity(generator),
            ]
        )
        a, b = version_pair
        trajectory = campaign.run(a, b, profile, rng=1)
        assert not trajectory.degrading_steps()
        pfds = trajectory.system_pfds()
        assert np.all(np.diff(pfds) <= 1e-15)

    def test_mistake_degrades(self, generator, version_pair, profile, universe):
        mistake = SpecificationMistake((2,))
        campaign = DevelopmentCampaign(
            [SharedTestingActivity(generator), MistakeActivity(mistake)]
        )
        a = Version(universe, np.array([0]))
        b = Version(universe, np.array([1]))
        trajectory = campaign.run(a, b, profile, rng=2)
        degrading = trajectory.degrading_steps()
        assert len(degrading) == 1
        assert degrading[0].kind == "common mistake"
        # both channels now contain the mistake fault
        assert trajectory.final.faults_a >= 1
        assert trajectory.final.faults_b >= 1

    def test_mistake_injects_into_both(self, version_pair, profile, universe):
        mistake = SpecificationMistake((2,))
        activity = MistakeActivity(mistake)
        a = Version(universe, np.array([0]))
        b = Version.correct(universe)
        after_a, after_b = activity.apply(a, b, np.random.default_rng(0))
        assert 2 in after_a.fault_ids.tolist()
        assert 2 in after_b.fault_ids.tolist()

    def test_deterministic_under_seed(self, generator, version_pair, profile):
        campaign = DevelopmentCampaign([SharedTestingActivity(generator)])
        a, b = version_pair
        first = campaign.run(a, b, profile, rng=5)
        second = campaign.run(a, b, profile, rng=5)
        assert first.final == second.final


class TestMeanFinalPfd:
    def test_shared_worse_than_independent(
        self, bernoulli_population, generator, profile
    ):
        shared = DevelopmentCampaign([SharedTestingActivity(generator)])
        independent = DevelopmentCampaign(
            [IndependentTestingActivity(generator)]
        )
        shared_pfd = shared.mean_final_system_pfd(
            bernoulli_population, profile, n_replications=400, rng=3
        )
        independent_pfd = independent.mean_final_system_pfd(
            bernoulli_population, profile, n_replications=400, rng=3
        )
        assert shared_pfd >= independent_pfd - 0.01

    def test_replication_validation(self, bernoulli_population, generator, profile):
        campaign = DevelopmentCampaign([SharedTestingActivity(generator)])
        with pytest.raises(ModelError):
            campaign.mean_final_system_pfd(
                bernoulli_population, profile, n_replications=0
            )
