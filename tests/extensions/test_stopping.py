"""Tests for the operational-testing stopping rules."""

import pytest

from repro.errors import ModelError, ProbabilityError
from repro.extensions import (
    bayes_pfd_upper_bound,
    classical_pfd_upper_bound,
    tests_needed_for_target,
)


class TestClassicalBound:
    def test_textbook_value(self):
        # ~2302 failure-free demands demonstrate 1e-3 at 90%
        bound = classical_pfd_upper_bound(2302, 0.90)
        assert bound == pytest.approx(1e-3, rel=0.01)

    def test_single_test_weak_bound(self):
        assert classical_pfd_upper_bound(1, 0.90) == pytest.approx(0.9)

    def test_monotone_in_tests(self):
        bounds = [
            classical_pfd_upper_bound(n, 0.95) for n in (10, 100, 1000)
        ]
        assert bounds[0] > bounds[1] > bounds[2]

    def test_monotone_in_confidence(self):
        assert classical_pfd_upper_bound(100, 0.99) > classical_pfd_upper_bound(
            100, 0.5
        )

    def test_validation(self):
        with pytest.raises(ModelError):
            classical_pfd_upper_bound(0, 0.9)
        with pytest.raises(ProbabilityError):
            classical_pfd_upper_bound(10, 1.0)


class TestBayesBound:
    def test_uniform_prior_close_to_classical(self):
        classical = classical_pfd_upper_bound(1000, 0.9)
        bayes = bayes_pfd_upper_bound(1000, 0.9)
        assert bayes == pytest.approx(classical, rel=0.01)

    def test_uniform_prior_identity(self):
        """Beta(1, 1+n) c-quantile equals the classical bound with n+1
        tests — the uniform prior is worth exactly one failure-free test."""
        for n in (10, 100, 1000):
            assert bayes_pfd_upper_bound(n, 0.9) == pytest.approx(
                classical_pfd_upper_bound(n + 1, 0.9)
            )

    def test_pessimistic_prior_loosens(self):
        for n in (10, 100):
            assert bayes_pfd_upper_bound(
                n, 0.9, prior_a=5.0
            ) > bayes_pfd_upper_bound(n, 0.9, prior_a=1.0)

    def test_zero_tests_is_prior_quantile(self):
        assert bayes_pfd_upper_bound(0, 0.9) == pytest.approx(0.9)

    def test_informative_prior_tightens(self):
        weak = bayes_pfd_upper_bound(100, 0.9, prior_a=1.0, prior_b=1.0)
        strong = bayes_pfd_upper_bound(100, 0.9, prior_a=1.0, prior_b=1000.0)
        assert strong < weak

    def test_validation(self):
        with pytest.raises(ModelError):
            bayes_pfd_upper_bound(-1, 0.9)
        with pytest.raises(ModelError):
            bayes_pfd_upper_bound(10, 0.9, prior_a=0.0)


class TestTestsNeeded:
    def test_textbook_value(self):
        assert tests_needed_for_target(1e-3, 0.90) == pytest.approx(2302, abs=1)

    def test_round_trip_with_bound(self):
        n = tests_needed_for_target(0.01, 0.95)
        assert classical_pfd_upper_bound(n, 0.95) <= 0.01 + 1e-12
        assert classical_pfd_upper_bound(n - 1, 0.95) > 0.01

    def test_harder_targets_cost_more(self):
        assert tests_needed_for_target(1e-4, 0.9) > tests_needed_for_target(
            1e-3, 0.9
        )

    def test_validation(self):
        with pytest.raises(ProbabilityError):
            tests_needed_for_target(0.0, 0.9)
        with pytest.raises(ProbabilityError):
            tests_needed_for_target(0.5, 1.5)
