"""Tests for the common-mistake extension."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.extensions import (
    BlindSpotOracle,
    SpecificationMistake,
    mistake_effect,
)
from repro.extensions.mistakes import BlindSpotFixing
from repro.testing import OperationalSuiteGenerator, TestSuite, apply_testing
from repro.versions import Version


class TestSpecificationMistake:
    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            SpecificationMistake(())

    def test_negative_rejected(self):
        with pytest.raises(ModelError):
            SpecificationMistake((-1,))

    def test_apply_forces_presence(self, bernoulli_population):
        mistake = SpecificationMistake((1,))
        mistaken = mistake.apply_to(bernoulli_population)
        assert mistaken.presence_probs[1] == 1.0
        # other faults untouched
        assert mistaken.presence_probs[0] == pytest.approx(0.5)

    def test_region_mask(self, bernoulli_population):
        mistake = SpecificationMistake((0,))
        mask = mistake.region_mask(bernoulli_population)
        np.testing.assert_array_equal(np.flatnonzero(mask), [0, 1])


class TestBlindSpotOracle:
    def test_blind_to_solely_blind_failures(self, universe, rng):
        oracle = BlindSpotOracle((1,))
        version = Version(universe, np.array([1]))
        assert not oracle.detects(version, 2, rng)

    def test_sees_failures_with_visible_contribution(self, universe, rng):
        oracle = BlindSpotOracle((1,))
        version = Version(universe, np.array([1, 2]))
        # demand 4 covered by faults 1 (blind) and 2 (visible)
        assert oracle.detects(version, 4, rng)

    def test_sees_purely_visible_failures(self, universe, rng):
        oracle = BlindSpotOracle((1,))
        version = Version(universe, np.array([0]))
        assert oracle.detects(version, 0, rng)


class TestBlindSpotFixing:
    def test_never_removes_blind_faults(self, universe, rng):
        fixing = BlindSpotFixing((1,))
        version = Version(universe, np.array([1, 2]))
        removed = fixing.faults_removed(version, 4, rng)
        np.testing.assert_array_equal(removed, [2])

    def test_blind_testing_leaves_mistake(self, universe, space, rng):
        mistake = SpecificationMistake((1,))
        version = Version(universe, np.array([0, 1, 2]))
        suite = TestSuite(space, space.demands)  # exhaustive
        outcome = apply_testing(
            version,
            suite,
            mistake.blind_oracle(),
            mistake.blind_fixing(),
            rng=rng,
        )
        assert outcome.after.fault_ids.tolist() == [1]


class TestMistakeEffect:
    def test_floor_and_orderings(self, universe, profile):
        from repro.populations import BernoulliFaultPopulation

        population = BernoulliFaultPopulation(universe, [0.5, 0.25, 0.4])
        generator = OperationalSuiteGenerator(profile, 6)
        mistake = SpecificationMistake((0,))
        effect = mistake_effect(
            mistake,
            population,
            generator,
            profile,
            n_replications=60,
            n_suites=300,
            rng=1,
        )
        assert effect.floor_respected
        assert effect.mistaken_correct_oracle_pfd >= effect.clean_pfd - 1e-9
        assert (
            effect.mistaken_blind_oracle_pfd
            >= effect.mistaken_correct_oracle_pfd - 0.02
        )
        assert effect.mistake_region_mass == pytest.approx(0.2)
