"""The committed measurements must describe the current corpus.

This is the staleness gate `repro.mutation.measured` promises: editing a
corpus program or its tests without re-running
``tools/update_measured.py`` fails here instead of silently running the
``m*`` experiments on measurements of a different program.
"""

from __future__ import annotations

import pytest

from repro.errors import ModelError
from repro.mutation import (
    bundled_targets,
    enumerate_mutations,
    measured_detection_data,
    measured_target_names,
)
from repro.mutation.measured import MEASURED
from repro.mutation.mutants import MUTATOR_VERSION


def test_every_bundled_target_has_committed_measurements():
    assert measured_target_names() == sorted(bundled_targets())


def test_measured_shas_match_the_current_corpus():
    targets = bundled_targets()
    for name in measured_target_names():
        entry = MEASURED[name]
        target = targets[name]
        assert entry["program_sha"] == target.source_sha, (
            f"{name}: program.py changed since measurement — rerun "
            "tools/update_measured.py"
        )
        assert entry["tests_sha"] == target.tests_sha, (
            f"{name}: tests changed since measurement — rerun "
            "tools/update_measured.py"
        )


def test_measured_mutant_ids_match_the_current_generator():
    """The committed ids must be a subset of today's enumeration.

    A mutator-version bump renumbers sites; this catches a bumped
    generator with stale committed measurements.
    """
    assert MUTATOR_VERSION == "1"
    targets = bundled_targets()
    for name in measured_target_names():
        enumerated = {m.mutant_id for m in enumerate_mutations(targets[name].source)}
        committed = {m["id"] for m in MEASURED[name]["mutants"]}
        assert committed == enumerated, f"{name}: mutant ids drifted"


def test_measured_detection_data_is_well_formed():
    for name in measured_target_names():
        data = measured_detection_data(name)
        assert data.n_mutants >= 15  # a corpus target is not a toy
        assert data.n_tests >= 5  # satellite floor: real suites only
        assert all(0 <= k <= data.n_tests for k in data.counts)
        # statuses agree with counts
        for mutant in MEASURED[name]["mutants"]:
            if mutant["status"] == "survived":
                assert mutant["count"] == 0
            else:
                assert mutant["count"] >= 1


def test_unknown_target_raises_with_the_known_names():
    with pytest.raises(ModelError, match="bsearch"):
        measured_detection_data("nope")
