"""Integration tests for the measured experiment family (m1–m3).

The golden suite pins exact payloads; these tests pin the *meaning*:
m1's measured and assumed growth curves must demonstrably diverge under
identical seeds and placement streams — the acceptance criterion of the
mutation bridge.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import format_result, run_experiment
from repro.mutation.measured import measured_target_names


def test_m1_measured_diverges_from_assumed_baseline():
    result = run_experiment("m1", seed=0, fast=True)
    assert result.passed, format_result(result)
    measured_curve = [row[1] for row in result.rows]
    assumed_curve = [row[2] for row in result.rows]
    # identical seeds, identical placement streams — yet the curves
    # measurably part ways once testing starts removing faults
    divergence = max(
        abs(m - a) for m, a in zip(measured_curve, assumed_curve)
    )
    assert divergence > 1e-3
    # the divergence is a growth effect: larger after testing than before
    assert divergence > abs(measured_curve[0] - assumed_curve[0])
    # both curves are genuine growth curves
    assert measured_curve == sorted(measured_curve, reverse=True)
    assert assumed_curve == sorted(assumed_curve, reverse=True)


@pytest.mark.parametrize("target", sorted(measured_target_names()))
def test_m1_runs_on_every_measured_target(target):
    result = run_experiment(
        "m1", seed=0, fast=True, params={"target": target}
    )
    assert result.passed, format_result(result)
    assert result.extra["alpha"] > 0.25  # measured heterogeneity is real
    assert len(set(result.extra["region_sizes"])) > 1


def test_m1_seed_changes_placement_but_not_the_claims():
    # max_faults above the campaign size: no subsampling, so the seed
    # moves only the fault placements, never the measured size profile
    params = {"target": "stats", "max_faults": 64}
    baseline = run_experiment("m1", seed=0, fast=True, params=params)
    other = run_experiment("m1", seed=3, fast=True, params=params)
    assert other.passed, format_result(other)
    assert baseline.rows != other.rows  # different placements
    assert baseline.extra["region_sizes"] == other.extra["region_sizes"]


def test_m1_max_faults_subsample_is_deterministic_and_bounding():
    capped = run_experiment(
        "m1", seed=0, fast=True, params={"target": "leap", "max_faults": 10}
    )
    again = run_experiment(
        "m1", seed=0, fast=True, params={"target": "leap", "max_faults": 10}
    )
    assert capped.rows == again.rows
    assert len(capped.extra["region_sizes"]) == 10


def test_m2_fit_beats_equal_size_on_its_default_target():
    result = run_experiment("m2", seed=0, fast=True)
    assert result.passed, format_result(result)
    assert result.extra["tv_fitted"] < result.extra["tv_equal_size"]
    # rows are (count k, empirical, fitted, equal-size) — each a pmf
    for column in (1, 2, 3):
        total = sum(row[column] for row in result.rows)
        assert total == pytest.approx(1.0, abs=1e-9)


def test_m3_summarises_every_measured_target():
    result = run_experiment("m3", seed=0, fast=True)
    assert result.passed, format_result(result)
    assert [row[0] for row in result.rows] == sorted(measured_target_names())
    scores = [row[5] for row in result.rows]
    assert all(score >= 0.5 for score in scores)


def test_m_family_is_seed_invariant_where_exact():
    """m2/m3 read committed data and involve no random placement at all."""
    for experiment_id in ("m2", "m3"):
        a = run_experiment(experiment_id, seed=0, fast=True)
        b = run_experiment(experiment_id, seed=9, fast=True)
        assert a.rows == b.rows
