"""The sandboxed campaign runner: kill semantics, caching, resume.

These tests execute real pytest subprocesses against a nine-mutant toy
program, so the module costs a few seconds of wall clock — the price of
testing the harness for real rather than through mocks.
"""

from __future__ import annotations

import pytest

from repro.errors import ModelError
from repro.mutation import (
    DetectionData,
    MutantOutcome,
    MutationCampaign,
    load_outcomes,
)


def test_campaign_kill_semantics(tiny_target, campaign_store):
    report = MutationCampaign(tiny_target, campaign_store, timeout=30.0).run()
    assert report.total == 9
    assert report.n_tests == 3
    assert report.executed == 9
    assert report.cached == 0
    # sign()'s guards and returns are killed; shift() is untested and the
    # weakened first guard (x > 1) is never probed, so three survive
    by_id = {o.mutant_id: o for o in report.outcomes}
    survived = sorted(o.mutant_id for o in report.outcomes if o.status == "survived")
    assert survived == ["m001", "m007", "m008"]
    assert report.killed == 6
    assert report.survived == 3
    assert report.mutation_score == pytest.approx(6 / 9)
    for outcome in report.outcomes:
        assert outcome.n_tests == 3
        assert set(outcome.tests) == set(by_id["m000"].tests)
        if outcome.status == "survived":
            assert outcome.detected == 0
            assert all(v == "passed" for v in outcome.tests.values())
        else:
            assert outcome.detected >= 1
    # the per-test kill matrix is meaningful: the positive-branch return
    # constant is caught by exactly the positive test
    m002 = by_id["m002"]
    detecting = sorted(n for n, v in m002.tests.items() if v != "passed")
    assert len(detecting) == 1
    assert "test_positive" in detecting[0]


def test_rerun_is_a_pure_cache_hit(tiny_target, campaign_store):
    campaign = MutationCampaign(tiny_target, campaign_store, timeout=30.0)
    first = campaign.run()
    keys_after_first = set(campaign_store.keys())
    second = MutationCampaign(tiny_target, campaign_store, timeout=30.0).run()
    assert second.executed == 0
    assert second.cached == first.total
    # exactly-once at the store level: the rerun added no records, and
    # the store holds one record per mutant plus the baseline
    assert set(campaign_store.keys()) == keys_after_first
    assert len(keys_after_first) == first.total + 1
    # cached outcomes are byte-for-byte the originals
    assert [o.to_payload() for o in second.outcomes] == [
        o.to_payload() for o in first.outcomes
    ]


def test_pilot_campaign_outcomes_are_cache_hits_for_the_full_one(
    tiny_target, campaign_store
):
    pilot = MutationCampaign(
        tiny_target, campaign_store, timeout=30.0, max_mutants=3, seed=5
    )
    pilot_report = pilot.run()
    assert pilot_report.total == 3
    assert pilot_report.executed == 3
    full = MutationCampaign(tiny_target, campaign_store, timeout=30.0)
    done, pending = full.partition()
    assert sorted(done) == sorted(o.mutant_id for o in pilot_report.outcomes)
    assert len(pending) == 6
    report = full.run()
    assert report.cached == 3
    assert report.executed == 6


def test_timeout_mutants_count_as_fully_detected(loop_target, campaign_store):
    report = MutationCampaign(loop_target, campaign_store, timeout=5.0).run()
    assert report.total == 4
    assert report.timeouts == 1
    assert report.survived == 0
    timed_out = [o for o in report.outcomes if o.status == "timeout"]
    assert len(timed_out) == 1
    assert timed_out[0].detected == timed_out[0].n_tests == 2
    assert set(timed_out[0].tests.values()) == {"timeout"}
    # a diverging mutant is a detected mutant
    assert report.mutation_score == 1.0


def test_load_outcomes_roundtrip_and_sha_guard(
    tiny_target, campaign_store, make_target, tiny_tests_source
):
    report = MutationCampaign(tiny_target, campaign_store, timeout=30.0).run()
    outcomes = load_outcomes(campaign_store, tiny_target)
    assert [o.mutant_id for o in outcomes] == sorted(
        o.mutant_id for o in report.outcomes
    )
    assert all(isinstance(o, MutantOutcome) for o in outcomes)
    # feeding the estimators straight from the store works
    data = DetectionData.from_outcomes(outcomes)
    assert data.n_mutants == report.total
    assert data.n_tests == report.n_tests
    # records for a different program content are never served
    edited = make_target(
        "tiny",  # same campaign name, different source
        "def sign(x):\n    return 0 - -x\n",
        tiny_tests_source,
        subdir="tiny2",
    )
    assert load_outcomes(campaign_store, edited) == []


def test_red_baseline_refuses_to_measure(make_target, campaign_store):
    target = make_target(
        "red",
        "def f():\n    return 1 + 1\n",
        "from program import f\n\n\ndef test_wrong():\n    assert f() == 3\n",
    )
    with pytest.raises(ModelError, match="not green"):
        MutationCampaign(target, campaign_store, timeout=30.0).run()
    # nothing was measured, nothing was stored
    assert len(campaign_store.keys()) == 0


def test_invalid_timeout_rejected(tiny_target, campaign_store):
    with pytest.raises(ModelError, match="timeout"):
        MutationCampaign(tiny_target, campaign_store, timeout=0.0)


def test_progress_hook_sees_every_mutant(tiny_target, campaign_store):
    seen = []
    MutationCampaign(tiny_target, campaign_store, timeout=30.0).run(
        on_mutant=lambda outcome, cached: seen.append((outcome.mutant_id, cached))
    )
    assert [mutant_id for mutant_id, _ in seen] == [
        f"m{i:03d}" for i in range(9)
    ]
    assert not any(cached for _, cached in seen)
