"""The mutant generator: determinism, stable ids, subsampling, operators."""

from __future__ import annotations

import ast

import pytest

from repro.errors import ModelError
from repro.mutation import enumerate_mutations, generate_mutants

SOURCE = """\
LIMIT = 10


def sign(x):
    if x > 0:
        return 1
    if x < 0:
        return -1
    return 0


def clamp(value):
    if value > LIMIT and value != -LIMIT:
        return LIMIT
    return value


def describe(x) -> str:
    if not x:
        return "zero"
    return "nonzero"
"""


def test_enumeration_is_deterministic():
    first = enumerate_mutations(SOURCE)
    second = enumerate_mutations(SOURCE)
    assert first == second
    assert [m.mutant_id for m in first] == [
        f"m{i:03d}" for i in range(len(first))
    ]


def test_enumeration_covers_the_operator_families():
    operators = {m.operator for m in enumerate_mutations(SOURCE)}
    assert "flip-compare" in operators
    assert "flip-boolop" in operators
    assert "tweak-constant" in operators
    assert "drop-not" in operators
    assert "drop-negate" in operators  # -LIMIT, a negated name


def test_arith_flip_present_when_source_has_arithmetic():
    mutations = enumerate_mutations("def f(a, b):\n    return a + b * 2\n")
    assert {m.operator for m in mutations} >= {"flip-arith", "tweak-constant"}


def test_negated_literal_is_constant_tweak_not_drop_negate():
    # -1 is UnaryOp(USub, Constant(1)): dropping the minus would just be
    # another constant tweak, so only tweak-constant applies
    mutations = enumerate_mutations("def f():\n    return -1\n")
    assert [m.operator for m in mutations] == ["tweak-constant"]


def test_annotations_and_main_guard_are_never_mutated():
    guarded = SOURCE + "\n\nif __name__ == \"__main__\":\n    pass\n"
    plain = enumerate_mutations(SOURCE)
    with_guard = enumerate_mutations(guarded)
    # the guard's == comparison adds no site; annotations are skipped
    assert [m.description for m in with_guard] == [
        m.description for m in plain
    ]


def test_each_mutant_differs_from_source_and_compiles():
    mutants = generate_mutants(SOURCE)
    normalized = ast.unparse(ast.parse(SOURCE))
    for mutant in mutants:
        assert ast.unparse(ast.parse(mutant.source)) != normalized
        compile(mutant.source, "<mutant>", "exec")


def test_mutants_are_single_point():
    """Each mutant differs from the unparsed source in exactly one AST site."""
    baseline = ast.dump(ast.parse(SOURCE))
    for mutant in generate_mutants(SOURCE):
        assert ast.dump(ast.parse(mutant.source)) != baseline


def test_subsampling_is_deterministic_and_preserves_ids():
    full = generate_mutants(SOURCE)
    assert len(full) > 6
    capped_a = generate_mutants(SOURCE, max_mutants=5, seed=3)
    capped_b = generate_mutants(SOURCE, max_mutants=5, seed=3)
    assert [m.mutant_id for m in capped_a] == [m.mutant_id for m in capped_b]
    assert len(capped_a) == 5
    # ids index the full enumeration, so every capped mutant equals its
    # full-enumeration counterpart exactly
    by_id = {m.mutant_id: m for m in full}
    for mutant in capped_a:
        assert mutant == by_id[mutant.mutant_id]


def test_different_seeds_pick_different_subsamples():
    picks = {
        tuple(m.mutant_id for m in generate_mutants(SOURCE, max_mutants=4, seed=s))
        for s in range(10)
    }
    assert len(picks) > 1


def test_cap_larger_than_enumeration_is_a_noop():
    full = generate_mutants(SOURCE)
    assert generate_mutants(SOURCE, max_mutants=10_000, seed=9) == full


def test_invalid_cap_and_unmutable_source_raise():
    with pytest.raises(ModelError):
        generate_mutants(SOURCE, max_mutants=0)
    with pytest.raises(ModelError):
        generate_mutants("def f(x):\n    return x\n")
