"""Interrupting a campaign loses at most the mutant in flight.

A child process runs a real campaign; the test SIGINTs it after a couple
of mutants have reached the store, then verifies the interrupt contract:
the store contains only whole records, and resuming executes exactly the
mutants the first run did not finish.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.mutation import MutationCampaign
from repro.store import ResultStore

_CHILD = """\
import sys
from pathlib import Path

from repro.mutation import MutationCampaign, TargetProgram
from repro.store import ResultStore

target_dir, store_path = Path(sys.argv[1]), sys.argv[2]
target = TargetProgram(
    name="tiny",
    module="program",
    source_path=target_dir / "program.py",
    test_paths=(target_dir / "test_program.py",),
)
MutationCampaign(target, ResultStore(store_path), timeout=30.0).run()
"""


def _wait_for_records(path: Path, minimum: int, timeout: float = 90.0) -> int:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if path.exists():
            lines = path.read_text(encoding="utf-8").count("\n")
            if lines >= minimum:
                return lines
        time.sleep(0.05)
    raise AssertionError(
        f"store never reached {minimum} records within {timeout}s"
    )


def test_sigint_mid_campaign_keeps_whole_records_and_resumes(
    tiny_target, tmp_path
):
    store_path = tmp_path / "interrupted.jsonl"
    script = tmp_path / "child.py"
    script.write_text(_CHILD, encoding="utf-8")
    repo_src = Path(__file__).resolve().parents[2] / "src"
    env = dict(os.environ, PYTHONPATH=str(repo_src))
    child = subprocess.Popen(
        [
            sys.executable,
            str(script),
            str(tiny_target.source_path.parent),
            str(store_path),
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    try:
        # baseline + at least two mutants measured, campaign mid-flight
        _wait_for_records(store_path, minimum=3)
        os.kill(child.pid, signal.SIGINT)
        returncode = child.wait(timeout=60)
    finally:
        if child.poll() is None:
            child.kill()
            child.wait()
    assert returncode != 0  # the interrupt really interrupted

    # every stored line is a complete, parseable record with a payload
    lines = store_path.read_text(encoding="utf-8").splitlines()
    records = [json.loads(line) for line in lines]
    assert records, "interrupted store is empty"
    for record in records:
        assert "mutation" in record
        assert record["mutation"]["tests"]

    store = ResultStore(store_path)
    campaign = MutationCampaign(tiny_target, store, timeout=30.0)
    done, pending = campaign.partition()
    stored_mutants = {
        r["params"]["mutant"]
        for r in records
        if r["params"]["mutant"] != "baseline"
    }
    assert sorted(done) == sorted(stored_mutants)
    assert 0 < len(done) < campaign_total(campaign)
    assert len(done) + len(pending) == campaign_total(campaign)

    # the resume executes exactly the remainder, once
    report = campaign.run()
    assert report.cached == len(done)
    assert report.executed == len(pending)
    assert report.cached + report.executed == report.total
    # first run + resume together executed each mutant exactly once: the
    # store holds exactly one record per mutant plus the baseline
    assert len(ResultStore(store_path).keys()) == report.total + 1

    # a further run is a pure cache hit
    rerun = MutationCampaign(tiny_target, store, timeout=30.0).run()
    assert rerun.executed == 0
    assert rerun.cached == rerun.total


def campaign_total(campaign: MutationCampaign) -> int:
    return len(campaign.mutants)


def test_partition_on_a_fresh_store_is_all_pending(tiny_target, tmp_path):
    store = ResultStore(tmp_path / "fresh.jsonl")
    campaign = MutationCampaign(tiny_target, store, timeout=30.0)
    done, pending = campaign.partition()
    assert done == []
    assert len(pending) == len(campaign.mutants)
