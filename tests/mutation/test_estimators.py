"""Property-based tests for the size-biased multinomial fitter."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.mutation import (
    DetectionData,
    detection_count_distribution,
    fit_size_biased_multinomial,
    total_variation,
)
from repro.mutation.estimators import _water_fill, _zipf_shares


def _data(counts, n_tests):
    return DetectionData(
        counts=tuple(counts),
        n_tests=n_tests,
        labels=tuple(f"m{i:03d}" for i in range(len(counts))),
    )


@st.composite
def detection_datasets(draw):
    n_tests = draw(st.integers(min_value=1, max_value=30))
    counts = draw(
        st.lists(
            st.integers(min_value=0, max_value=n_tests),
            min_size=1,
            max_size=40,
        )
    )
    return _data(counts, n_tests)


# -- round-trip recovery ------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(
    alpha=st.floats(min_value=0.4, max_value=2.0),
    m=st.integers(min_value=12, max_value=40),
)
def test_alpha_round_trip_on_synthetic_zipf_counts(alpha, m):
    """Counts manufactured from a Zipf share profile recover its exponent.

    The counts are the expected detections under the profile (scaled so
    the largest is well resolved), so the MLE should land near the true
    alpha — the tolerance covers integer rounding of small tail counts.
    """
    shares = _zipf_shares(alpha, m)
    counts = np.maximum(1, np.round(shares / shares[-1] * 3)).astype(int)
    n_tests = int(counts.max()) + 1
    fit = fit_size_biased_multinomial(_data(counts.tolist(), n_tests))
    assert fit.alpha == pytest.approx(alpha, abs=0.25)
    assert not fit.degenerate


# -- permutation invariance ---------------------------------------------


@settings(max_examples=50, deadline=None)
@given(data=detection_datasets(), seed=st.integers(min_value=0, max_value=2**16))
def test_fit_is_permutation_invariant(data, seed):
    rng = np.random.default_rng(seed)
    order = rng.permutation(data.n_mutants)
    shuffled = _data([data.counts[i] for i in order], data.n_tests)
    fit = fit_size_biased_multinomial(data)
    fit_shuffled = fit_size_biased_multinomial(shuffled)
    assert fit_shuffled.alpha == pytest.approx(fit.alpha)
    assert fit_shuffled.mutation_score == pytest.approx(fit.mutation_score)
    assert fit_shuffled.loglik == pytest.approx(fit.loglik)
    assert fit_shuffled.sorted_weights() == pytest.approx(fit.sorted_weights())
    # weights follow the permutation element-wise
    assert list(fit_shuffled.weights) == pytest.approx(
        [fit.weights[i] for i in order]
    )
    np.testing.assert_allclose(
        fit_shuffled.fitted_count_pmf(), fit.fitted_count_pmf()
    )


# -- distributional soundness -------------------------------------------


@settings(max_examples=50, deadline=None)
@given(data=detection_datasets())
def test_pmfs_are_distributions_and_fit_preserves_the_mean(data):
    fit = fit_size_biased_multinomial(data)
    empirical = detection_count_distribution(data)
    fitted = fit.fitted_count_pmf()
    equal = fit.equal_size_count_pmf()
    for pmf in (empirical, fitted, equal):
        assert pmf.shape == (data.n_tests + 1,)
        assert np.all(pmf >= -1e-12)
        assert pmf.sum() == pytest.approx(1.0)
    counts = np.arange(data.n_tests + 1)
    empirical_mean = float(counts @ empirical)
    # water-filling makes both model pmfs match the empirical mean exactly
    assert float(counts @ fitted) == pytest.approx(empirical_mean, abs=1e-9)
    assert float(counts @ equal) == pytest.approx(empirical_mean, abs=1e-9)


@settings(max_examples=50, deadline=None)
@given(data=detection_datasets())
def test_weights_are_shares_and_score_counts_nonzero(data):
    fit = fit_size_biased_multinomial(data)
    assert sum(fit.weights) == pytest.approx(1.0)
    assert fit.mutation_score == pytest.approx(
        sum(1 for k in data.counts if k > 0) / data.n_mutants
    )
    assert 0.0 <= fit.alpha <= 8.0
    if not fit.degenerate:
        total = data.total_detections
        assert list(fit.weights) == pytest.approx(
            [k / total for k in data.counts]
        )


# -- degenerate campaigns -----------------------------------------------


def test_all_survived_campaign_degenerates_to_uniform():
    fit = fit_size_biased_multinomial(_data([0, 0, 0, 0], 7))
    assert fit.degenerate
    assert fit.alpha == 0.0
    assert fit.mutation_score == 0.0
    assert list(fit.weights) == pytest.approx([0.25] * 4)
    assert fit.fitted_count_pmf()[0] == pytest.approx(1.0)


def test_all_killed_by_every_test_is_equal_size_not_degenerate():
    fit = fit_size_biased_multinomial(_data([5, 5, 5], 5))
    assert not fit.degenerate
    assert fit.alpha == 0.0  # the shares really are equal
    assert fit.mutation_score == 1.0
    # every rank water-fills to p = 1: all mass at count n
    assert fit.fitted_count_pmf()[-1] == pytest.approx(1.0)


def test_single_mutant_fits_without_an_exponent():
    fit = fit_size_biased_multinomial(_data([3], 6))
    assert fit.alpha == 0.0
    assert fit.weights == (1.0,)


# -- water-filling ------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(
    alpha=st.floats(min_value=0.0, max_value=4.0),
    m=st.integers(min_value=1, max_value=30),
    budget_frac=st.floats(min_value=0.01, max_value=1.0),
)
def test_water_fill_hits_the_budget_within_bounds(alpha, m, budget_frac):
    shares = _zipf_shares(alpha, m)
    budget = budget_frac * m
    probs = _water_fill(shares, budget)
    assert np.all(probs >= -1e-12)
    assert np.all(probs <= 1.0 + 1e-12)
    assert probs.sum() == pytest.approx(budget, abs=1e-9)
    # filling respects the share order: a bigger share never gets a
    # smaller probability
    assert np.all(np.diff(probs) <= 1e-12)


# -- guards -------------------------------------------------------------


def test_detection_data_validation():
    with pytest.raises(ModelError):
        _data([], 5)
    with pytest.raises(ModelError):
        _data([6], 5)  # count above n_tests
    with pytest.raises(ModelError):
        _data([1], 0)
    with pytest.raises(ModelError):
        DetectionData(counts=(1, 2), n_tests=5, labels=("only",))


def test_total_variation_basics():
    assert total_variation([1.0, 0.0], [0.0, 1.0]) == pytest.approx(1.0)
    assert total_variation([0.5, 0.5], [0.5, 0.5]) == 0.0
    with pytest.raises(ModelError):
        total_variation([1.0], [0.5, 0.5])
