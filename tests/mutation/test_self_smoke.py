"""Self-mutation smoke: the repo's own suite must kill its own mutants.

This is the mutation-score CI gate from the issue: mutate ``repro.rng``
and judge the mutants with the repo's real tier-1 tests for that module.
A score collapse here means either the generator stopped producing
meaningful mutants or ``tests/test_rng.py`` stopped testing anything.
"""

from __future__ import annotations

import pytest

from repro.mutation import (
    DetectionData,
    MutationCampaign,
    fit_size_biased_multinomial,
    self_target,
)

#: the CI gate floor — deliberately below the ~0.8 the rng suite scores,
#: so the gate trips on collapse, not on adding one equivalent mutant
SCORE_FLOOR = 0.5

#: enough sites for a meaningful score, few enough to stay a smoke test
MAX_MUTANTS = 12


@pytest.mark.slow
def test_self_mutation_score_meets_the_floor(tmp_path):
    target = self_target()
    campaign = MutationCampaign(
        target,
        store=_store(tmp_path),
        timeout=60.0,
        max_mutants=MAX_MUTANTS,
        seed=0,
    )
    report = campaign.run()
    assert report.total == MAX_MUTANTS
    assert report.n_tests >= 10  # the real rng suite, not a stub
    assert report.mutation_score >= SCORE_FLOOR, (
        f"self-mutation score {report.mutation_score:.2f} fell below "
        f"{SCORE_FLOOR} — the rng suite lost its teeth"
    )
    # the measured outcomes feed the estimators like any corpus target
    fit = fit_size_biased_multinomial(
        DetectionData.from_outcomes(report.outcomes)
    )
    assert not fit.degenerate
    assert fit.mutation_score == pytest.approx(report.mutation_score)


def _store(tmp_path):
    from repro.store import ResultStore

    return ResultStore(tmp_path / "self.jsonl")
