"""The ``mutate`` CLI subcommand: listing, running, resuming, gating."""

from __future__ import annotations

from repro.experiments.__main__ import main


def _mutate_args(target, store_path, extra=()):
    return [
        "mutate",
        "--program",
        str(target.source_path),
        "--tests",
        *(str(p) for p in target.test_paths),
        "--store",
        str(store_path),
        "--timeout",
        "30",
        *extra,
    ]


def test_list_targets_names_the_corpus_and_self(capsys):
    assert main(["mutate", "--list-targets"]) == 0
    out = capsys.readouterr().out
    for name in ("triangle", "leap", "bsearch", "stats", "self"):
        assert name in out


def test_mutate_runs_and_resumes_an_arbitrary_program(
    tiny_target, tmp_path, capsys
):
    store_path = tmp_path / "cli.jsonl"
    assert main(_mutate_args(tiny_target, store_path)) == 0
    out = capsys.readouterr().out
    assert "9 mutants (9 executed, 0 cached)" in out
    assert "mutation score 0.667" in out
    assert out.count("ran    ") == 9
    # second invocation: pure cache hit, same summary numbers
    assert main(_mutate_args(tiny_target, store_path)) == 0
    out = capsys.readouterr().out
    assert "9 mutants (0 executed, 9 cached)" in out
    assert out.count("cached ") == 9


def test_min_score_gate_fails_on_a_weak_suite(tiny_target, tmp_path, capsys):
    store_path = tmp_path / "gate.jsonl"
    # the tiny suite scores 6/9 ≈ 0.667: below a 0.9 floor, above 0.5
    assert main(_mutate_args(tiny_target, store_path, ["--min-score", "0.9"])) == 1
    assert "below the --min-score gate" in capsys.readouterr().err
    assert main(_mutate_args(tiny_target, store_path, ["--min-score", "0.5"])) == 0


def test_target_selection_errors_are_usage_errors(tmp_path, capsys):
    assert main(["mutate", "--store", str(tmp_path / "s.jsonl")]) != 0
    assert "pick a target" in capsys.readouterr().err
    code = main(
        ["mutate", "--target", "nope", "--store", str(tmp_path / "s.jsonl")]
    )
    assert code != 0
    assert "unknown bundled target" in capsys.readouterr().err
