"""Target discovery and content-hash identity."""

from __future__ import annotations

import pytest

from repro.errors import ModelError
from repro.mutation import (
    TargetProgram,
    bundled_target,
    bundled_targets,
    self_target,
)


def test_bundled_corpus_has_the_documented_targets():
    targets = bundled_targets()
    assert {"triangle", "leap", "bsearch", "stats"} <= set(targets)
    for target in targets.values():
        assert target.module == "program"
        assert target.test_paths
        assert target.source_path.name == "program.py"


def test_bundled_target_lookup_and_error():
    assert bundled_target("stats").name == "stats"
    with pytest.raises(ModelError, match="stats"):
        bundled_target("nope")


def test_content_hashes_are_stable_and_content_sensitive(tmp_path):
    program = tmp_path / "program.py"
    test_file = tmp_path / "test_program.py"
    program.write_text("def f():\n    return 1 + 1\n")
    test_file.write_text("from program import f\n\ndef test_f():\n    assert f() == 2\n")

    def build():
        return TargetProgram(
            name="tiny",
            module="program",
            source_path=program,
            test_paths=(test_file,),
        )

    target = build()
    assert target.source_sha == build().source_sha
    assert target.tests_sha == build().tests_sha
    original_source_sha = target.source_sha
    original_tests_sha = target.tests_sha
    program.write_text("def f():\n    return 2 + 0\n")
    assert build().source_sha != original_source_sha
    assert build().tests_sha == original_tests_sha
    test_file.write_text("from program import f\n\ndef test_f():\n    assert f()\n")
    assert build().tests_sha != original_tests_sha


def test_missing_files_and_dotted_module_validation(tmp_path):
    with pytest.raises(ModelError, match="no such file"):
        TargetProgram(
            name="ghost",
            module="program",
            source_path=tmp_path / "absent.py",
            test_paths=(),
        )
    program = tmp_path / "program.py"
    program.write_text("x = 1\n")
    with pytest.raises(ModelError, match="package_root"):
        TargetProgram(
            name="dotted",
            module="pkg.program",
            source_path=program,
            test_paths=(),
        )


def test_self_target_points_at_rng_and_its_tier1_tests():
    target = self_target()
    assert target.module == "repro.rng"
    assert target.package_root is not None
    assert "spawn" in target.source  # really the rng module
    assert any(p.name == "test_rng.py" for p in target.test_paths)
