"""The measurement → model bridge: sizes, placement coupling, guards."""

from __future__ import annotations

import numpy as np
import pytest

from repro.demand import DemandSpace
from repro.errors import ModelError
from repro.mutation import (
    DetectionData,
    assumed_population,
    fit_size_biased_multinomial,
    measured_population,
    region_sizes_from_fit,
    universe_from_fit,
)


def _regions(universe):
    return [list(np.flatnonzero(row)) for row in universe.coverage]


@pytest.fixture
def fit():
    data = DetectionData(
        counts=(8, 4, 2, 1, 1, 0),
        n_tests=10,
        labels=tuple(f"m{i:03d}" for i in range(6)),
    )
    return fit_size_biased_multinomial(data)


def test_region_sizes_scale_detection_probs_to_the_space(fit):
    space = DemandSpace(100)
    sizes = region_sizes_from_fit(fit, space)
    # p = k/10 over 100 demands → 10k demands, floored at one demand for
    # the never-detected mutant
    assert sizes == [80, 40, 20, 10, 10, 1]


def test_region_sizes_are_clamped_to_the_space(fit):
    sizes = region_sizes_from_fit(fit, DemandSpace(4))
    assert all(1 <= s <= 4 for s in sizes)
    assert sizes == [3, 2, 1, 1, 1, 1]  # rounded, floored at one demand


def test_universe_matches_fit_sizes_and_is_seed_deterministic(fit):
    space = DemandSpace(50)
    universe = universe_from_fit(fit, space, seed=11)
    again = universe_from_fit(fit, space, seed=11)
    other = universe_from_fit(fit, space, seed=12)
    sizes = region_sizes_from_fit(fit, space)
    assert [len(region) for region in _regions(universe)] == sizes
    assert _regions(universe) == _regions(again)
    assert _regions(universe) != _regions(other)


def test_measured_and_assumed_differ_only_in_the_size_profile(fit):
    """The controlled-comparison guarantee behind experiment m1.

    Per-fault placement streams are spawned identically in both
    constructions, so a fault whose measured size happens to equal the
    assumed mean size gets the *same region* in both universes.
    """
    space = DemandSpace(60)
    measured = measured_population(fit, space, presence_prob=0.3, seed=4)
    sizes = region_sizes_from_fit(fit, space)
    mean_size = int(round(float(np.mean(sizes))))
    assumed = assumed_population(fit, space, presence_prob=0.3, seed=4)
    assumed_sizes = [len(r) for r in _regions(assumed.universe)]
    assert assumed_sizes == [mean_size] * len(sizes)
    assert [len(r) for r in _regions(measured.universe)] == sizes
    for m_region, a_region, size in zip(
        _regions(measured.universe), _regions(assumed.universe), sizes
    ):
        if size == mean_size:
            assert list(m_region) == list(a_region)
        else:
            # same stream, different draw count: the shorter region is a
            # prefix draw of the same without-replacement choice only in
            # distribution, but both must stay inside the space
            assert len(m_region) == size
            assert len(a_region) == mean_size
    # same presence probability everywhere
    np.testing.assert_allclose(measured.presence_probs, 0.3)
    np.testing.assert_allclose(assumed.presence_probs, 0.3)


def test_assumed_population_explicit_size_override(fit):
    space = DemandSpace(30)
    population = assumed_population(fit, space, presence_prob=0.2, seed=0, size=5)
    assert [len(r) for r in _regions(population.universe)] == [5] * fit.n_mutants
    with pytest.raises(ModelError):
        assumed_population(fit, space, size=0)
    with pytest.raises(ModelError):
        assumed_population(fit, space, size=31)


def test_bridged_population_drives_the_analytic_layer(fit):
    """End-to-end smoke: the bridged population is a first-class citizen."""
    from repro.core import ELModel
    from repro.demand import uniform_profile

    space = DemandSpace(40)
    profile = uniform_profile(space)
    population = measured_population(fit, space, presence_prob=0.25, seed=1)
    model = ELModel.from_population(population, profile)
    assert 0.0 < model.prob_fail() < 1.0
    assert model.prob_both_fail() >= model.prob_fail() ** 2 - 1e-12
