"""Shared fixtures: tiny on-disk targets for fast campaign tests."""

from __future__ import annotations

import pytest

from repro.mutation import TargetProgram
from repro.store import ResultStore

# sign() is judged by three tests; shift() is deliberately untested, so
# its mutants (and the off-by-one constant in sign's first guard) survive
TINY_PROGRAM = """\
def sign(x):
    if x > 0:
        return 1
    if x < 0:
        return -1
    return 0


def shift(x):
    return x + 1
"""

TINY_TESTS = """\
from program import sign


def test_positive():
    assert sign(5) == 1


def test_negative():
    assert sign(-5) == -1


def test_zero():
    assert sign(0) == 0
"""

# drain() admits exactly four mutants, one of which (n - 1 -> n + 1)
# never terminates — the timeout path in one cheap campaign
LOOP_PROGRAM = """\
def drain(n):
    while n > 0:
        n = n - 1
    return n
"""

LOOP_TESTS = """\
from program import drain


def test_drain_positive():
    assert drain(3) == 0


def test_drain_zero():
    assert drain(0) == 0
"""


def write_target(directory, name, program, tests) -> TargetProgram:
    directory.mkdir(parents=True, exist_ok=True)
    program_path = directory / "program.py"
    tests_path = directory / "test_program.py"
    program_path.write_text(program, encoding="utf-8")
    tests_path.write_text(tests, encoding="utf-8")
    return TargetProgram(
        name=name,
        module="program",
        source_path=program_path,
        test_paths=(tests_path,),
    )


@pytest.fixture
def make_target(tmp_path):
    """Factory fixture: write a (program, tests) pair under tmp_path."""

    def _make(name, program, tests, subdir=None):
        return write_target(
            tmp_path / (subdir or name), name, program, tests
        )

    return _make


@pytest.fixture
def tiny_tests_source() -> str:
    return TINY_TESTS


@pytest.fixture
def tiny_target(tmp_path) -> TargetProgram:
    return write_target(tmp_path / "tiny", "tiny", TINY_PROGRAM, TINY_TESTS)


@pytest.fixture
def loop_target(tmp_path) -> TargetProgram:
    return write_target(tmp_path / "loop", "loop", LOOP_PROGRAM, LOOP_TESTS)


@pytest.fixture
def campaign_store(tmp_path) -> ResultStore:
    return ResultStore(tmp_path / "campaign.jsonl")
