"""End-to-end tests for the HTTP API through the blocking client."""

import json

import pytest

from repro.service import ServiceClient, ServiceError
from repro.service.http import ThreadedServer
from repro.store import ResultStore


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    store = tmp_path_factory.mktemp("service_store")
    with ThreadedServer(store_path=store, procs=0, queue_limit=64) as hosted:
        hosted.store_dir = store
        yield hosted


@pytest.fixture()
def client(server):
    with ServiceClient(server.url) as bound:
        yield bound


class TestEndpoints:
    def test_healthz(self, client):
        payload = client.healthz()
        assert payload["status"] == "ok"
        assert "queue_depth" in payload

    def test_experiments_catalog(self, client):
        catalog = {
            entry["id"]: entry for entry in client.experiments()["experiments"]
        }
        assert "e01" in catalog and "x3" in catalog
        assert catalog["e01"]["precision"] is True
        assert "suite_size" in catalog["x3"]["params"]

    def test_run_cold_then_warm(self, server, client):
        job = client.run("x3", seed=101)
        assert job["state"] == "done"
        assert job["cached"] is False
        assert job["record"]["result"]["passed"] is True
        warm = client.run("x3", seed=101)
        assert warm["cached"] is True
        assert warm["source"] in ("memory", "store")
        assert warm["record"]["key"] == job["record"]["key"]
        # the record reached the server's persistent store
        assert job["record"]["key"] in ResultStore(server.store_dir).load()

    def test_submit_nowait_then_poll(self, client):
        job = client.submit("x3", seed=102, wait=False)
        assert job["state"] in ("queued", "running")
        done = client.wait(job["id"], timeout=60)
        assert done["state"] == "done"
        assert done["record"]["experiment_id"] == "x3"

    def test_coalescing_over_http(self, client):
        first = client.submit("e07", seed=103, wait=False)
        second = client.submit("e07", seed=103, wait=False)
        assert second["id"] == first["id"]
        assert second["coalesced"] >= 1
        client.wait(first["id"], timeout=60)

    def test_cancel_queued_job(self, client):
        blocker = client.submit("e07", seed=104, wait=False)
        queued = client.submit("x3", seed=105, wait=False)
        outcome = client.cancel(queued["id"])
        if outcome["cancelled"]:  # it was still queued behind the blocker
            assert client.job(queued["id"])["state"] == "cancelled"
        client.wait(blocker["id"], timeout=60)

    def test_unknown_job_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.job("job-999999")
        assert excinfo.value.status == 404

    def test_unknown_id_gets_did_you_mean(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.run("e21")
        assert excinfo.value.status == 400
        assert "did you mean" in str(excinfo.value)

    def test_unknown_knob_lists_supported(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.run("x3", params={"bogus": 1})
        assert excinfo.value.status == 400
        assert "supported knobs" in str(excinfo.value)

    def test_jobs_listing_newest_first(self, client):
        client.run("x3", seed=106)
        jobs = client.jobs()["jobs"]
        assert jobs, "no jobs listed"
        assert jobs[0]["id"] >= jobs[-1]["id"]

    def test_metrics_counters_move(self, client):
        before = client.metrics()
        client.run("x3", seed=107)
        client.run("x3", seed=107)
        after = client.metrics()
        assert after["jobs"]["submitted"] >= before["jobs"]["submitted"] + 2
        assert after["jobs"]["cache_served"] >= before["jobs"]["cache_served"] + 1
        assert after["cache"]["hit_ratio"] > 0
        assert after["compute_seconds"]["count"] >= 1
        assert after["uptime_seconds"] > 0


class TestProtocolErrors:
    def test_bad_json_body_is_400(self, server):
        import http.client

        connection = http.client.HTTPConnection(
            server.url.split("//")[1].split(":")[0],
            int(server.url.rsplit(":", 1)[1]),
            timeout=30,
        )
        connection.request(
            "POST",
            "/run",
            body=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        payload = json.loads(response.read())
        assert response.status == 400
        assert "invalid JSON" in payload["error"]
        connection.close()

    def test_unknown_route_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", "/nope")
        assert excinfo.value.status == 404

    def test_wrong_method_405(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client._request("POST", "/healthz")
        assert excinfo.value.status == 405
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", "/run")
        assert excinfo.value.status == 405

    def test_priority_and_wait_type_validation(self, client):
        with pytest.raises(ServiceError, match="priority must be"):
            client._request(
                "POST", "/run", {"experiment_id": "a4", "priority": "high"}
            )
        with pytest.raises(ServiceError, match="wait must be"):
            client._request(
                "POST", "/run", {"experiment_id": "a4", "wait": "yes"}
            )

    def test_client_reconnects_after_server_side_close(self, server):
        # two sequential clients over the same server exercise fresh
        # connections; an explicitly closed client transparently reopens
        client = ServiceClient(server.url)
        assert client.healthz()["status"] == "ok"
        client.close()
        assert client.healthz()["status"] == "ok"
        client.close()

    def test_client_rejects_non_http_urls(self):
        with pytest.raises(ServiceError, match="only http"):
            ServiceClient("https://example.test:1")

    def test_unreachable_service_is_503(self):
        client = ServiceClient("http://127.0.0.1:9", timeout=0.5)
        with pytest.raises(ServiceError) as excinfo:
            client.healthz()
        assert excinfo.value.status == 503


class TestQueueLimitOverHttp:
    def test_full_queue_returns_429(self, tmp_path):
        with ThreadedServer(
            store_path=tmp_path, procs=0, queue_limit=1
        ) as hosted:
            client = ServiceClient(hosted.url)
            blocker = client.submit("e02", seed=1, wait=False)
            client.submit("x3", seed=1, wait=False)  # fills the queue
            with pytest.raises(ServiceError) as excinfo:
                client.submit("x3", seed=2, wait=False)
            assert excinfo.value.status == 429
            assert "queue is full" in str(excinfo.value)
            client.wait(blocker["id"], timeout=60)
            client.close()
