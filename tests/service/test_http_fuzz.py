"""Hypothesis fuzz net over the hand-rolled HTTP/1.1 parser.

The service and the router both speak through
:class:`~repro.service.http.BaseHttpServer`'s parser, so this is the
contract that keeps a hostile or broken client from wedging a shard:

* any malformed request — garbage request line, bad header framing,
  invalid/negative ``Content-Length``, chunked transfer encoding — gets
  a clean ``400`` (``413`` for oversized) JSON error, never a hang or a
  traceback-into-the-socket;
* a client that disappears mid-body (truncated ``Content-Length``) is
  dropped silently;
* none of the above leaks a connection-handler task: after every fuzz
  barrage ``open_connections`` drains to zero and the server still
  answers a well-formed request.

Raw sockets, not a client library — the point is sending exactly the
broken bytes a real parser bug would mishandle.
"""

import json
import socket

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.service import ThreadedServer

from .conftest import wait_until

_FUZZ = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


@pytest.fixture(scope="module")
def server():
    with ThreadedServer(store_path=None, procs=0) as hosted:
        yield hosted


def _address(server):
    _, _, hostport = server.url.partition("//")
    host, _, port = hostport.partition(":")
    return host, int(port)


def _exchange(server, payload: bytes, timeout: float = 5.0) -> bytes:
    """Send raw bytes, read until the server closes; returns the response.

    A server that closes while the client still has unread bytes in
    flight can surface as a TCP reset on the client side (discarding the
    queued response); that still counts as "rejected", so resets return
    whatever arrived instead of failing the exchange.
    """
    chunks = []
    try:
        with socket.create_connection(
            _address(server), timeout=timeout
        ) as sock:
            sock.sendall(payload)
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
    except (socket.timeout, ConnectionResetError, BrokenPipeError):
        pass
    return b"".join(chunks)


def _status_of(response: bytes) -> int:
    assert response.startswith(b"HTTP/1.1 "), response[:80]
    return int(response.split(None, 2)[1])


def _assert_clean_error(response: bytes, statuses=(400,)):
    status = _status_of(response)
    assert status in statuses, response[:200]
    body = response.split(b"\r\n\r\n", 1)[1]
    assert "error" in json.loads(body)  # JSON error, not a traceback


def _assert_drained(server):
    wait_until(
        lambda: server.server.open_connections == 0,
        timeout=30.0,
        message="connection-handler task leaked",
    )


class TestRequestLineFuzz:
    @_FUZZ
    @given(
        line=st.text(
            alphabet=st.characters(
                codec="latin-1", exclude_characters="\r\n"
            ),
            min_size=1,
            max_size=200,
        )
    )
    def test_garbage_request_line_gets_400_family(self, server, line):
        # Connection: close keeps the exchange one-shot even when the
        # fuzz line accidentally parses as a routable request
        raw = (line + "\r\nConnection: close\r\n\r\n").encode("latin-1")
        response = _exchange(server, raw)
        if not response:
            return  # empty first line: server treats it as client-gone
        # a fuzz line may accidentally parse as METHOD PATH VERSION; any
        # answer is fine as long as it is a clean HTTP error, not a hang
        _assert_clean_error(response, statuses=(400, 404, 405))
        _assert_drained(server)

    def test_oversized_request_line(self, server):
        # just over the 64 KiB stream limit: small enough to fit in the
        # socket buffers, so the 400 usually survives the early close (an
        # empty response means the close raced the send — also a clean
        # rejection, covered by the drain + still-alive checks)
        response = _exchange(
            server, b"GET /" + b"a" * 80_000 + b" HTTP/1.1\r\n\r\n"
        )
        if response:
            _assert_clean_error(response)
            assert b"request line too long" in response
        _assert_drained(server)
        assert _status_of(
            _exchange(
                server, b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n"
            )
        ) == 200

    def test_wrong_part_count(self, server):
        for raw in (b"GET\r\n\r\n", b"GET /x HTTP/1.1 extra\r\n\r\n"):
            _assert_clean_error(_exchange(server, raw))
        _assert_drained(server)

    def test_bad_version_token(self, server):
        response = _exchange(server, b"GET /healthz JUNK/1.1\r\n\r\n")
        _assert_clean_error(response)
        _assert_drained(server)

    def test_empty_connection_closes_quietly(self, server):
        with socket.create_connection(_address(server), timeout=5.0):
            pass
        _assert_drained(server)


class TestHeaderFuzz:
    @_FUZZ
    @given(
        name=st.text(
            alphabet=st.characters(
                codec="latin-1", exclude_characters="\r\n:"
            ),
            min_size=0,
            max_size=60,
        ),
        value=st.text(
            alphabet=st.characters(
                codec="latin-1", exclude_characters="\r\n"
            ),
            max_size=60,
        ),
    )
    def test_arbitrary_headers_never_crash_the_parser(
        self, server, name, value
    ):
        raw = (
            f"GET /healthz HTTP/1.1\r\n{name}: {value}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("latin-1")
        response = _exchange(server, raw)
        assert _status_of(response) in (200, 400)
        _assert_drained(server)

    def test_header_without_colon_gets_400(self, server):
        response = _exchange(
            server, b"GET /healthz HTTP/1.1\r\nnot a header line\r\n\r\n"
        )
        _assert_clean_error(response)
        assert b"malformed header line" in response

    def test_too_many_headers_gets_400(self, server):
        headers = b"".join(b"X-Fuzz-%d: y\r\n" % i for i in range(150))
        response = _exchange(
            server, b"GET /healthz HTTP/1.1\r\n" + headers + b"\r\n"
        )
        _assert_clean_error(response)
        assert b"too many headers" in response
        _assert_drained(server)

    def test_oversized_header_line_gets_400(self, server):
        raw = (
            b"GET /healthz HTTP/1.1\r\nX-Big: " + b"v" * 80_000 + b"\r\n\r\n"
        )
        response = _exchange(server, raw)
        if response:
            _assert_clean_error(response)
            assert b"header line too long" in response
        _assert_drained(server)
        assert _status_of(
            _exchange(
                server, b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n"
            )
        ) == 200


class TestBodyFraming:
    @_FUZZ
    @given(
        length=st.one_of(
            st.text(
                alphabet=st.characters(
                    codec="latin-1", exclude_characters="\r\n"
                ),
                min_size=1,
                max_size=20,
            ).filter(lambda s: not s.strip().lstrip("+-").isdigit()),
            st.integers(max_value=-1).map(str),
        )
    )
    def test_invalid_or_negative_content_length_gets_400(
        self, server, length
    ):
        raw = (
            f"POST /run HTTP/1.1\r\nContent-Length: {length}\r\n\r\n"
        ).encode("latin-1")
        response = _exchange(server, raw)
        _assert_clean_error(response)
        assert b"bad Content-Length" in response
        _assert_drained(server)

    def test_chunked_transfer_encoding_gets_400(self, server):
        raw = (
            b"POST /run HTTP/1.1\r\n"
            b"Transfer-Encoding: chunked\r\n\r\n"
            b"5\r\nhello\r\n0\r\n\r\n"
        )
        response = _exchange(server, raw)
        _assert_clean_error(response)
        assert b"transfer-encoding is not supported" in response
        _assert_drained(server)

    def test_declared_body_too_large_gets_413(self, server):
        raw = (
            b"POST /run HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n"
        )
        response = _exchange(server, raw)
        _assert_clean_error(response, statuses=(413,))
        _assert_drained(server)

    @_FUZZ
    @given(sent=st.integers(min_value=0, max_value=9))
    def test_truncated_body_drops_quietly_without_task_leak(
        self, server, sent
    ):
        # declare 10 bytes, send fewer, hang up: the server must drop the
        # connection without answering and without leaking its handler
        raw = (
            b"POST /run HTTP/1.1\r\nContent-Length: 10\r\n\r\n" + b"x" * sent
        )
        with socket.create_connection(_address(server), timeout=10.0) as sock:
            sock.sendall(raw)
        _assert_drained(server)

    @_FUZZ
    @given(body=st.binary(max_size=200))
    def test_non_json_bodies_get_400(self, server, body):
        try:
            parsed = json.loads(body)
        except (ValueError, UnicodeDecodeError):
            parsed = None
        if isinstance(parsed, (dict,)):
            return  # accidentally valid JSON object; not this test's target
        raw = (
            b"POST /run HTTP/1.1\r\nConnection: close\r\nContent-Length: "
            + str(len(body)).encode()
            + b"\r\n\r\n"
            + body
        )
        response = _exchange(server, raw)
        _assert_clean_error(response)
        _assert_drained(server)


class TestStillAliveAfterFuzz:
    def test_server_answers_normally_after_the_barrage(self, server):
        # runs last in file order for a final end-to-end sanity check
        response = _exchange(
            server,
            b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n",
        )
        assert _status_of(response) == 200
        body = json.loads(response.split(b"\r\n\r\n", 1)[1])
        assert body["status"] == "ok"
        _assert_drained(server)
