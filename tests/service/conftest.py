"""Shared service-test helpers: condition polling instead of bare sleeps.

Service tests synchronize with background machinery (scheduler tasks,
subprocess servers, health probes).  A fixed ``time.sleep(x)`` is the
flaky way to do that — too short on a loaded CI box, wastefully long
everywhere else.  These helpers poll a *condition* with a deadline: they
return as soon as the condition holds and fail with the caller's message
(plus the last observed state) only at the deadline.
"""

import asyncio
import os
import subprocess
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parents[2]

#: generous ceiling — the point of polling is that the wait *ends early*
DEFAULT_TIMEOUT = 60.0
DEFAULT_INTERVAL = 0.01


def wait_until(
    predicate,
    timeout=DEFAULT_TIMEOUT,
    interval=DEFAULT_INTERVAL,
    message="condition not met",
):
    """Poll ``predicate()`` until truthy; return its value.

    Raises ``AssertionError`` with ``message`` at the deadline.  Use for
    any cross-thread/cross-process state ("server is up", "job is
    running") instead of a fixed sleep.
    """
    deadline = time.monotonic() + timeout
    while True:
        value = predicate()
        if value:
            return value
        if time.monotonic() >= deadline:
            raise AssertionError(f"{message} (after {timeout}s)")
        time.sleep(interval)


async def await_until(
    predicate,
    timeout=DEFAULT_TIMEOUT,
    interval=DEFAULT_INTERVAL,
    message="condition not met",
):
    """The asyncio twin of :func:`wait_until` (polls on the event loop)."""
    deadline = time.monotonic() + timeout
    while True:
        value = predicate()
        if value:
            return value
        if time.monotonic() >= deadline:
            raise AssertionError(f"{message} (after {timeout}s)")
        await asyncio.sleep(interval)


async def wait_job_state(job, state, timeout=DEFAULT_TIMEOUT):
    """Wait until an in-process :class:`~repro.service.jobs.Job` reaches
    ``state`` (most tests wait for "running": the blocker occupying the
    single worker slot)."""
    await await_until(
        lambda: job.state == state,
        timeout=timeout,
        message=f"job never reached {state!r} (state {job.state!r})",
    )


def spawn_server(store, *extra_args):
    """Start a real ``serve`` subprocess; returns ``(process, url)``.

    Binds port 0 and parses the startup banner, so tests never race a
    hard-coded port.  Extra CLI args pass through (e.g. ``"--procs",
    "1"`` or ``"--store-backend", "sqlite"``).
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.experiments",
            "serve",
            "--port",
            "0",
            "--store",
            str(store),
            *extra_args,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    banner = process.stdout.readline()
    assert "serving http://" in banner, banner
    url = banner.split()[1]
    return process, url
