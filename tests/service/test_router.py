"""Router tests against in-thread shards: affinity, relays, degradation.

Uses :class:`~repro.service.http.ThreadedServer` instances as shards (no
subprocesses — fast), so these cover the routing logic itself; the
process-level chaos path (SIGKILL, restart, ring healing) lives in
``test_shard_failover.py``.
"""

import pytest

from repro.errors import ModelError
from repro.service import (
    Router,
    ServiceClient,
    ServiceError,
    ThreadedRouter,
    ThreadedServer,
)

from .conftest import wait_until


@pytest.fixture(scope="module")
def cluster(tmp_path_factory):
    """Two in-thread shards behind a router, shared by read-mostly tests."""
    root = tmp_path_factory.mktemp("cluster")
    shards = {
        name: ThreadedServer(
            store_path=root / name, procs=0, name=name, queue_limit=8
        )
        for name in ("s0", "s1")
    }
    router = ThreadedRouter({name: s.url for name, s in shards.items()})
    client = ServiceClient(router.url)
    yield {"shards": shards, "router": router, "client": client}
    client.close()
    router.stop()
    for shard in shards.values():
        shard.stop()


class TestRouterConstruction:
    def test_needs_shards(self):
        with pytest.raises(ModelError, match="at least one shard"):
            Router({})

    def test_rejects_bad_shard_names(self):
        with pytest.raises(ModelError, match="shard name"):
            Router({"has space": "http://127.0.0.1:1"})

    def test_rejects_non_http_urls(self):
        with pytest.raises(ModelError, match="http"):
            Router({"s0": "https://127.0.0.1:1"})


class TestRouting:
    def test_healthz_reports_cluster_state(self, cluster):
        health = cluster["client"].healthz()
        assert health["role"] == "router"
        assert health["status"] == "ok"
        assert health["shards_total"] == 2
        assert health["shards_healthy"] == 2

    def test_run_lands_on_the_ring_owner_and_is_labelled(self, cluster):
        client = cluster["client"]
        router = cluster["router"].router
        job = client.run("a4", seed=11)
        spec_key = job["key"]
        assert job["shard"] == router.owner(spec_key)
        # the job id carries the shard name, so lookups route back
        assert job["id"].startswith(job["shard"] + "-job-")

    def test_identical_requests_share_a_shard_and_its_cache(self, cluster):
        client = cluster["client"]
        first = client.run("a4", seed=21)
        second = client.submit("a4", seed=21, wait=True)
        assert second["shard"] == first["shard"]
        assert second["cached"] is True

    def test_distinct_keys_spread_across_shards(self, cluster):
        client = cluster["client"]
        placed = {
            client.submit("a5", seed=seed, wait=True)["shard"]
            for seed in range(16)
        }
        assert placed == {"s0", "s1"}

    def test_job_lookup_routes_by_id_prefix(self, cluster):
        client = cluster["client"]
        job = client.run("a4", seed=31)
        looked = client.job(job["id"])
        assert looked["state"] == "done"
        assert looked["shard"] == job["shard"]
        assert looked["record"]["experiment_id"] == "a4"

    def test_unknown_job_id_404s_cluster_wide(self, cluster):
        with pytest.raises(ServiceError) as excinfo:
            cluster["client"].job("sX-job-999999")
        assert excinfo.value.status == 404

    def test_jobs_listing_merges_shards_newest_first(self, cluster):
        client = cluster["client"]
        client.run("a4", seed=41)
        client.run("a5", seed=42)
        jobs = client.jobs()["jobs"]
        assert len(jobs) >= 2
        assert {job["shard"] for job in jobs} == {"s0", "s1"}
        created = [job["created"] for job in jobs]
        assert created == sorted(created, reverse=True)

    def test_validation_errors_answer_router_side(self, cluster):
        # did-you-mean hints survive: the router validates before routing
        with pytest.raises(ServiceError, match="did you mean"):
            cluster["client"].submit("a44")

    def test_cluster_metrics_aggregate_shard_counters(self, cluster):
        client = cluster["client"]
        before = client.metrics()
        client.run("a5", seed=51)
        after = client.metrics()
        assert after["shards_reachable"] == 2
        assert after["jobs"]["submitted"] == before["jobs"]["submitted"] + 1
        assert set(after["per_shard"]) == {"s0", "s1"}

    def test_shards_endpoint_exposes_topology(self, cluster):
        payload = cluster["client"]._request("GET", "/shards")[1]
        assert payload["ring"]["shards"] == ["s0", "s1"]
        assert payload["ring"]["vnodes"] >= 1
        states = {entry["name"]: entry for entry in payload["shards"]}
        assert states["s0"]["healthy"] and states["s1"]["healthy"]

    def test_experiments_catalog_served_by_router(self, cluster):
        catalog = cluster["client"].experiments()
        assert any(entry["id"] == "a2" for entry in catalog["experiments"])

    def test_shard_429_relays_verbatim(self, tmp_path):
        # a single tiny-queue shard: fill the worker + queue, then expect
        # the router to relay the shard's 429 untouched
        shard = ThreadedServer(
            store_path=tmp_path / "s0", procs=0, name="s0", queue_limit=1
        )
        router = ThreadedRouter({"s0": shard.url})
        client = ServiceClient(router.url)
        try:
            blocker = client.submit("e02", seed=61, wait=False)
            wait_until(
                lambda: client.job(blocker["id"])["state"] == "running",
                message="blocker never started",
            )
            client.submit("a4", seed=62, wait=False)  # fills the queue
            with pytest.raises(ServiceError) as excinfo:
                client.submit("a5", seed=63, wait=False)
            assert excinfo.value.status == 429
            assert "queue is full" in str(excinfo.value)
        finally:
            client.close()
            router.stop()
            shard.stop()


class TestDegradation:
    def test_down_shard_reroutes_then_503_when_all_down(self, tmp_path):
        s0 = ThreadedServer(store_path=tmp_path / "s0", procs=0, name="s0")
        s1 = ThreadedServer(store_path=tmp_path / "s1", procs=0, name="s1")
        router = ThreadedRouter({"s0": s0.url, "s1": s1.url})
        client = ServiceClient(router.url)
        try:
            # place one job per shard by scanning seeds
            by_shard = {}
            for seed in range(16):
                job = client.submit("a5", seed=seed, wait=True)
                by_shard.setdefault(job["shard"], job)
                if len(by_shard) == 2:
                    break
            assert len(by_shard) == 2
            s1.stop()  # shard down (clean stop still refuses connections)
            router.check_health()
            health = client.healthz()
            assert health["status"] == "ok"  # degraded but serving
            assert health["shards_healthy"] == 1
            # a key owned by the dead shard re-routes to the survivor
            seed = by_shard["s1"]["seed"]
            rerouted = client.submit("a5", seed=seed, wait=True)
            assert rerouted["shard"] == "s0"
            # job state for the dead shard's ids is honestly unavailable
            with pytest.raises(ServiceError) as excinfo:
                client.job(by_shard["s1"]["id"])
            assert excinfo.value.status == 503
            s0.stop()
            router.check_health()
            with pytest.raises(ServiceError) as excinfo:
                client.submit("a5", seed=99, wait=True)
            assert excinfo.value.status == 503
            assert "no shard reachable" in str(excinfo.value)
        finally:
            client.close()
            router.stop()
            s0.stop()
            s1.stop()

    def test_healthz_503_when_every_shard_is_down(self, tmp_path):
        shard = ThreadedServer(store_path=tmp_path / "s0", procs=0, name="s0")
        router = ThreadedRouter({"s0": shard.url})
        client = ServiceClient(router.url)
        try:
            shard.stop()
            router.check_health()
            with pytest.raises(ServiceError) as excinfo:
                client.healthz()
            assert excinfo.value.status == 503
        finally:
            client.close()
            router.stop()
            shard.stop()
