"""Unit tests for the consistent-hash ring: determinism, balance, stability."""

import pytest

from repro.errors import ModelError
from repro.service import HashRing
from repro.store.records import cache_key

KEYS = [f"key-{index}" for index in range(4000)]


class TestConstruction:
    def test_needs_at_least_one_shard(self):
        with pytest.raises(ModelError, match="at least one shard"):
            HashRing([])

    def test_rejects_duplicates(self):
        with pytest.raises(ModelError, match="duplicate"):
            HashRing(["s0", "s0"])

    def test_rejects_nonpositive_vnodes(self):
        with pytest.raises(ModelError, match="vnodes"):
            HashRing(["s0"], vnodes=0)

    def test_membership_and_len(self):
        ring = HashRing(["s1", "s0"])
        assert len(ring) == 2
        assert "s0" in ring and "s1" in ring and "s2" not in ring
        assert list(ring) == ["s0", "s1"]


class TestOwnership:
    def test_single_shard_owns_everything(self):
        ring = HashRing(["only"])
        assert all(ring.owner(key) == "only" for key in KEYS[:100])

    def test_owner_is_deterministic_and_order_insensitive(self):
        forward = HashRing(["s0", "s1", "s2"])
        shuffled = HashRing(["s2", "s0", "s1"])
        for key in KEYS[:500]:
            assert forward.owner(key) == shuffled.owner(key)

    def test_owner_heads_the_preference_list(self):
        ring = HashRing(["s0", "s1", "s2"])
        for key in KEYS[:200]:
            preference = ring.preference(key)
            assert preference[0] == ring.owner(key)
            assert sorted(preference) == ["s0", "s1", "s2"]

    def test_real_cache_keys_balance_within_bounds(self):
        ring = HashRing(["s0", "s1", "s2", "s3"])
        keys = [
            cache_key("a2", seed, True, {"presence_prob": p}, "1.0", "auto")
            for seed in range(250)
            for p in (0.1, 0.2, 0.3, 0.4)
        ]
        counts = ring.distribution(keys)
        expected = len(keys) / len(ring)
        for shard, count in counts.items():
            # 64 vnodes keeps every shard within ~2x of the fair share
            assert expected / 2 < count < expected * 2, counts

    def test_removing_a_shard_only_remaps_its_own_share(self):
        before = HashRing(["s0", "s1", "s2", "s3"])
        after = HashRing(["s0", "s1", "s2"])  # s3 removed
        moved_from_survivors = sum(
            1
            for key in KEYS
            if before.owner(key) != "s3"
            and before.owner(key) != after.owner(key)
        )
        # consistency property: keys owned by survivors stay put
        assert moved_from_survivors == 0
        # and s3's share lands somewhere (everything still owned)
        assert all(after.owner(key) in after for key in KEYS[:100])

    def test_adding_a_shard_steals_roughly_its_fair_share(self):
        before = HashRing(["s0", "s1", "s2"])
        after = HashRing(["s0", "s1", "s2", "s3"])
        moved = sum(
            1 for key in KEYS if before.owner(key) != after.owner(key)
        )
        fair = len(KEYS) / 4
        assert fair * 0.4 < moved < fair * 2.0, moved
        # every moved key moved *to* the new shard, never between old ones
        for key in KEYS:
            if before.owner(key) != after.owner(key):
                assert after.owner(key) == "s3"
