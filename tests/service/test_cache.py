"""Unit tests for the service's two-tier cache."""

import pytest

from repro.errors import ModelError
from repro.experiments import run_experiment
from repro.service import TwoTierCache
from repro.store import ResultStore, make_record


@pytest.fixture(scope="module")
def records():
    return [
        make_record(
            "a5", seed=seed, result=run_experiment("a5", seed=seed, fast=True)
        )
        for seed in range(4)
    ]


class TestTwoTierCache:
    def test_miss_then_memory_hit(self, records):
        cache = TwoTierCache()
        key = records[0]["key"]
        assert cache.get(key) is None
        cache.put(records[0])
        record, source = cache.lookup(key)
        assert record["key"] == key
        assert source == "memory"
        assert cache.stats()["misses"] == 1
        assert cache.stats()["memory_hits"] == 1

    def test_store_hit_promotes_to_memory(self, tmp_path, records):
        store = ResultStore(tmp_path)
        store.put(records[0])
        cache = TwoTierCache(ResultStore(tmp_path))
        record, source = cache.lookup(records[0]["key"])
        assert source == "store"
        assert record["result"]["passed"] is True
        _, source = cache.lookup(records[0]["key"])
        assert source == "memory"
        stats = cache.stats()
        assert stats["store_hits"] == 1
        assert stats["memory_hits"] == 1
        assert stats["hit_ratio"] == 1.0

    def test_put_persists_through_to_store(self, tmp_path, records):
        cache = TwoTierCache(ResultStore(tmp_path))
        cache.put(records[0])
        # a completely fresh store handle sees the record on disk
        assert records[0]["key"] in ResultStore(tmp_path).load()

    def test_lru_eviction_order(self, records):
        cache = TwoTierCache(capacity=2)
        cache.put(records[0])
        cache.put(records[1])
        cache.get(records[0]["key"])  # refresh 0: 1 is now least recent
        cache.put(records[2])
        assert cache.get(records[1]["key"]) is None
        assert cache.get(records[0]["key"]) is not None
        assert cache.evictions == 1

    def test_identity_only_records_are_not_cacheable(self, tmp_path):
        cache = TwoTierCache(ResultStore(tmp_path))
        bare = make_record("a5", seed=99)
        with pytest.raises(ModelError, match="identity-only"):
            cache.put(bare)
        # an identity-only record already in the store is not served
        store = ResultStore(tmp_path)
        store.put(bare)
        cache = TwoTierCache(ResultStore(tmp_path))
        assert cache.get(bare["key"]) is None
        assert bare["key"] not in cache

    def test_contains_checks_both_tiers(self, tmp_path, records):
        store = ResultStore(tmp_path)
        store.put(records[0])
        cache = TwoTierCache(ResultStore(tmp_path))
        assert records[0]["key"] in cache
        assert "not-a-key" not in cache

    def test_capacity_validation(self):
        with pytest.raises(ModelError, match="capacity"):
            TwoTierCache(capacity=0)
