"""Tests for the async job scheduler: coalescing, priorities, lifecycle.

Most tests run the scheduler in thread mode (``procs=0`` — no
subprocesses, millisecond experiments); one end-to-end test covers the
process-pool mode including adaptive progress streaming.
"""

import asyncio

import pytest

from repro.errors import ModelError
from repro.service import (
    JobScheduler,
    JobSpec,
    QueueFullError,
    ServiceError,
    TwoTierCache,
)
from repro.store import ResultStore

from .conftest import await_until, wait_job_state


def run(coroutine):
    return asyncio.run(coroutine)


async def _scheduler(tmp_path, **kwargs):
    kwargs.setdefault("procs", 0)
    cache = TwoTierCache(ResultStore(tmp_path))
    scheduler = JobScheduler(cache, **kwargs)
    await scheduler.start()
    return scheduler


async def _wait_running(job, timeout=30.0):
    await wait_job_state(job, "running", timeout=timeout)


class TestJobSpec:
    def test_cache_key_matches_sweep_identity(self):
        from repro.store.records import cache_key

        spec = JobSpec("a4", seed=3, params=(("n_versions", 5),))
        assert spec.cache_key() == cache_key(
            "a4", 3, True, {"n_versions": 5}, engine="auto"
        )

    def test_from_request_validates_id_with_suggestion(self):
        with pytest.raises(ModelError, match="did you mean"):
            JobSpec.from_request({"experiment_id": "e21"})

    def test_from_request_validates_knobs(self):
        with pytest.raises(ModelError, match="supported knobs"):
            JobSpec.from_request({"experiment_id": "a4", "params": {"nope": 1}})

    def test_from_request_rejects_stray_fields(self):
        with pytest.raises(ModelError, match="unknown request field"):
            JobSpec.from_request({"experiment_id": "a4", "bogus": 1})

    def test_from_request_type_errors(self):
        with pytest.raises(ModelError, match="seed must be an integer"):
            JobSpec.from_request({"experiment_id": "a4", "seed": "zero"})
        with pytest.raises(ModelError, match="seed must be an integer"):
            JobSpec.from_request({"experiment_id": "a4", "seed": True})
        with pytest.raises(ModelError, match="fast must be a boolean"):
            JobSpec.from_request({"experiment_id": "a4", "fast": "yes"})
        with pytest.raises(ModelError, match="body must be a JSON object"):
            JobSpec.from_request(["a4"])

    def test_engine_and_n_jobs_validation(self):
        with pytest.raises(ModelError, match="engine must be one of"):
            JobSpec("a4", engine="warp")
        with pytest.raises(ModelError, match="n_jobs"):
            JobSpec("a4", n_jobs=0)


class TestScheduler:
    def test_compute_then_cache_then_store(self, tmp_path):
        async def main():
            scheduler = await _scheduler(tmp_path)
            spec = JobSpec("a4", seed=5)
            job = await (scheduler.submit(spec)).wait(timeout=60)
            assert job.state == "done"
            assert job.source == "computed"
            assert job.record["result"]["passed"] is True
            # same spec again: memory hit, already done at submit time
            warm = scheduler.submit(spec)
            assert warm.done and warm.cached and warm.source == "memory"
            await scheduler.close()
            # a fresh scheduler over the same store serves from disk
            scheduler = await _scheduler(tmp_path)
            cold_start = scheduler.submit(spec)
            assert cold_start.cached and cold_start.source == "store"
            await scheduler.close()

        run(main())

    def test_identical_requests_coalesce_to_one_computation(self, tmp_path):
        async def main():
            scheduler = await _scheduler(tmp_path)
            spec = JobSpec("a4", seed=42)
            jobs = [scheduler.submit(spec) for _ in range(8)]
            assert len({job.id for job in jobs}) == 1
            await jobs[0].wait(timeout=60)
            assert jobs[0].coalesced == 7
            assert scheduler.metrics.completed == 1
            assert scheduler.metrics.coalesced == 7
            await scheduler.close()

        run(main())

    def test_priorities_pop_before_fifo(self, tmp_path):
        async def main():
            scheduler = await _scheduler(tmp_path)
            blocker = scheduler.submit(JobSpec("e07", seed=11))
            await _wait_running(blocker)
            low = scheduler.submit(JobSpec("a4", seed=1), priority=0)
            high = scheduler.submit(JobSpec("a4", seed=2), priority=5)
            await low.wait(timeout=60)
            await high.wait(timeout=60)
            assert high.finished < low.finished
            await scheduler.close()

        run(main())

    def test_coalesced_caller_escalates_queued_priority(self, tmp_path):
        async def main():
            scheduler = await _scheduler(tmp_path)
            blocker = scheduler.submit(JobSpec("e07", seed=16))
            await _wait_running(blocker)
            shared = scheduler.submit(JobSpec("a4", seed=10), priority=0)
            other = scheduler.submit(JobSpec("a4", seed=11), priority=3)
            again = scheduler.submit(JobSpec("a4", seed=10), priority=9)
            assert again is shared
            assert shared.priority == 9  # escalated by the coalesced caller
            await shared.wait(timeout=60)
            await other.wait(timeout=60)
            assert shared.finished < other.finished
            await scheduler.close()

        run(main())

    def test_cancel_queued_but_not_running(self, tmp_path):
        async def main():
            scheduler = await _scheduler(tmp_path)
            blocker = scheduler.submit(JobSpec("e07", seed=12))
            await _wait_running(blocker)
            queued = scheduler.submit(JobSpec("a4", seed=3))
            assert scheduler.cancel(queued.id) is True
            assert queued.state == "cancelled"
            assert scheduler.cancel(blocker.id) is False
            assert scheduler.cancel("job-999999") is False
            await blocker.wait(timeout=60)
            await scheduler.close()
            # the cancelled job never reached the store
            store = ResultStore(tmp_path).load()
            assert queued.key not in store
            assert blocker.key in store

        run(main())

    def test_cancelled_key_can_be_resubmitted(self, tmp_path):
        async def main():
            scheduler = await _scheduler(tmp_path)
            blocker = scheduler.submit(JobSpec("e07", seed=13))
            await _wait_running(blocker)
            first = scheduler.submit(JobSpec("a4", seed=4))
            scheduler.cancel(first.id)
            second = scheduler.submit(JobSpec("a4", seed=4))
            assert second.id != first.id
            await second.wait(timeout=60)
            assert second.state == "done"
            await scheduler.close()

        run(main())

    def test_bounded_queue_rejects_with_429(self, tmp_path):
        async def main():
            scheduler = await _scheduler(tmp_path, queue_limit=2)
            blocker = scheduler.submit(JobSpec("e07", seed=14))
            await _wait_running(blocker)
            scheduler.submit(JobSpec("a4", seed=5))
            scheduler.submit(JobSpec("a4", seed=6))
            with pytest.raises(QueueFullError) as excinfo:
                scheduler.submit(JobSpec("a4", seed=7))
            assert excinfo.value.status == 429
            assert scheduler.metrics.rejected == 1
            await scheduler.close()

        run(main())

    def test_failed_job_reports_error(self, tmp_path):
        async def main():
            scheduler = await _scheduler(tmp_path)
            job = scheduler.submit(
                JobSpec("x3", seed=0, params=(("suite_size", -5),))
            )
            await job.wait(timeout=60)
            assert job.state == "failed"
            assert "suite size must be >= 0" in job.error
            assert scheduler.metrics.failed == 1
            # a failed key is not cached; resubmitting retries
            retry = scheduler.submit(
                JobSpec("x3", seed=0, params=(("suite_size", -5),))
            )
            assert retry.id != job.id
            await retry.wait(timeout=60)
            await scheduler.close()

        run(main())

    def test_close_drains_running_and_cancels_queued(self, tmp_path):
        async def main():
            scheduler = await _scheduler(tmp_path)
            running = scheduler.submit(JobSpec("e07", seed=15))
            await _wait_running(running)
            queued = scheduler.submit(JobSpec("a4", seed=8))
            await scheduler.close()
            assert running.state == "done"
            assert queued.state == "cancelled"
            with pytest.raises(ServiceError) as excinfo:
                scheduler.submit(JobSpec("a4", seed=9))
            assert excinfo.value.status == 503
            store = ResultStore(tmp_path).load()
            assert running.key in store
            assert queued.key not in store

        run(main())

    def test_payload_shape(self, tmp_path):
        async def main():
            scheduler = await _scheduler(tmp_path)
            job = scheduler.submit(JobSpec("a4", seed=20))
            await job.wait(timeout=60)
            payload = job.to_payload(include_record=True)
            assert payload["state"] == "done"
            assert payload["experiment_id"] == "a4"
            assert payload["duration_seconds"] >= 0.0
            assert payload["record"]["key"] == job.key
            snapshot = scheduler.metrics_snapshot()
            assert snapshot["jobs"]["completed"] == 1
            assert snapshot["compute_seconds"]["count"] == 1
            assert snapshot["cache"]["store_records"] == 1
            await scheduler.close()

        run(main())

    def test_constructor_validation(self):
        with pytest.raises(ModelError, match="procs"):
            JobScheduler(procs=-1)
        with pytest.raises(ModelError, match="queue_limit"):
            JobScheduler(queue_limit=0)


class TestProcessMode:
    def test_process_pool_job_streams_adaptive_progress(self, tmp_path):
        async def main():
            scheduler = await _scheduler(tmp_path, procs=1)
            spec = JobSpec(
                "e01",
                seed=0,
                params=(("precision", {"rel_hw": 0.05, "budget": 20000}),),
            )
            job = scheduler.submit(spec)
            await job.wait(timeout=180)
            assert job.state == "done"
            # progress events may still be in the manager queue right
            # after completion; give the drain task a few beats
            await await_until(
                lambda: job.progress_history,
                timeout=10.0,
                message="no adaptive rounds streamed",
            )
            latest = job.progress
            assert latest["round"] >= 1
            metric = next(iter(latest["metrics"].values()))
            assert metric["replications"] > 0
            assert "half_width" in metric
            adaptive = job.record["result"]["extra"]["adaptive"]
            assert adaptive  # the report also reached the stored record
            await scheduler.close()

        run(main())
