"""Chaos test: SIGKILL a shard mid-load; the cluster degrades, then heals.

The cluster-level crash contract, against real ``serve`` subprocesses:

* while a shard is hard-killed (SIGKILL — no drain, no goodbye) under
  concurrent load, every request the router accepted still completes:
  in-flight forwards fail over to the surviving shard transparently, so
  callers never see the failure;
* the killed shard's *persisted* results survive: its store is on disk,
  so after restart the same requests are served as cache hits;
* the ring heals without reconfiguration: the restarted shard comes back
  on its recorded port, the health probe notices, and keys it owns route
  to it again.
"""

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.service import LocalCluster, ServiceClient

from .conftest import wait_until

pytestmark = pytest.mark.slow

SEEDS = range(12)


def _submit(url, seed):
    # one client per call: clients hold a keep-alive connection and are
    # not thread-safe
    with ServiceClient(url) as client:
        return client.submit("a5", seed=seed, wait=True)


class TestShardFailover:
    def test_kill_one_shard_under_load_no_accepted_request_lost(
        self, tmp_path
    ):
        with LocalCluster(2, tmp_path / "stores") as cluster:
            url = cluster.url
            # phase 1: warm the cluster; learn each seed's home shard
            home = {}
            for seed in SEEDS:
                job = _submit(url, seed)
                assert job["state"] == "done", job
                home[seed] = job["shard"]
            assert set(home.values()) == {"s0", "s1"}, home
            victim = cluster.shard("s0")

            # phase 2: concurrent load with a mid-flight SIGKILL
            with ThreadPoolExecutor(max_workers=4) as pool:
                futures = [
                    pool.submit(_submit, url, seed) for seed in SEEDS
                ]
                victim.kill()  # no drain — the chaos moment
                results = [future.result(timeout=120) for future in futures]
            for job in results:
                # every accepted request completed somewhere: either its
                # healthy home shard (cache hit) or a failover recompute
                assert job["state"] == "done", job
                assert job["shard"] in ("s0", "s1")
            survivors = {job["shard"] for job in results}
            assert "s1" in survivors
            # degraded but honest: the router reports one shard down
            with ServiceClient(url) as client:
                wait_until(
                    lambda: client.healthz()["shards_healthy"] == 1,
                    message="router never noticed the killed shard",
                )
                # s0-owned keys now answer from s1 (explicitly re-routed)
                s0_seed = next(s for s in SEEDS if home[s] == "s0")
                rerouted = client.submit("a5", seed=s0_seed, wait=True)
                assert rerouted["state"] == "done"
                assert rerouted["shard"] == "s1"

            # phase 3: the shard returns on its recorded port; ring heals
            victim.restart()
            with ServiceClient(url) as client:
                wait_until(
                    lambda: client.healthz()["shards_healthy"] == 2,
                    message="router never saw the shard return",
                )
                healed = client.submit("a5", seed=s0_seed, wait=True)
                assert healed["shard"] == "s0"  # affinity restored
                # SIGKILL did not eat the pre-kill persisted result: the
                # restarted shard serves it from its on-disk store
                assert healed["cached"] is True, healed
                assert healed["source"] in ("store", "memory")

    def test_kill_and_heal_with_sqlite_backend(self, tmp_path):
        # the same degrade/heal cycle on the other store backend: WAL-mode
        # SQLite must survive SIGKILL just like the append-only JSONL file
        with LocalCluster(
            2, tmp_path / "stores", store_backend="sqlite"
        ) as cluster:
            url = cluster.url
            job = _submit(url, 0)
            assert job["state"] == "done"
            victim = cluster.shard(job["shard"])
            victim.kill()
            with ServiceClient(url) as client:
                wait_until(
                    lambda: client.healthz()["shards_healthy"] == 1,
                    message="router never noticed the killed shard",
                )
                rerouted = client.submit("a5", seed=0, wait=True)
                assert rerouted["state"] == "done"
                assert rerouted["shard"] != victim.name
            victim.restart()
            with ServiceClient(url) as client:
                wait_until(
                    lambda: client.healthz()["shards_healthy"] == 2,
                    message="router never saw the shard return",
                )
                healed = client.submit("a5", seed=0, wait=True)
                assert healed["shard"] == victim.name
                assert healed["cached"] is True, healed
