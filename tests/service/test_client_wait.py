"""ServiceClient polling semantics: deadlines and disappeared jobs.

The failure modes under test are protocol-level, not transport-level, so
the server side is stubbed by monkeypatching the client's own ``job`` /
``submit`` methods — what reaches the wait/run logic is exactly what a
real server response would have produced.
"""

import time

import pytest

from repro.service import ServiceClient, ServiceError


@pytest.fixture
def client():
    # never actually connected: every request-level method is stubbed
    return ServiceClient("http://127.0.0.1:1")


class TestWait:
    def test_returns_terminal_job(self, client, monkeypatch):
        states = iter(["queued", "running", "done"])
        monkeypatch.setattr(
            client, "job", lambda job_id: {"id": job_id, "state": next(states)}
        )
        job = client.wait("j1", timeout=5.0, poll=0.001)
        assert job["state"] == "done"

    def test_times_out_with_504(self, client, monkeypatch):
        monkeypatch.setattr(
            client, "job", lambda job_id: {"id": job_id, "state": "running"}
        )
        start = time.monotonic()
        with pytest.raises(ServiceError, match="timed out after") as info:
            client.wait("j1", timeout=0.05, poll=0.001)
        assert info.value.status == 504
        assert time.monotonic() - start < 5.0

    def test_disappeared_job_is_410_not_a_poll_loop(self, client, monkeypatch):
        # a 404 for an accepted id can never heal (shard restart or
        # history compaction dropped the job) — it must surface
        # immediately, not spin until the deadline
        def gone(job_id):
            raise ServiceError(f"unknown job id {job_id!r}", status=404)

        monkeypatch.setattr(client, "job", gone)
        start = time.monotonic()
        with pytest.raises(ServiceError, match="no longer exists") as info:
            client.wait("j1", timeout=60.0, poll=0.001)
        assert info.value.status == 410
        assert time.monotonic() - start < 1.0

    def test_job_vanishing_mid_wait_is_410(self, client, monkeypatch):
        calls = {"n": 0}

        def flaky(job_id):
            calls["n"] += 1
            if calls["n"] < 3:
                return {"id": job_id, "state": "running"}
            raise ServiceError("unknown job id", status=404)

        monkeypatch.setattr(client, "job", flaky)
        with pytest.raises(ServiceError) as info:
            client.wait("j1", timeout=60.0, poll=0.001)
        assert info.value.status == 410
        assert calls["n"] == 3

    def test_other_errors_propagate_unchanged(self, client, monkeypatch):
        def boom(job_id):
            raise ServiceError("shard unreachable", status=503)

        monkeypatch.setattr(client, "job", boom)
        with pytest.raises(ServiceError, match="shard unreachable") as info:
            client.wait("j1", timeout=1.0, poll=0.001)
        assert info.value.status == 503


class TestRunTimeout:
    def test_run_threads_the_overall_deadline_into_wait(
        self, client, monkeypatch
    ):
        seen = {}
        monkeypatch.setattr(
            client,
            "submit",
            lambda *a, **kw: {"id": "j1", "state": "running"},
        )

        def fake_wait(job_id, timeout=600.0, poll=0.05):
            seen["timeout"] = timeout
            return {"id": job_id, "state": "done"}

        monkeypatch.setattr(client, "wait", fake_wait)
        job = client.run("e01", timeout=12.5)
        assert job["state"] == "done"
        assert seen["timeout"] <= 12.5

    def test_run_expires_when_submit_eats_the_budget(self, client, monkeypatch):
        def slow_submit(*args, **kwargs):
            time.sleep(0.05)
            return {"id": "j1", "state": "running"}

        monkeypatch.setattr(client, "submit", slow_submit)
        monkeypatch.setattr(
            client,
            "wait",
            lambda *a, **kw: pytest.fail("wait must not run after expiry"),
        )
        with pytest.raises(ServiceError, match="timed out") as info:
            client.run("e01", timeout=0.01)
        assert info.value.status == 504

    def test_run_raises_on_failed_job(self, client, monkeypatch):
        monkeypatch.setattr(
            client,
            "submit",
            lambda *a, **kw: {
                "id": "j1",
                "state": "failed",
                "error": "boom",
            },
        )
        with pytest.raises(ServiceError, match="boom"):
            client.run("e01")
