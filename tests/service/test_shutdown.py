"""Clean-shutdown guarantee: SIGINT drains in-flight work, store stays whole.

Covers the serving layer's crash-consistency contract end to end, against
a real ``serve`` subprocess: on SIGINT the in-flight job completes and
persists, queued jobs are marked cancelled (never partially written), and
the store file contains only complete JSONL lines afterwards.
"""

import json
import os
import signal
import warnings

import pytest

from repro.service import ServiceClient
from repro.store import ResultStore

from .conftest import spawn_server, wait_until


@pytest.mark.slow
class TestSigintShutdown:
    def test_inflight_persists_queued_cancels_store_stays_whole(
        self, tmp_path
    ):
        store_dir = tmp_path / "store"
        process, url = spawn_server(store_dir, "--procs", "1")
        try:
            client = ServiceClient(url)
            # e02 (~0.6 s) occupies the single worker; a4 queues behind it
            running = client.submit("e02", seed=900, wait=False)
            queued = client.submit("a4", seed=901, wait=False)
            wait_until(
                lambda: client.job(running["id"])["state"] == "running",
                message="job never started",
            )
            client.close()
            os.kill(process.pid, signal.SIGINT)
            output, _ = process.communicate(timeout=120)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
        assert process.returncode == 0, output
        assert "shutdown complete" in output
        # the in-flight job completed and persisted; the queued one did not
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # no partial-line warnings
            loaded = ResultStore(store_dir).load()
        keys = {record["key"] for record in loaded}
        assert running["key"] in keys
        assert queued["key"] not in keys
        # every line on disk is complete, parseable JSON
        content = loaded.path.read_text(encoding="utf-8")
        assert content.endswith("\n")
        for line in content.splitlines():
            json.loads(line)
