"""Clean-shutdown guarantee: SIGINT drains in-flight work, store stays whole.

Covers the serving layer's crash-consistency contract end to end, against
a real ``serve`` subprocess: on SIGINT the in-flight job completes and
persists, queued jobs are marked cancelled (never partially written), and
the store file contains only complete JSONL lines afterwards.
"""

import json
import os
import signal
import subprocess
import sys
import time
import warnings
from pathlib import Path

import pytest

from repro.service import ServiceClient
from repro.store import ResultStore

ROOT = Path(__file__).resolve().parents[2]


def _spawn_server(store: Path):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.experiments",
            "serve",
            "--port",
            "0",
            "--procs",
            "1",
            "--store",
            str(store),
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    banner = process.stdout.readline()
    assert "serving http://" in banner, banner
    url = banner.split()[1]
    return process, url


@pytest.mark.slow
class TestSigintShutdown:
    def test_inflight_persists_queued_cancels_store_stays_whole(
        self, tmp_path
    ):
        store_dir = tmp_path / "store"
        process, url = _spawn_server(store_dir)
        try:
            client = ServiceClient(url)
            # e02 (~0.6 s) occupies the single worker; a4 queues behind it
            running = client.submit("e02", seed=900, wait=False)
            queued = client.submit("a4", seed=901, wait=False)
            deadline = time.monotonic() + 60
            while client.job(running["id"])["state"] != "running":
                assert time.monotonic() < deadline, "job never started"
                time.sleep(0.02)
            client.close()
            os.kill(process.pid, signal.SIGINT)
            output, _ = process.communicate(timeout=120)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
        assert process.returncode == 0, output
        assert "shutdown complete" in output
        # the in-flight job completed and persisted; the queued one did not
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # no partial-line warnings
            loaded = ResultStore(store_dir).load()
        keys = {record["key"] for record in loaded}
        assert running["key"] in keys
        assert queued["key"] not in keys
        # every line on disk is complete, parseable JSON
        content = loaded.path.read_text(encoding="utf-8")
        assert content.endswith("\n")
        for line in content.splitlines():
            json.loads(line)
