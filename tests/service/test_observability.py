"""Observability through the service stack: metrics formats, traces,
HEAD/405 semantics, and scrapes under concurrent load."""

import http.client
import json
import threading

import pytest

from repro.obs.metrics import parse_prometheus_text
from repro.service import ServiceClient, ServiceError
from repro.service.http import ThreadedServer
from repro.service.router import ThreadedRouter


@pytest.fixture(scope="module")
def shard(tmp_path_factory):
    store = tmp_path_factory.mktemp("obs_shard_store")
    with ThreadedServer(
        store_path=store, procs=0, queue_limit=64, name="s0"
    ) as hosted:
        yield hosted


@pytest.fixture(scope="module")
def router(shard):
    with ThreadedRouter({"s0": shard.url}) as hosted:
        yield hosted


@pytest.fixture()
def client(router):
    with ServiceClient(router.url) as bound:
        yield bound


@pytest.fixture()
def shard_client(shard):
    with ServiceClient(shard.url) as bound:
        yield bound


def _raw(url, method, path, headers=None):
    host, port = url.split("//")[1].rsplit(":", 1)
    connection = http.client.HTTPConnection(host, int(port), timeout=30)
    try:
        connection.request(method, path, headers=headers or {})
        response = connection.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        connection.close()


class TestMetricsFormats:
    def test_legacy_json_is_the_default(self, client, shard_client):
        client.run("x3", seed=301)
        for bound in (client, shard_client):
            payload = bound.metrics()
            assert "jobs" in payload or "shards" in payload

    def test_prometheus_via_query_param(self, shard_client):
        families = shard_client.metrics(format="prometheus")
        assert families["repro_http_requests_total"]["type"] == "counter"
        assert (
            families["repro_http_request_seconds"]["type"] == "histogram"
        )

    def test_prometheus_via_accept_header(self, shard):
        status, headers, body = _raw(
            shard.url,
            "GET",
            "/metrics",
            {"Accept": "text/plain"},
        )
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert "version=0.0.4" in headers["Content-Type"]
        parse_prometheus_text(body.decode("utf-8"))  # strict

    def test_router_exposition_includes_cluster_summary(self, client):
        client.run("x3", seed=302)
        families = client.metrics(format="prometheus")
        assert "repro_cluster_jobs" in families
        assert "repro_router_relays_total" in families
        assert "repro_router_shards_healthy" in families
        healthy = families["repro_router_shards_healthy"]["samples"]
        assert healthy[0][2] == 1.0

    def test_evictions_exposed_in_both_formats(self, shard_client):
        payload = shard_client.metrics()
        assert "evictions" in payload["cache"]
        families = shard_client.metrics(format="prometheus")
        assert (
            families["repro_cache_evictions_total"]["type"] == "counter"
        )

    def test_unparsed_prometheus_text(self, shard_client):
        text = shard_client.metrics(format="prometheus", parse=False)
        assert isinstance(text, str)
        assert "# TYPE repro_http_requests_total counter" in text

    def test_request_metrics_move_after_requests(self, shard_client):
        shard_client.healthz()
        families = shard_client.metrics(format="prometheus")
        totals = [
            value
            for name, labels, value in families["repro_http_requests_total"][
                "samples"
            ]
            if labels.get("route") == "/healthz"
        ]
        assert sum(totals) >= 1.0


class TestTracePropagation:
    def test_job_echoes_client_trace_id(self, client):
        job = client.run("x3", seed=303)
        assert client.last_trace_id
        assert job["trace_id"] == client.last_trace_id

    def test_trace_id_survives_status_polls(self, client):
        submitted = client.submit("x3", seed=304, wait=False)
        submit_trace = submitted["trace_id"]
        done = client.wait(submitted["id"], timeout=60)
        # the job keeps its submitting request's trace, not the poll's
        assert done["trace_id"] == submit_trace

    def test_direct_shard_requests_are_traced_too(self, shard_client):
        job = shard_client.run("x3", seed=305)
        assert job["trace_id"] == shard_client.last_trace_id


class TestMethodSemantics:
    @pytest.mark.parametrize("fixture", ["shard", "router"])
    def test_405_carries_allow_header(self, fixture, request):
        url = request.getfixturevalue(fixture).url
        status, headers, body = _raw(url, "DELETE", "/metrics")
        assert status == 405
        allow = headers["Allow"].replace(" ", "").split(",")
        assert "GET" in allow and "HEAD" in allow
        assert "error" in json.loads(body)

    @pytest.mark.parametrize("fixture", ["shard", "router"])
    def test_post_only_routes_say_so(self, fixture, request):
        url = request.getfixturevalue(fixture).url
        status, headers, _ = _raw(url, "GET", "/run")
        assert status == 405
        assert "POST" in headers["Allow"]

    @pytest.mark.parametrize("fixture", ["shard", "router"])
    def test_head_matches_get_minus_body(self, fixture, request):
        url = request.getfixturevalue(fixture).url
        get_status, get_headers, get_body = _raw(url, "GET", "/healthz")
        head_status, head_headers, head_body = _raw(
            url, "HEAD", "/healthz"
        )
        assert head_status == get_status == 200
        assert head_body == b""
        # Content-Length still advertises the GET body size (RFC 9110)
        assert int(head_headers["Content-Length"]) > 0


class TestScrapeUnderLoad:
    def test_concurrent_scrapes_parse_while_serving(self, router):
        errors = []
        stop = threading.Event()

        def hammer(seed_base):
            try:
                with ServiceClient(router.url) as bound:
                    for offset in range(6):
                        bound.run("x3", seed=seed_base + offset)
            except Exception as error:  # pragma: no cover
                errors.append(error)
            finally:
                stop.set()

        def scrape():
            with ServiceClient(router.url) as bound:
                while not stop.is_set():
                    families = bound.metrics(format="prometheus")
                    assert "repro_http_requests_total" in families

        workers = [
            threading.Thread(target=hammer, args=(400 + 100 * n,))
            for n in range(3)
        ]
        scraper = threading.Thread(target=scrape)
        for thread in workers:
            thread.start()
        scraper.start()
        for thread in workers:
            thread.join()
        scraper.join()
        assert errors == []

    def test_scrape_totals_match_job_activity(self, shard_client):
        shard_client.run("x3", seed=399)
        families = shard_client.metrics(format="prometheus")
        submitted = sum(
            value
            for _, labels, value in families["repro_jobs_total"]["samples"]
            if labels.get("event") == "submitted"
        )
        legacy = shard_client.metrics()["jobs"]["submitted"]
        assert submitted == legacy
