"""Tests for staged testing trajectories."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.growth import run_staged_testing
from repro.testing import ImperfectOracle, TestSuite
from repro.versions import Version


@pytest.fixture
def version_pair(universe):
    a = Version(universe, np.array([0, 1]))
    b = Version(universe, np.array([1, 2]))
    return a, b


class TestRunStagedTesting:
    def test_initial_record(self, version_pair, profile, space):
        a, b = version_pair
        trajectory = run_staged_testing(
            a, b, [(TestSuite.empty(space), TestSuite.empty(space))], profile
        )
        initial = trajectory.initial
        assert initial.stage == 0
        assert initial.pfd_a == pytest.approx(a.pfd(profile))
        assert initial.faults_a == 2
        assert initial.detected_a == 0

    def test_stage_progression(self, version_pair, profile, space):
        a, b = version_pair
        stages = [
            (TestSuite.of(space, [0]), TestSuite.of(space, [0])),
            (TestSuite.of(space, [2]), TestSuite.of(space, [2])),
        ]
        trajectory = run_staged_testing(a, b, stages, profile)
        assert len(trajectory) == 3
        # stage 1: demand 0 hits fault 0 (only a has it)
        assert trajectory[1].faults_a == 1
        assert trajectory[1].faults_b == 2
        # stage 2: demand 2 hits fault 1 (both have it)
        assert trajectory[2].faults_a == 0
        assert trajectory[2].faults_b == 1

    def test_monotone_under_perfect_testing(self, version_pair, profile, space, rng):
        a, b = version_pair
        stages = [
            (
                TestSuite(space, rng.integers(0, 10, size=2)),
                TestSuite(space, rng.integers(0, 10, size=2)),
            )
            for _ in range(4)
        ]
        trajectory = run_staged_testing(a, b, stages, profile)
        assert trajectory.is_monotone()

    def test_monotone_under_imperfect_oracle(self, version_pair, profile, space):
        a, b = version_pair
        stages = [
            (TestSuite(space, space.demands), TestSuite(space, space.demands))
        ] * 3
        trajectory = run_staged_testing(
            a, b, stages, profile, oracle=ImperfectOracle(0.4), rng=7
        )
        assert trajectory.is_monotone()

    def test_detected_counts_recorded(self, version_pair, profile, space):
        a, b = version_pair
        trajectory = run_staged_testing(
            a, b, [(TestSuite.of(space, [0, 2]), TestSuite.of(space, [9]))], profile
        )
        assert trajectory[1].detected_a == 2
        assert trajectory[1].detected_b == 0

    def test_arrays(self, version_pair, profile, space):
        a, b = version_pair
        trajectory = run_staged_testing(
            a, b, [(TestSuite.of(space, [0]), TestSuite.of(space, [0]))], profile
        )
        assert trajectory.system_pfds().shape == (2,)
        pfd_a, pfd_b = trajectory.version_pfds()
        assert pfd_a.shape == pfd_b.shape == (2,)

    def test_empty_stages_rejected(self, version_pair, profile):
        a, b = version_pair
        with pytest.raises(ModelError):
            run_staged_testing(a, b, [], profile)

    def test_final_property(self, version_pair, profile, space):
        a, b = version_pair
        trajectory = run_staged_testing(
            a,
            b,
            [(TestSuite(space, space.demands), TestSuite(space, space.demands))],
            profile,
        )
        assert trajectory.final.pfd_a == 0.0
        assert trajectory.final.system_pfd == 0.0
