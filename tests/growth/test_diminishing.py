"""Tests for the diminishing-returns diagnostics."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.growth import (
    GrowthCurve,
    diminishing_returns_holds,
    halving_effort,
    marginal_gains,
)


def _curve(sizes, values):
    return GrowthCurve("test", np.array(sizes), np.array(values), exact=True)


class TestMarginalGains:
    def test_known_values(self):
        curve = _curve([0, 10, 30], [0.4, 0.2, 0.1])
        gains = marginal_gains(curve)
        np.testing.assert_allclose(gains, [0.02, 0.005])

    def test_needs_two_points(self):
        with pytest.raises(ModelError):
            marginal_gains(_curve([0], [0.4]))


class TestHalvingEffort:
    def test_reached(self):
        curve = _curve([0, 5, 10], [0.4, 0.3, 0.15])
        assert halving_effort(curve) == 10

    def test_not_reached(self):
        curve = _curve([0, 5], [0.4, 0.3])
        assert halving_effort(curve) == -1

    def test_zero_initial(self):
        curve = _curve([2, 5], [0.0, 0.0])
        assert halving_effort(curve) == 2

    def test_exact_half_counts(self):
        curve = _curve([0, 7], [0.4, 0.2])
        assert halving_effort(curve) == 7


class TestDiminishingReturns:
    def test_convex_curve_passes(self):
        sizes = [0, 10, 20, 40]
        values = [0.4, 0.2, 0.12, 0.05]
        assert diminishing_returns_holds(_curve(sizes, values))

    def test_accelerating_curve_fails(self):
        curve = _curve([0, 10, 20], [0.4, 0.38, 0.1])
        assert not diminishing_returns_holds(curve)

    def test_exact_operational_curve_diminishes(self):
        """A real exact growth curve on a uniform grid shows diminishing
        returns."""
        from repro.demand import DemandSpace, uniform_profile
        from repro.faults import zipf_sized_universe
        from repro.growth import version_growth_curve
        from repro.populations import BernoulliFaultPopulation

        space = DemandSpace(60)
        universe = zipf_sized_universe(
            space, n_faults=8, max_region_size=12, exponent=1.0, rng=3
        )
        population = BernoulliFaultPopulation.uniform(universe, 0.4)
        curve = version_growth_curve(
            population, uniform_profile(space), [0, 20, 40, 60, 80]
        )
        assert diminishing_returns_holds(curve, tolerance=1e-9)
