"""Tests for the growth-curve machinery."""

import numpy as np
import pytest

from repro.demand import DemandSpace, uniform_profile
from repro.errors import ModelError
from repro.faults import zipf_sized_universe
from repro.growth import (
    GrowthCurve,
    back_to_back_growth_curves,
    system_growth_curves,
    version_growth_curve,
)
from repro.populations import BernoulliFaultPopulation
from repro.versions import pessimistic_outputs, shared_fault_outputs


@pytest.fixture
def growth_population():
    space = DemandSpace(60)
    universe = zipf_sized_universe(
        space, n_faults=8, max_region_size=12, exponent=1.0, rng=0
    )
    return BernoulliFaultPopulation.uniform(universe, 0.4), uniform_profile(space)


class TestGrowthCurve:
    def test_validation_lengths(self):
        with pytest.raises(ModelError):
            GrowthCurve("x", np.array([1, 2]), np.array([0.1]), exact=True)

    def test_validation_monotone_sizes(self):
        with pytest.raises(ModelError):
            GrowthCurve("x", np.array([2, 1]), np.array([0.1, 0.2]), exact=True)

    def test_properties(self):
        curve = GrowthCurve(
            "x", np.array([0, 10]), np.array([0.4, 0.1]), exact=True
        )
        assert curve.initial == pytest.approx(0.4)
        assert curve.final == pytest.approx(0.1)
        assert curve.total_improvement == pytest.approx(0.3)
        assert curve.is_nonincreasing()

    def test_dominates(self):
        sizes = np.array([0, 5])
        low = GrowthCurve("a", sizes, np.array([0.1, 0.05]), exact=True)
        high = GrowthCurve("b", sizes, np.array([0.2, 0.1]), exact=True)
        assert low.dominates(high)
        assert not high.dominates(low)

    def test_dominates_grid_mismatch(self):
        a = GrowthCurve("a", np.array([0, 5]), np.array([0.1, 0.05]), exact=True)
        b = GrowthCurve("b", np.array([0, 6]), np.array([0.1, 0.05]), exact=True)
        with pytest.raises(ModelError):
            a.dominates(b)


class TestVersionGrowthCurve:
    def test_monotone_and_starts_at_untested(self, growth_population):
        population, profile = growth_population
        curve = version_growth_curve(population, profile, [0, 5, 10, 40])
        assert curve.exact
        assert curve.is_nonincreasing()
        assert curve.initial == pytest.approx(population.pfd(profile))

    def test_size_grid_validation(self, growth_population):
        population, profile = growth_population
        with pytest.raises(ModelError):
            version_growth_curve(population, profile, [])
        with pytest.raises(ModelError):
            version_growth_curve(population, profile, [5, 5])
        with pytest.raises(ModelError):
            version_growth_curve(population, profile, [-1, 5])


class TestSystemGrowthCurves:
    def test_same_suite_dominated_by_independent(self, growth_population):
        population, profile = growth_population
        curves = system_growth_curves(population, profile, [0, 5, 20, 80])
        assert curves["independent suites"].dominates(
            curves["same suite"], tolerance=1e-12
        )

    def test_both_monotone(self, growth_population):
        population, profile = growth_population
        curves = system_growth_curves(population, profile, [0, 5, 20, 80])
        for curve in curves.values():
            assert curve.is_nonincreasing()

    def test_equal_at_zero_effort(self, growth_population):
        population, profile = growth_population
        curves = system_growth_curves(population, profile, [0, 10])
        assert curves["same suite"].values[0] == pytest.approx(
            curves["independent suites"].values[0]
        )


class TestBackToBackGrowthCurves:
    def test_system_curve_monotone(self, growth_population):
        population, profile = growth_population
        curves = back_to_back_growth_curves(
            population,
            profile,
            [0, 5, 20],
            shared_fault_outputs(),
            n_replications=40,
            rng=1,
        )
        assert curves["system"].is_nonincreasing(tolerance=1e-12)
        assert curves["version"].is_nonincreasing(tolerance=1e-12)
        assert not curves["system"].exact

    def test_pessimistic_system_above_shared(self, growth_population):
        """Less detection -> higher post-test system pfd, pointwise (the
        replications share draws through the seed)."""
        population, profile = growth_population
        shared = back_to_back_growth_curves(
            population,
            profile,
            [0, 10, 30],
            shared_fault_outputs(),
            n_replications=40,
            rng=2,
        )
        pessimistic = back_to_back_growth_curves(
            population,
            profile,
            [0, 10, 30],
            pessimistic_outputs(),
            n_replications=40,
            rng=2,
        )
        assert np.all(
            pessimistic["system"].values >= shared["system"].values - 1e-12
        )

    def test_replication_validation(self, growth_population):
        population, profile = growth_population
        with pytest.raises(ModelError):
            back_to_back_growth_curves(
                population,
                profile,
                [0, 5],
                shared_fault_outputs(),
                n_replications=0,
            )
