"""Tests for repro.types helpers."""

import numpy as np

from repro.types import as_index_array


class TestAsIndexArray:
    def test_sorts_and_dedups(self):
        out = as_index_array([3, 1, 3, 2, 1])
        np.testing.assert_array_equal(out, [1, 2, 3])

    def test_empty(self):
        out = as_index_array([])
        assert out.size == 0
        assert out.dtype == np.int64

    def test_accepts_ndarray(self):
        out = as_index_array(np.array([[5, 4], [4, 6]]))
        np.testing.assert_array_equal(out, [4, 5, 6])

    def test_dtype_is_int64(self):
        assert as_index_array([1]).dtype == np.int64
