"""Instrument semantics: counters, gauges, histograms, bound children."""

import math

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    NULL_REGISTRY,
)


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_increments_accumulate_per_label_set(self, registry):
        counter = registry.counter("c_total", "help", ("kind",))
        counter.inc(kind="a")
        counter.inc(2.5, kind="a")
        counter.inc(kind="b")
        assert counter.value(kind="a") == 3.5
        assert counter.value(kind="b") == 1.0
        assert counter.value(kind="never") == 0.0

    def test_negative_increment_rejected(self, registry):
        counter = registry.counter("c_total")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_wrong_labels_rejected(self, registry):
        counter = registry.counter("c_total", "", ("kind",))
        with pytest.raises(ValueError):
            counter.inc()
        with pytest.raises(ValueError):
            counter.inc(kind="a", extra="b")
        with pytest.raises(ValueError):
            counter.inc(other="a")

    def test_invalid_names_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.counter("0bad")
        with pytest.raises(ValueError):
            registry.counter("ok_total", "", ("0bad",))
        with pytest.raises(ValueError):
            registry.counter("ok_total", "", ("le",))


class TestGauge:
    def test_set_inc_dec(self, registry):
        gauge = registry.gauge("g")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec(3)
        assert gauge.value() == 4.0


class TestHistogram:
    def test_observations_land_in_le_buckets(self, registry):
        histogram = registry.histogram("h_seconds", buckets=(0.1, 1.0))
        for value in (0.05, 0.1, 0.5, 2.0):
            histogram.observe(value)
        (key, state), = registry.snapshot()["h_seconds"]["samples"]
        # value == bound counts in that bucket (le semantics); the
        # overflow lands in the implicit +Inf slot
        assert state["buckets"] == [2, 1, 1]
        assert state["count"] == 4
        assert state["sum"] == pytest.approx(2.65)

    def test_explicit_inf_bound_is_folded(self, registry):
        histogram = registry.histogram(
            "h_seconds", buckets=(0.5, math.inf)
        )
        assert histogram.bounds == (0.5,)

    def test_unsorted_buckets_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.histogram("h", buckets=(1.0, 0.5))
        with pytest.raises(ValueError):
            registry.histogram("h", buckets=(0.5, 0.5))

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestBoundChildren:
    """`labels()` pre-resolution must be observationally identical."""

    def test_bound_counter_matches_kwargs_path(self, registry):
        counter = registry.counter("c_total", "", ("kind",))
        child = counter.labels(kind="a")
        child.inc()
        child.inc(2)
        counter.inc(kind="a")
        assert counter.value(kind="a") == 4.0

    def test_bound_counter_rejects_negative(self, registry):
        child = registry.counter("c_total").labels()
        with pytest.raises(ValueError):
            child.inc(-1)

    def test_bound_gauge(self, registry):
        gauge = registry.gauge("g", "", ("kind",))
        child = gauge.labels(kind="x")
        child.set(7)
        child.inc()
        child.dec(2)
        assert gauge.value(kind="x") == 6.0

    def test_bound_histogram_matches_kwargs_path(self, registry):
        histogram = registry.histogram(
            "h_seconds", "", ("route",), buckets=(0.1, 1.0)
        )
        child = histogram.labels(route="/run")
        child.observe(0.05)
        histogram.observe(0.5, route="/run")
        (key, state), = registry.snapshot()["h_seconds"]["samples"]
        assert key == ["/run"]
        assert state["buckets"] == [1, 1, 0]

    def test_binding_validates_labels(self, registry):
        counter = registry.counter("c_total", "", ("kind",))
        with pytest.raises(ValueError):
            counter.labels(wrong="a")


class TestRegistry:
    def test_reregistration_returns_same_instrument(self, registry):
        first = registry.counter("c_total", "help", ("k",))
        second = registry.counter("c_total", "help", ("k",))
        assert first is second

    def test_kind_conflict_rejected(self, registry):
        registry.counter("m", "", ())
        with pytest.raises(ValueError):
            registry.gauge("m", "", ())

    def test_label_conflict_rejected(self, registry):
        registry.counter("m", "", ("a",))
        with pytest.raises(ValueError):
            registry.counter("m", "", ("b",))

    def test_snapshot_is_json_safe_and_detached(self, registry):
        import json

        counter = registry.counter("c_total", "", ("k",))
        counter.inc(k="x")
        snapshot = registry.snapshot()
        json.dumps(snapshot)  # must not raise
        counter.inc(k="x")
        # the snapshot is a copy, not a live view
        assert snapshot["c_total"]["samples"] == [[["x"], 1.0]]


class TestNullRegistry:
    def test_null_instruments_swallow_everything(self):
        counter = NULL_REGISTRY.counter("c_total", "", ("k",))
        counter.inc(k="x")
        counter.labels(k="x").inc()
        histogram = NULL_REGISTRY.histogram("h")
        histogram.observe(1.0)
        histogram.labels().observe(1.0)
        gauge = NULL_REGISTRY.gauge("g")
        gauge.set(1)
        assert NULL_REGISTRY.snapshot() == {}
