"""Phase timers: accumulation, residual setup, ambient nesting."""

import time

from repro.obs import PhaseTimer, collect_timings, current_timer


class TestPhaseTimer:
    def test_phases_accumulate_across_reentry(self):
        timer = PhaseTimer()
        with timer.phase("sampling"):
            pass
        with timer.phase("sampling"):
            pass
        payload = timer.payload()
        assert payload["phases"]["sampling"] >= 0.0
        assert payload["total_seconds"] >= 0.0

    def test_add_phase_clamps_negative(self):
        timer = PhaseTimer()
        timer.add_phase("scoring", -5.0)
        assert timer.phases["scoring"] == 0.0

    def test_chunks_and_tasks_accumulate(self):
        timer = PhaseTimer()
        timer.add_chunks(2, tasks=8)
        timer.add_chunks(1, tasks=4)
        payload = timer.payload()
        assert payload["chunks"] == 3
        assert payload["tasks"] == 12

    def test_setup_residual_makes_phases_sum_to_total(self):
        timer = PhaseTimer()
        with timer.phase("sampling"):
            time.sleep(0.01)
        time.sleep(0.01)  # unattributed work -> lands in "setup"
        payload = timer.payload()
        assert payload["phases"]["setup"] > 0.0
        assert sum(payload["phases"].values()) == (
            __import__("pytest").approx(
                payload["total_seconds"], abs=2e-3
            )
        )

    def test_extra_fields_attach_without_clobbering(self):
        payload = PhaseTimer().payload(engine="batch", chunks="nope")
        assert payload["engine"] == "batch"
        assert payload["chunks"] == 0  # the real counter wins


class TestAmbientActivation:
    def test_inactive_by_default(self):
        assert current_timer() is None

    def test_collect_timings_installs_and_restores(self):
        with collect_timings() as timer:
            assert current_timer() is timer
        assert current_timer() is None

    def test_nested_activations_stack(self):
        with collect_timings() as outer:
            with collect_timings() as inner:
                assert current_timer() is inner
            assert current_timer() is outer
