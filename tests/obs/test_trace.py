"""Trace context, header codec, span nesting and capture modes."""

import threading

import pytest

from repro.obs import (
    TRACE_HEADER,
    TraceContext,
    capture_spans,
    current_trace,
    emit_span,
    emit_span_record,
    format_trace_header,
    new_trace_context,
    parse_trace_header,
    set_trace_context,
    span,
    tracing_active,
)


@pytest.fixture(autouse=True)
def _clean_context():
    previous = set_trace_context(None)
    yield
    set_trace_context(previous)


class TestHeaderCodec:
    def test_round_trip(self):
        context = new_trace_context()
        parsed = parse_trace_header(format_trace_header(context))
        assert parsed == context

    def test_header_name(self):
        assert TRACE_HEADER == "X-Repro-Trace"

    @pytest.mark.parametrize(
        "value",
        [None, "", "nodash", "UPPER-case", "xyz-", "-abc", "g" * 8 + "-ab"],
    )
    def test_invalid_headers_dropped_not_raised(self, value):
        assert parse_trace_header(value) is None

    def test_whitespace_tolerated(self):
        context = TraceContext("ab12", "cd34")
        assert parse_trace_header("  ab12-cd34\r\n") == context


class TestSpanNesting:
    def test_nested_spans_parent_correctly(self):
        with capture_spans() as records:
            with span("outer") as outer:
                with span("inner"):
                    pass
        by_name = {r["name"]: r for r in records}
        assert by_name["inner"]["parent_id"] == outer.context.span_id
        assert (
            by_name["inner"]["trace_id"] == by_name["outer"]["trace_id"]
        )
        # inner is emitted first (exits first)
        assert records[0]["name"] == "inner"

    def test_span_installs_and_restores_context(self):
        assert current_trace() is None
        with capture_spans():
            with span("outer") as handle:
                assert current_trace() == handle.context
        assert current_trace() is None

    def test_span_continues_incoming_trace(self):
        incoming = TraceContext("deadbeef" * 4, "cafe" * 4)
        set_trace_context(incoming)
        with capture_spans() as records:
            with span("work"):
                pass
        assert records[0]["trace_id"] == incoming.trace_id
        assert records[0]["parent_id"] == incoming.span_id

    def test_error_annotates_span(self):
        with capture_spans() as records:
            with pytest.raises(RuntimeError):
                with span("failing"):
                    raise RuntimeError("boom")
        assert records[0]["error"] == "RuntimeError"

    def test_duration_is_positive(self):
        with capture_spans() as records:
            with span("timed"):
                pass
        assert records[0]["duration_seconds"] >= 0.0

    def test_handle_fields_land_on_record(self):
        with capture_spans() as records:
            with span("work", static="x") as handle:
                handle.fields["status"] = 200
        assert records[0]["static"] == "x"
        assert records[0]["status"] == 200


class TestCaptureModes:
    def test_additive_capture_sees_other_threads(self):
        def worker():
            with span("thread.work"):
                pass

        with capture_spans() as records:
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert [r["name"] for r in records] == ["thread.work"]

    def test_exclusive_capture_diverts_from_sinks(self):
        with capture_spans() as outer:
            with capture_spans(exclusive=True) as inner:
                with span("hidden"):
                    pass
        assert [r["name"] for r in inner] == ["hidden"]
        assert outer == []  # never reached the additive sink

    def test_exclusive_capture_is_context_local(self):
        seen = []

        def other_thread():
            with capture_spans() as records:
                with span("visible"):
                    pass
            seen.extend(records)

        with capture_spans(exclusive=True) as inner:
            thread = threading.Thread(target=other_thread)
            thread.start()
            thread.join()
        assert inner == []  # the other thread's spans were not diverted
        assert [r["name"] for r in seen] == ["visible"]

    def test_reemitted_records_preserve_ids(self):
        with capture_spans(exclusive=True) as shipped:
            with span("worker.op"):
                pass
        with capture_spans() as parent_side:
            for record in shipped:
                emit_span_record(dict(record))
        assert parent_side[0]["span_id"] == shipped[0]["span_id"]
        assert parent_side[0]["trace_id"] == shipped[0]["trace_id"]


class TestActivityGuard:
    def test_inactive_without_sinks(self):
        assert tracing_active() is False

    def test_active_inside_capture(self):
        with capture_spans():
            assert tracing_active() is True
        with capture_spans(exclusive=True):
            assert tracing_active() is True

    def test_emit_span_noop_when_inactive(self):
        # must not raise and must not leak records anywhere
        emit_span("orphan", new_trace_context(), None, 0.0, 0.1)

    def test_spans_dropped_when_inactive(self):
        with span("unobserved"):
            pass  # nothing to assert beyond "does not raise"
