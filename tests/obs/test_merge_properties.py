"""Property tests (hypothesis): snapshot merge is a commutative monoid.

The worker→parent aggregation channel folds per-job registry snapshots
in whatever order results arrive; correctness rests on
:func:`repro.obs.metrics.merge_snapshots` being associative and
commutative with ``{}`` as identity.  Rather than trusting three unit
cases, generate random snapshots and check the laws directly.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import MetricsRegistry, merge_snapshots

_NAMES = ("alpha_total", "beta_total", "queue_depth")
_LABELS = ("", "a", "b")
_BOUNDS = (0.1, 1.0)


@st.composite
def snapshots(draw):
    """A random registry snapshot over a fixed instrument schema.

    A fixed schema (names, kinds, label sets, bucket layout) mirrors
    reality — every worker runs the same code, so instruments agree —
    and keeps merges well-defined.
    """
    registry = MetricsRegistry()
    counter = registry.counter("alpha_total", "", ("kind",))
    for _ in range(draw(st.integers(0, 4))):
        counter.inc(
            draw(st.floats(0, 100, allow_nan=False)),
            kind=draw(st.sampled_from(_LABELS)),
        )
    gauge = registry.gauge("queue_depth")
    if draw(st.booleans()):
        gauge.inc(draw(st.floats(-50, 50, allow_nan=False)))
    histogram = registry.histogram("lat_seconds", buckets=_BOUNDS)
    for _ in range(draw(st.integers(0, 4))):
        histogram.observe(draw(st.floats(0, 5, allow_nan=False)))
    return registry.snapshot()


def _totals(snapshot):
    """Collapse a snapshot to comparable numbers (order-insensitive)."""
    out = {}
    for name, entry in sorted(snapshot.items()):
        for key, value in sorted(entry["samples"]):
            if entry["type"] == "histogram":
                out[(name, tuple(key))] = (
                    tuple(value["buckets"]),
                    round(value["sum"], 9),
                    value["count"],
                )
            else:
                out[(name, tuple(key))] = round(value, 9)
    return out


@settings(max_examples=60, deadline=None)
@given(snapshots(), snapshots())
def test_merge_is_commutative(a, b):
    assert _totals(merge_snapshots(a, b)) == _totals(merge_snapshots(b, a))


@settings(max_examples=60, deadline=None)
@given(snapshots(), snapshots(), snapshots())
def test_merge_is_associative(a, b, c):
    left = merge_snapshots(merge_snapshots(a, b), c)
    right = merge_snapshots(a, merge_snapshots(b, c))
    assert _totals(left) == _totals(right)


@settings(max_examples=60, deadline=None)
@given(snapshots())
def test_empty_snapshot_is_identity(a):
    assert _totals(merge_snapshots(a, {})) == _totals(a)
    assert _totals(merge_snapshots({}, a)) == _totals(a)


@settings(max_examples=60, deadline=None)
@given(snapshots(), snapshots())
def test_merge_sums_counter_values(a, b):
    merged = _totals(merge_snapshots(a, b))
    ta, tb = _totals(a), _totals(b)
    for key in set(ta) | set(tb):
        if key[0] != "alpha_total":
            continue
        expected = round(
            (ta.get(key) or 0.0) + (tb.get(key) or 0.0), 9
        )
        assert abs(merged[key] - expected) < 1e-6
