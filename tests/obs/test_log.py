"""Structured logging: formats, level gating, destinations."""

import io
import json

import pytest

from repro.obs import configure_logging, get_logger, logging_config


@pytest.fixture(autouse=True)
def _restore_logging():
    previous = logging_config()
    yield
    configure_logging(**previous)


def _capture(level="info", format="json"):
    stream = io.StringIO()
    configure_logging(level=level, format=format, stream=stream)
    return stream


class TestJsonFormat:
    def test_one_json_object_per_line(self):
        stream = _capture()
        log = get_logger("repro.test")
        log.info("job.done", job_id="j1", seconds=1.5)
        log.info("job.done", job_id="j2", seconds=0.5)
        lines = stream.getvalue().strip().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["event"] == "job.done"
        assert first["logger"] == "repro.test"
        assert first["level"] == "info"
        assert first["job_id"] == "j1"
        assert isinstance(first["ts"], float)

    def test_non_json_safe_values_reprd(self):
        stream = _capture()
        get_logger("t").info("event", weird=object())
        record = json.loads(stream.getvalue())
        assert "object object" in record["weird"]


class TestHumanFormat:
    def test_renders_level_event_and_fields(self):
        stream = _capture(format="human")
        get_logger("t").warning("cache.full", size=10)
        line = stream.getvalue()
        assert "cache.full" in line
        assert "size=10" in line
        assert "WARNING" in line.upper() or "warning" in line


class TestLevelGating:
    def test_below_level_suppressed(self):
        stream = _capture(level="warning")
        log = get_logger("t")
        log.debug("quiet")
        log.info("quiet")
        log.warning("loud")
        assert stream.getvalue().count("\n") == 1

    def test_enabled_matches_emission(self):
        _capture(level="info")
        log = get_logger("t")
        assert log.enabled("info") is True
        assert log.enabled("debug") is False

    def test_invalid_level_rejected(self):
        with pytest.raises(ValueError):
            configure_logging(level="loudest")
        with pytest.raises(ValueError):
            configure_logging(format="xml")


class TestFileDestination:
    def test_events_append_to_file(self, tmp_path):
        target = tmp_path / "service.jsonl"
        configure_logging(level="info", format="json", file=str(target))
        get_logger("t").info("boot", port=80)
        configure_logging()  # closes the owned handle
        record = json.loads(target.read_text().strip())
        assert record["event"] == "boot"
        assert record["port"] == 80

    def test_config_reports_current_state(self):
        configure_logging(level="debug", format="json")
        assert logging_config() == {"level": "debug", "format": "json"}
