"""Prometheus text exposition 0.0.4 conformance: render and strict parse."""

import math

import pytest

from repro.obs.metrics import (
    MetricsRegistry,
    parse_prometheus_text,
    render_prometheus,
)


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestRender:
    def test_help_and_type_lines(self, registry):
        registry.counter("jobs_total", "Jobs seen.").inc()
        text = registry.render()
        assert "# HELP jobs_total Jobs seen.\n" in text
        assert "# TYPE jobs_total counter\n" in text
        assert text.endswith("\n")

    def test_label_value_escaping(self, registry):
        counter = registry.counter("c_total", "", ("path",))
        counter.inc(path='a\\b"c\nd')
        text = registry.render()
        assert 'path="a\\\\b\\"c\\nd"' in text

    def test_help_newline_escaping(self, registry):
        registry.counter("c_total", "line one\nline two").inc()
        assert "# HELP c_total line one\\nline two\n" in registry.render()

    def test_histogram_expands_cumulative_buckets(self, registry):
        histogram = registry.histogram("h_seconds", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            histogram.observe(value)
        text = registry.render()
        assert 'h_seconds_bucket{le="0.1"} 1' in text
        assert 'h_seconds_bucket{le="1"} 2' in text
        assert 'h_seconds_bucket{le="+Inf"} 3' in text
        assert "h_seconds_count 3" in text
        assert "h_seconds_sum 5.55" in text

    def test_families_sorted_by_name(self, registry):
        registry.counter("zzz_total").inc()
        registry.counter("aaa_total").inc()
        text = registry.render()
        assert text.index("aaa_total") < text.index("zzz_total")


class TestRoundTrip:
    def test_render_then_parse_preserves_samples(self, registry):
        counter = registry.counter("jobs_total", "Jobs.", ("event",))
        counter.inc(3, event="done")
        counter.inc(event='weird"value\n')
        histogram = registry.histogram("lat_seconds", buckets=(0.1,))
        histogram.observe(0.05)
        histogram.observe(0.5)
        registry.gauge("depth").set(4)

        families = parse_prometheus_text(registry.render())
        assert families["jobs_total"]["type"] == "counter"
        samples = {
            tuple(sorted(labels.items())): value
            for _, labels, value in families["jobs_total"]["samples"]
        }
        assert samples[(("event", "done"),)] == 3.0
        assert samples[(("event", 'weird"value\n'),)] == 1.0
        histogram_samples = {
            (name, labels.get("le")): value
            for name, labels, value in families["lat_seconds"]["samples"]
        }
        assert histogram_samples[("lat_seconds_bucket", "0.1")] == 1.0
        assert histogram_samples[("lat_seconds_bucket", "+Inf")] == 2.0
        assert histogram_samples[("lat_seconds_count", None)] == 2.0
        assert families["depth"]["samples"][0][2] == 4.0


class TestStrictParse:
    def test_sample_without_type_rejected(self):
        with pytest.raises(ValueError):
            parse_prometheus_text("lonely_total 1\n")

    def test_malformed_labels_rejected(self):
        text = '# TYPE c counter\nc{bad} 1\n'
        with pytest.raises(ValueError):
            parse_prometheus_text(text)

    def test_negative_counter_rejected(self):
        text = "# TYPE c counter\nc -1\n"
        with pytest.raises(ValueError):
            parse_prometheus_text(text)

    def test_non_monotonic_buckets_rejected(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="0.1"} 5\n'
            'h_bucket{le="+Inf"} 3\n'
            "h_sum 1\n"
            "h_count 3\n"
        )
        with pytest.raises(ValueError):
            parse_prometheus_text(text)

    def test_missing_inf_bucket_rejected(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="0.1"} 1\n'
            "h_sum 1\n"
            "h_count 1\n"
        )
        with pytest.raises(ValueError):
            parse_prometheus_text(text)

    def test_count_inf_disagreement_rejected(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="0.1"} 1\n'
            'h_bucket{le="+Inf"} 2\n'
            "h_sum 1\n"
            "h_count 5\n"
        )
        with pytest.raises(ValueError):
            parse_prometheus_text(text)

    def test_special_values_parse(self):
        text = "# TYPE g gauge\ng{k=\"inf\"} +Inf\ng{k=\"nan\"} NaN\n"
        families = parse_prometheus_text(text)
        values = {
            labels["k"]: value
            for _, labels, value in families["g"]["samples"]
        }
        assert math.isinf(values["inf"])
        assert math.isnan(values["nan"])
