"""End-to-end cross-validation: three engines, one answer.

For one moderately sized model, the derived formulas (core), the
inclusion–exclusion closed forms (analytic.bernoulli_exact) and the
full-pipeline Monte Carlo (mc) must agree on every quantity the paper
defines.  This is the test that catches any drift between layers.
"""

import numpy as np
import pytest

from repro.analytic import BernoulliExactEngine
from repro.core import (
    IndependentSuites,
    SameSuite,
    TestedPopulationView,
    joint_failure_probability,
    marginal_system_pfd,
)
from repro.demand import DemandSpace, zipf_profile
from repro.faults import uniform_random_universe
from repro.mc import simulate_joint_on_demand, simulate_marginal_system_pfd
from repro.populations import BernoulliFaultPopulation
from repro.testing import OperationalSuiteGenerator

SUITE_SIZE = 12


@pytest.fixture(scope="module")
def model():
    space = DemandSpace(40)
    profile = zipf_profile(space, 0.7)
    universe = uniform_random_universe(space, n_faults=8, region_size=4, rng=21)
    population = BernoulliFaultPopulation.uniform(universe, 0.35)
    generator = OperationalSuiteGenerator(profile, SUITE_SIZE)
    engine = BernoulliExactEngine(universe, profile)
    return space, profile, universe, population, generator, engine


class TestZetaThreeWays:
    def test_closed_form_vs_suite_sampling(self, model):
        _space, _profile, _universe, population, generator, engine = model
        closed = engine.zeta(population, SUITE_SIZE)
        sampled = TestedPopulationView(population, generator).zeta(
            n_suites=6000, rng=1
        )
        np.testing.assert_allclose(sampled, closed, atol=0.02)


class TestJointThreeWays:
    def test_same_suite_demandwise(self, model):
        _space, _profile, _universe, population, generator, engine = model
        closed = engine.xi_second_moment(population, SUITE_SIZE)
        derived = joint_failure_probability(
            SameSuite(generator), population, n_suites=6000, rng=2
        )
        np.testing.assert_allclose(derived.joint, closed, atol=0.02)
        # full pipeline on the most difficult demand
        demand = int(np.argmax(closed))
        estimator = simulate_joint_on_demand(
            SameSuite(generator),
            population,
            demand,
            n_replications=5000,
            rng=3,
        )
        assert estimator.contains(float(closed[demand]), confidence=0.999)

    def test_independent_demandwise(self, model):
        _space, _profile, _universe, population, generator, engine = model
        zeta = engine.zeta(population, SUITE_SIZE)
        closed = zeta**2
        demand = int(np.argmax(closed))
        estimator = simulate_joint_on_demand(
            IndependentSuites(generator),
            population,
            demand,
            n_replications=5000,
            rng=4,
        )
        assert estimator.contains(float(closed[demand]), confidence=0.999)


class TestMarginalThreeWays:
    @pytest.mark.parametrize("regime_class", [SameSuite, IndependentSuites])
    def test_marginal_agreement(self, model, regime_class):
        _space, profile, _universe, population, generator, engine = model
        regime = regime_class(generator)
        if regime.shares_suite:
            closed = engine.system_pfd_same_suite(population, SUITE_SIZE)
        else:
            closed = engine.system_pfd_independent_suites(
                population, SUITE_SIZE
            )
        derived = marginal_system_pfd(
            regime, population, profile, n_suites=6000, rng=5
        )
        assert derived.system_pfd == pytest.approx(closed, abs=0.01)
        estimator = simulate_marginal_system_pfd(
            regime, population, profile, n_replications=2500, rng=6
        )
        assert estimator.contains(closed, confidence=0.999)

    def test_version_pfd_agreement(self, model):
        from repro.mc import simulate_version_pfd

        _space, profile, _universe, population, generator, engine = model
        closed = engine.version_pfd(population, SUITE_SIZE)
        estimator = simulate_version_pfd(
            population, generator, profile, n_replications=2500, rng=7
        )
        assert estimator.contains(closed, confidence=0.999)


class TestPaperOrderings:
    def test_ordering_chain(self, model):
        """untested EL >= same-suite >= independent-suites >= 0, and all
        below the untested single-version pfd squared... measured on the
        one shared model."""
        _space, profile, _universe, population, generator, engine = model
        untested = profile.expectation(population.difficulty() ** 2)
        same = engine.system_pfd_same_suite(population, SUITE_SIZE)
        independent = engine.system_pfd_independent_suites(
            population, SUITE_SIZE
        )
        assert untested >= same >= independent >= 0.0
