"""Tests for the back-to-back failure-output models."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.versions import (
    FailureOutputModel,
    Version,
    optimistic_outputs,
    pessimistic_outputs,
    shared_fault_outputs,
)


@pytest.fixture
def versions(universe):
    """(both-fail-via-shared, both-fail-via-different, one-fails, correct)."""
    via_f1 = Version(universe, np.array([1]))          # fails on {2,3,4}
    via_f2 = Version(universe, np.array([2]))          # fails on {4,5}
    correct = Version.correct(universe)
    return via_f1, via_f2, correct


class TestModeValidation:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ModelError):
            FailureOutputModel("sometimes")

    def test_factories(self):
        assert optimistic_outputs().mode == "optimistic"
        assert pessimistic_outputs().mode == "pessimistic"
        assert shared_fault_outputs().mode == "shared-fault"


class TestIdenticalFailure:
    def test_no_identical_failure_when_one_succeeds(self, versions):
        via_f1, _via_f2, correct = versions
        for model in (optimistic_outputs(), pessimistic_outputs(), shared_fault_outputs()):
            assert not model.identical_failure(via_f1, correct, 2)

    def test_optimistic_never_identical(self, universe):
        version = Version(universe, np.array([1]))
        assert not optimistic_outputs().identical_failure(version, version, 2)

    def test_pessimistic_always_identical_on_coincident(self, versions):
        via_f1, via_f2, _ = versions
        # both fail on demand 4 (via different faults)
        assert pessimistic_outputs().identical_failure(via_f1, via_f2, 4)

    def test_shared_fault_identical_iff_same_causes(self, universe):
        model = shared_fault_outputs()
        same_a = Version(universe, np.array([1]))
        same_b = Version(universe, np.array([1]))
        diff = Version(universe, np.array([2]))
        assert model.identical_failure(same_a, same_b, 3)
        assert not model.identical_failure(same_a, diff, 4)


class TestMismatch:
    def test_single_failure_always_mismatch(self, versions):
        via_f1, _via_f2, correct = versions
        for model in (optimistic_outputs(), pessimistic_outputs(), shared_fault_outputs()):
            assert model.mismatch(via_f1, correct, 2)

    def test_both_correct_never_mismatch(self, versions):
        _via_f1, _via_f2, correct = versions
        for model in (optimistic_outputs(), pessimistic_outputs(), shared_fault_outputs()):
            assert not model.mismatch(correct, correct, 0)

    def test_coincident_optimistic_mismatch(self, versions):
        via_f1, via_f2, _ = versions
        assert optimistic_outputs().mismatch(via_f1, via_f2, 4)

    def test_coincident_pessimistic_silent(self, versions):
        via_f1, via_f2, _ = versions
        assert not pessimistic_outputs().mismatch(via_f1, via_f2, 4)

    def test_coincident_shared_fault_depends_on_cause(self, universe):
        model = shared_fault_outputs()
        same = Version(universe, np.array([1]))
        different = Version(universe, np.array([2]))
        assert not model.mismatch(same, same, 2)   # same cause: identical
        assert model.mismatch(same, different, 4)  # different causes

    def test_detection_ordering_over_models(self, universe, rng):
        """Optimistic detects a superset of shared-fault, which detects a
        superset of pessimistic — on every demand and version pair."""
        optimistic = optimistic_outputs()
        shared = shared_fault_outputs()
        pessimistic = pessimistic_outputs()
        for _ in range(30):
            ids_a = np.flatnonzero(rng.random(3) < 0.5)
            ids_b = np.flatnonzero(rng.random(3) < 0.5)
            a = Version(universe, ids_a)
            b = Version(universe, ids_b)
            for demand in range(10):
                m_opt = optimistic.mismatch(a, b, demand)
                m_shared = shared.mismatch(a, b, demand)
                m_pess = pessimistic.mismatch(a, b, demand)
                assert (not m_shared) or m_opt
                assert (not m_pess) or m_shared
