"""Tests for Version."""

import numpy as np
import pytest

from repro.errors import IncompatibleSpaceError, ModelError
from repro.faults import FaultUniverse
from repro.versions import Version


class TestConstruction:
    def test_correct_version(self, universe):
        version = Version.correct(universe)
        assert version.is_correct
        assert version.n_faults == 0
        assert not version.failure_mask.any()

    def test_with_all_faults(self, universe):
        version = Version.with_all_faults(universe)
        assert version.n_faults == 3
        np.testing.assert_array_equal(
            np.flatnonzero(version.failure_mask), [0, 1, 2, 3, 4, 5]
        )

    def test_fault_ids_canonicalised(self, universe):
        version = Version(universe, np.array([2, 0, 2]))
        np.testing.assert_array_equal(version.fault_ids, [0, 2])

    def test_invalid_fault_id_rejected(self, universe):
        with pytest.raises(ModelError):
            Version(universe, np.array([7]))


class TestEquality:
    def test_same_faults_equal(self, universe):
        a = Version(universe, np.array([0, 1]))
        b = Version(universe, np.array([1, 0]))
        assert a == b
        assert hash(a) == hash(b)

    def test_different_faults_not_equal(self, universe):
        assert Version(universe, np.array([0])) != Version(universe, np.array([1]))

    def test_not_equal_to_other_types(self, universe):
        assert Version.correct(universe) != "correct"


class TestScores:
    def test_score_one_on_failure(self, universe):
        version = Version(universe, np.array([0]))
        assert version.score(0) == 1
        assert version.score(1) == 1
        assert version.score(2) == 0

    def test_scores_vectorised(self, universe):
        version = Version(universe, np.array([1]))
        np.testing.assert_array_equal(
            version.scores([0, 2, 3, 9]), [0, 1, 1, 0]
        )

    def test_fails_on(self, universe):
        version = Version(universe, np.array([2]))
        assert version.fails_on(5)
        assert not version.fails_on(0)

    def test_failure_set(self, universe):
        version = Version(universe, np.array([0, 2]))
        np.testing.assert_array_equal(version.failure_set, [0, 1, 4, 5])


class TestCauses:
    def test_faults_causing_failure(self, universe):
        version = Version.with_all_faults(universe)
        np.testing.assert_array_equal(version.faults_causing_failure(4), [1, 2])

    def test_faults_causing_failure_subset_of_version(self, universe):
        version = Version(universe, np.array([2]))
        np.testing.assert_array_equal(version.faults_causing_failure(4), [2])

    def test_no_causes_when_correct(self, universe):
        assert Version.correct(universe).faults_causing_failure(4).size == 0


class TestPfd:
    def test_pfd_uniform(self, universe, profile):
        version = Version(universe, np.array([0]))  # fails on {0,1}
        assert version.pfd(profile) == pytest.approx(0.2)

    def test_pfd_correct_is_zero(self, universe, profile):
        assert Version.correct(universe).pfd(profile) == 0.0

    def test_pfd_counts_overlap_once(self, universe, profile):
        version = Version(universe, np.array([1, 2]))  # {2,3,4} | {4,5}
        assert version.pfd(profile) == pytest.approx(0.4)


class TestFaultSurgery:
    def test_without_faults(self, universe):
        version = Version.with_all_faults(universe)
        reduced = version.without_faults([1])
        np.testing.assert_array_equal(reduced.fault_ids, [0, 2])
        # original unchanged (immutability)
        assert version.n_faults == 3

    def test_without_absent_fault_is_noop(self, universe):
        version = Version(universe, np.array([0]))
        same = version.without_faults([1, 2])
        assert same == version

    def test_with_faults(self, universe):
        version = Version(universe, np.array([0]))
        grown = version.with_faults([2])
        np.testing.assert_array_equal(grown.fault_ids, [0, 2])

    def test_shares_fault_with(self, universe):
        a = Version(universe, np.array([0, 1]))
        b = Version(universe, np.array([1]))
        c = Version(universe, np.array([2]))
        assert a.shares_fault_with(b)
        assert not a.shares_fault_with(c)

    def test_shares_fault_different_universe_rejected(self, universe, space):
        other_universe = FaultUniverse.from_regions(space, [[0]])
        a = Version(universe, np.array([0]))
        b = Version(other_universe, np.array([0]))
        with pytest.raises(IncompatibleSpaceError):
            a.shares_fault_with(b)
