"""Tests for precision-target specs and their parsing front ends."""

import math

import pytest

from repro.adaptive import PrecisionTarget
from repro.errors import ModelError


class TestValidation:
    def test_needs_some_target(self):
        with pytest.raises(ModelError):
            PrecisionTarget()

    @pytest.mark.parametrize("field", ["rel_hw", "abs_hw"])
    @pytest.mark.parametrize("bad", [0.0, -0.1, math.inf, math.nan])
    def test_rejects_nonpositive_half_widths(self, field, bad):
        with pytest.raises(ModelError):
            PrecisionTarget(**{field: bad})

    def test_rejects_bad_confidence(self):
        with pytest.raises(ModelError):
            PrecisionTarget(rel_hw=0.1, confidence=1.0)

    def test_rejects_budget_below_initial(self):
        with pytest.raises(ModelError):
            PrecisionTarget(rel_hw=0.1, budget=10, initial=100)

    def test_rejects_unknown_vr(self):
        with pytest.raises(ModelError):
            PrecisionTarget(rel_hw=0.1, vr="magic")

    def test_rejects_growth_at_or_below_one(self):
        with pytest.raises(ModelError):
            PrecisionTarget(rel_hw=0.1, growth=1.0)


class TestStoppingPredicate:
    def test_absolute_target(self):
        target = PrecisionTarget(abs_hw=0.01)
        assert target.met(5.0, 0.01)
        assert not target.met(5.0, 0.0101)

    def test_relative_target_scales_with_mean(self):
        target = PrecisionTarget(rel_hw=0.05)
        assert target.met(2.0, 0.1)
        assert not target.met(1.0, 0.1)

    def test_either_criterion_suffices(self):
        target = PrecisionTarget(rel_hw=0.01, abs_hw=0.5)
        # relative says no (0.4 > 0.01*1), absolute says yes
        assert target.met(1.0, 0.4)

    def test_relative_target_with_pinned_scale(self):
        target = PrecisionTarget(rel_hw=0.05)
        # mean near zero, but the metric's natural scale is 0.1
        assert target.met(1e-9, 0.004, scale=0.1)
        assert not target.met(1e-9, 0.006, scale=0.1)

    def test_zero_mean_relative_needs_exactness(self):
        target = PrecisionTarget(rel_hw=0.05)
        assert target.met(0.0, 0.0)
        assert not target.met(0.0, 1e-12)

    def test_nan_half_width_is_never_met(self):
        target = PrecisionTarget(abs_hw=10.0)
        assert not target.met(0.0, math.nan)


class TestParsing:
    def test_from_mapping_roundtrip(self):
        target = PrecisionTarget.from_mapping(
            {"rel_hw": 0.05, "budget": 5000, "vr": "control"}
        )
        assert target.rel_hw == 0.05
        assert target.budget == 5000
        assert target.vr == "control"
        again = PrecisionTarget.from_mapping(target.to_params())
        assert again == target

    def test_from_mapping_rejects_unknown_keys(self):
        with pytest.raises(ModelError, match="unknown precision key"):
            PrecisionTarget.from_mapping({"rel_hw": 0.05, "rel_hww": 0.1})

    def test_coerce(self):
        target = PrecisionTarget(rel_hw=0.1)
        assert PrecisionTarget.coerce(None) is None
        assert PrecisionTarget.coerce(target) is target
        assert PrecisionTarget.coerce({"rel_hw": 0.1}) == target
        with pytest.raises(ModelError):
            PrecisionTarget.coerce(0.1)

    def test_with_defaults_fills_budget_only_when_unset(self):
        target = PrecisionTarget(rel_hw=0.1)
        assert target.with_defaults(budget=1234).budget == 1234
        pinned = PrecisionTarget(rel_hw=0.1, budget=99, initial=10)
        assert pinned.with_defaults(budget=1234).budget == 99

    def test_with_defaults_small_budget_clamps_initial_down(self):
        # the declared budget is a ceiling: it must never be raised to
        # accommodate the default first-round size
        target = PrecisionTarget(rel_hw=0.1, initial=256)
        filled = target.with_defaults(budget=10)
        assert filled.budget == 10
        assert filled.initial == 10
