"""Merge laws of the adaptive accumulators.

The controller's correctness rests on one property: chunk results combine
into the *same* estimate no matter how chunks were scheduled across rounds
and worker processes.  The accumulators promise this bit-for-bit (chunks
are keyed, reductions fold in sorted-key order), so the property tests
here assert exact equality, not approximate.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adaptive import (
    MeanAccumulator,
    ProportionAccumulator,
    StratifiedAccumulator,
    moments_of,
)
from repro.errors import ModelError


def chunk_values(min_chunks=1, max_chunks=6):
    """Strategy: a list of float-array chunks (possibly degenerate)."""
    return st.lists(
        st.lists(
            st.floats(
                min_value=0.0, max_value=1.0, allow_nan=False, width=32
            ),
            min_size=1,
            max_size=8,
        ),
        min_size=min_chunks,
        max_size=max_chunks,
    )


def _mean_acc(chunks, order):
    accumulator = MeanAccumulator()
    for index in order:
        accumulator.add_chunk(index, np.asarray(chunks[index]))
    return accumulator


class TestMeanAccumulatorMergeLaws:
    @given(chunks=chunk_values(), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_insertion_order_invariant_bitwise(self, chunks, data):
        order = data.draw(st.permutations(range(len(chunks))))
        baseline = _mean_acc(chunks, range(len(chunks)))
        shuffled = _mean_acc(chunks, order)
        a = baseline.estimate(confidence=0.95)
        b = shuffled.estimate(confidence=0.95)
        assert a == b  # exact, not approximate

    @given(chunks=chunk_values(min_chunks=2), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_merge_associative_and_partition_invariant(self, chunks, data):
        split = data.draw(st.integers(0, len(chunks)))
        left = _mean_acc(chunks, range(split))
        right = _mean_acc(chunks, range(split, len(chunks)))
        left.merge(right)
        assert left.estimate(0.99) == _mean_acc(
            chunks, range(len(chunks))
        ).estimate(0.99)

    @given(chunks=chunk_values())
    @settings(max_examples=30, deadline=None)
    def test_reduction_matches_single_sample_welford(self, chunks):
        pooled = np.concatenate([np.asarray(c) for c in chunks])
        accumulator = _mean_acc(chunks, range(len(chunks)))
        reduced = accumulator.reduced()
        assert reduced.count == pooled.size
        assert reduced.mean_y == pytest.approx(pooled.mean(), rel=1e-12, abs=1e-12)
        assert reduced.m2_y == pytest.approx(
            float(np.square(pooled - pooled.mean()).sum()), rel=1e-9, abs=1e-9
        )

    def test_duplicate_chunk_index_rejected(self):
        accumulator = MeanAccumulator()
        accumulator.add_chunk(0, np.array([1.0]))
        with pytest.raises(ModelError):
            accumulator.add_chunk(0, np.array([2.0]))
        other = MeanAccumulator()
        other.add_chunk(0, np.array([3.0]))
        with pytest.raises(ModelError):
            accumulator.merge(other)


class TestProportionAccumulator:
    @given(
        chunks=st.lists(
            st.tuples(st.integers(0, 50), st.integers(0, 50)).map(
                lambda t: (min(t), max(t))
            ),
            min_size=1,
            max_size=8,
        ),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_order_invariant(self, chunks, data):
        order = data.draw(st.permutations(range(len(chunks))))

        def build(indices):
            accumulator = ProportionAccumulator()
            for index in indices:
                successes, count = chunks[index]
                accumulator.add_chunk(index, successes, count)
            return accumulator

        a, b = build(range(len(chunks))), build(order)
        assert (a.successes, a.count) == (b.successes, b.count)
        if a.count:
            assert a.estimate(0.99) == b.estimate(0.99)


class TestDegenerateSamples:
    """The zero-variance / n = 1 regression cases of the issue."""

    def test_all_zero_stratum_zero_half_width_not_nan(self):
        accumulator = MeanAccumulator()
        accumulator.add_chunk(0, np.zeros(1))
        estimate = accumulator.estimate(confidence=0.99)
        assert estimate.half_width == 0.0
        assert estimate.std_error == 0.0
        assert not math.isnan(estimate.mean)

    def test_merged_degenerate_chunks_stay_degenerate(self):
        accumulator = MeanAccumulator()
        for index in range(5):
            accumulator.add_chunk(index, np.zeros(3))
        estimate = accumulator.estimate(confidence=0.99)
        assert estimate.half_width == 0.0
        assert estimate.mean == 0.0

    def test_constant_nonzero_sample_zero_half_width(self):
        accumulator = MeanAccumulator()
        accumulator.add_chunk(0, np.full(4, 0.25))
        estimate = accumulator.estimate(confidence=0.99)
        assert estimate.mean == pytest.approx(0.25)
        assert estimate.half_width == 0.0

    def test_empty_accumulator_infinite_half_width(self):
        estimate = MeanAccumulator().estimate(confidence=0.99)
        assert math.isinf(estimate.half_width)
        assert estimate.count == 0

    def test_degenerate_control_falls_back_to_plain(self):
        accumulator = MeanAccumulator()
        accumulator.add_chunk(
            0, moments_of(np.array([0.1, 0.2, 0.3]), np.zeros(3))
        )
        plain = accumulator.estimate(0.99)
        with_anchor = accumulator.estimate(0.99, anchor=0.0)
        assert with_anchor.mean == plain.mean
        assert with_anchor.half_width == plain.half_width

    def test_proportion_all_zero_keeps_positive_wilson_width(self):
        accumulator = ProportionAccumulator()
        accumulator.add_chunk(0, 0, 100)
        estimate = accumulator.estimate(0.99)
        assert estimate.mean == 0.0
        assert 0.0 < estimate.half_width < 0.1


class TestControlVariate:
    def test_perfectly_correlated_control_collapses_to_anchor(self):
        rng = np.random.default_rng(0)
        values = rng.random(500)
        accumulator = MeanAccumulator()
        accumulator.add_chunk(0, moments_of(values, values))
        estimate = accumulator.estimate(0.99, anchor=0.5)
        assert estimate.mean == pytest.approx(0.5, abs=1e-12)
        assert estimate.half_width == pytest.approx(0.0, abs=1e-9)

    def test_rounding_noise_control_does_not_explode_beta(self):
        # a control that is *mathematically* constant accumulates a few
        # ulps of m2_c through chunk merges; β = cross/m2_c on that noise
        # once produced estimates off by 12 orders of magnitude
        # (regression: e01's disjoint shape under stratified+control)
        rng = np.random.default_rng(5)
        accumulator = MeanAccumulator()
        for index in range(40):
            values = rng.random(64)
            controls = np.full(64, 0.125) + rng.choice(
                [0.0, 1e-17], size=64
            )
            accumulator.add_chunk(index, moments_of(values, controls))
        estimate = accumulator.estimate(0.99, anchor=0.125)
        plain = accumulator.estimate(0.99)
        assert estimate.mean == plain.mean
        assert estimate.half_width == plain.half_width

    def test_stratified_constant_control_per_stratum_is_safe(self):
        # disjoint equal-mass regions make the control *exactly* constant
        # within each fault-count stratum; β must ignore such strata
        from repro.adaptive import StratifiedAccumulator

        rng = np.random.default_rng(6)
        stratified = StratifiedAccumulator()
        for index in range(10):
            payload = {}
            for stratum in (2, 3, 4):
                values = rng.random(32) * stratum
                controls = np.full(32, stratum / 8.0)
                controls[::7] += 2e-17  # merge-noise scale
                payload[stratum] = moments_of(values, controls)
            stratified.add_chunk(index, payload)
        weights = {2: 0.3, 3: 0.4, 4: 0.3}
        anchored = stratified.estimate(weights, 0.99, anchor=3.0 / 8.0)
        plain = stratified.estimate(weights, 0.99)
        assert anchored.mean == pytest.approx(plain.mean, rel=1e-9)
        assert 0.0 < anchored.half_width < 1.0

    def test_control_reduces_variance_on_correlated_data(self):
        rng = np.random.default_rng(1)
        controls = rng.random(2000)
        values = controls + 0.1 * rng.random(2000)
        accumulator = MeanAccumulator()
        accumulator.add_chunk(0, moments_of(values, controls))
        plain = accumulator.estimate(0.99)
        adjusted = accumulator.estimate(0.99, anchor=0.5)
        assert adjusted.half_width < plain.half_width / 3


class TestStratifiedAccumulator:
    def test_single_stratum_matches_plain(self):
        rng = np.random.default_rng(2)
        values = rng.random(300)
        stratified = StratifiedAccumulator()
        stratified.add_chunk(0, {0: moments_of(values)})
        plain = MeanAccumulator()
        plain.add_chunk(0, values)
        assert stratified.estimate({0: 1.0}, 0.99) == plain.estimate(0.99)

    def test_post_stratification_removes_between_strata_variance(self):
        rng = np.random.default_rng(3)
        # two strata with very different means, equal weights
        low = 0.1 + 0.01 * rng.random(400)
        high = 0.9 + 0.01 * rng.random(400)
        stratified = StratifiedAccumulator()
        stratified.add_chunk(0, {0: moments_of(low), 1: moments_of(high)})
        plain = MeanAccumulator()
        plain.add_chunk(0, np.concatenate([low, high]))
        weights = {0: 0.5, 1: 0.5}
        strat_estimate = stratified.estimate(weights, 0.99)
        plain_estimate = plain.estimate(0.99)
        assert strat_estimate.mean == pytest.approx(plain_estimate.mean, abs=1e-3)
        assert strat_estimate.half_width < plain_estimate.half_width / 5

    def test_merge_order_invariant(self):
        rng = np.random.default_rng(4)
        payloads = [
            {int(k): moments_of(rng.random(5)) for k in range(3)}
            for _ in range(4)
        ]
        forward = StratifiedAccumulator()
        for index, payload in enumerate(payloads):
            forward.add_chunk(index, payload)
        backward = StratifiedAccumulator()
        for index in reversed(range(len(payloads))):
            backward.add_chunk(index, payloads[index])
        weights = {0: 0.2, 1: 0.3, 2: 0.5}
        assert forward.estimate(weights, 0.99) == backward.estimate(weights, 0.99)

    def test_unobserved_stratum_weight_collapses_to_neighbour(self):
        stratified = StratifiedAccumulator()
        values = np.array([0.5, 0.6, 0.7])
        stratified.add_chunk(0, {1: moments_of(values)})
        # stratum 2 has weight but no observations: folded into stratum 1
        estimate = stratified.estimate({1: 0.6, 2: 0.4}, 0.99)
        assert estimate.mean == pytest.approx(values.mean())
        assert math.isfinite(estimate.half_width)

    def test_degenerate_stratum_contributes_zero_variance(self):
        stratified = StratifiedAccumulator()
        stratified.add_chunk(
            0,
            {
                0: moments_of(np.zeros(50)),  # zero-fault stratum: never fails
                1: moments_of(np.array([0.2, 0.3, 0.25, 0.22])),
            },
        )
        estimate = stratified.estimate({0: 0.9, 1: 0.1}, 0.99)
        assert not math.isnan(estimate.half_width)
        only_noisy = StratifiedAccumulator()
        only_noisy.add_chunk(
            0, {1: moments_of(np.array([0.2, 0.3, 0.25, 0.22]))}
        )
        noisy_alone = only_noisy.estimate({1: 1.0}, 0.99)
        # the noisy stratum's contribution is scaled by its 0.1 weight
        assert estimate.half_width == pytest.approx(
            0.1 * noisy_alone.half_width
        )
