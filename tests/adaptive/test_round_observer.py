"""Tests for the controller's round-progress observation hooks."""

from repro.adaptive import PrecisionTarget, run_adaptive, set_round_observer
from repro.adaptive.controller import MetricSpec, round_observer


def _proportion_kernel(task):
    """A deterministic half-successes chunk (module level: picklable)."""
    index, count, _seed = task
    return index, count, (count // 2, count)


def _target(**overrides):
    mapping = {"abs_hw": 0.02, "budget": 16384, "initial": 256}
    mapping.update(overrides)
    return PrecisionTarget.from_mapping(mapping)


def _spec(name="coin"):
    return MetricSpec(name=name, kernel=_proportion_kernel, kind="proportion")


class TestOnRound:
    def test_on_round_sees_every_round_with_monotone_state(self):
        rounds = []
        report = run_adaptive(
            [_spec()], _target(), rng=0, on_round=rounds.append
        )
        assert len(rounds) == report.rounds >= 1
        round_numbers = [payload["round"] for payload in rounds]
        assert round_numbers == list(range(1, len(rounds) + 1))
        replications = [
            payload["metrics"]["coin"]["replications"] for payload in rounds
        ]
        assert replications == sorted(replications)
        final = rounds[-1]["metrics"]["coin"]
        assert final["replications"] == report["coin"].replications
        assert final["converged"] == report["coin"].converged
        assert final["half_width"] <= final["threshold"]

    def test_payload_shape(self):
        rounds = []
        run_adaptive([_spec()], _target(), rng=0, on_round=rounds.append)
        payload = rounds[0]
        assert set(payload) == {"round", "metrics"}
        metric = payload["metrics"]["coin"]
        assert set(metric) == {
            "replications",
            "mean",
            "half_width",
            "threshold",
            "converged",
        }


class TestAmbientObserver:
    def test_observer_receives_rounds_and_restores(self):
        seen = []
        previous = set_round_observer(seen.append)
        try:
            assert previous is None
            run_adaptive([_spec()], _target(), rng=0)
        finally:
            restored = set_round_observer(previous)
        assert restored is not None
        assert round_observer() is None
        assert seen and seen[0]["round"] == 1

    def test_observer_does_not_change_results(self):
        baseline = run_adaptive([_spec()], _target(), rng=0)
        previous = set_round_observer(lambda payload: None)
        try:
            observed = run_adaptive([_spec()], _target(), rng=0)
        finally:
            set_round_observer(previous)
        assert observed["coin"].replications == baseline["coin"].replications
        assert (
            observed["coin"].estimate.mean == baseline["coin"].estimate.mean
        )

    def test_both_hooks_fire_together(self):
        ambient, explicit = [], []
        previous = set_round_observer(ambient.append)
        try:
            run_adaptive(
                [_spec()], _target(), rng=0, on_round=explicit.append
            )
        finally:
            set_round_observer(previous)
        assert ambient == explicit
