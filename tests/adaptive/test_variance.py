"""Tests for the variance-reduction layer: exact pmfs, vr resolution,
and the effectiveness gate (VR must not cost replications on the
estimands it claims to help)."""

import math

import numpy as np
import pytest
from scipy import stats

from repro.adaptive import (
    PrecisionTarget,
    adaptive_version_pfd,
    fault_count_pmf,
    pair_fault_count_pmf,
    resolve_vr,
)
from repro.demand import DemandSpace, uniform_profile
from repro.errors import ModelError
from repro.experiments.models import standard_scenario, tiny_enumerable_scenario
from repro.faults import uniform_random_universe
from repro.populations import BernoulliFaultPopulation
from repro.testing import ImperfectFixing, ImperfectOracle


class TestFaultCountPmf:
    def test_uniform_bernoulli_matches_binomial(self):
        space = DemandSpace(20)
        universe = uniform_random_universe(
            space, n_faults=9, region_size=3, rng=0
        )
        population = BernoulliFaultPopulation.uniform(universe, 0.3)
        pmf = fault_count_pmf(population)
        assert pmf is not None
        assert sum(pmf.values()) == pytest.approx(1.0, abs=1e-12)
        for k, mass in pmf.items():
            assert mass == pytest.approx(
                float(stats.binom.pmf(k, 9, 0.3)), abs=1e-12
            )

    def test_heterogeneous_probabilities_poisson_binomial(self):
        space = DemandSpace(10)
        universe = uniform_random_universe(
            space, n_faults=3, region_size=2, rng=1
        )
        probs = [0.1, 0.5, 0.9]
        population = BernoulliFaultPopulation(universe, probs)
        pmf = fault_count_pmf(population)
        # brute force over the 2^3 presence patterns
        expected = {k: 0.0 for k in range(4)}
        for bits in range(8):
            mass = 1.0
            k = 0
            for fault, p in enumerate(probs):
                if bits >> fault & 1:
                    mass *= p
                    k += 1
                else:
                    mass *= 1.0 - p
            expected[k] += mass
        for k, mass in expected.items():
            assert pmf[k] == pytest.approx(mass, abs=1e-12)

    def test_enumerable_population_supported(self):
        scenario = tiny_enumerable_scenario()
        pmf = fault_count_pmf(scenario.population)
        assert pmf is not None
        assert sum(pmf.values()) == pytest.approx(1.0, abs=1e-9)

    def test_pair_pmf_is_convolution(self):
        space = DemandSpace(10)
        universe = uniform_random_universe(
            space, n_faults=4, region_size=2, rng=2
        )
        population = BernoulliFaultPopulation.uniform(universe, 0.5)
        single = fault_count_pmf(population)
        pair = pair_fault_count_pmf(population, population)
        for k, mass in pair.items():
            expected = sum(
                single[i] * single.get(k - i, 0.0) for i in single
            )
            assert mass == pytest.approx(expected, abs=1e-12)


class TestResolveVr:
    def test_auto_prefers_strongest(self):
        assert resolve_vr("auto", True, True) == "stratified+control"
        assert resolve_vr("auto", False, True) == "control"
        assert resolve_vr("auto", True, False) == "stratified"
        assert resolve_vr("auto", False, False) == "none"

    def test_auto_never_picks_antithetic(self):
        assert resolve_vr("auto", True, True, antithetic_ok=True) != "antithetic"

    def test_explicit_unsupported_raises(self):
        with pytest.raises(ModelError):
            resolve_vr("stratified", has_strata=False, has_anchor=True)
        with pytest.raises(ModelError):
            resolve_vr("control", has_strata=True, has_anchor=False)
        with pytest.raises(ModelError):
            resolve_vr("antithetic", True, True, antithetic_ok=False)

    def test_unknown_mode_raises(self):
        with pytest.raises(ModelError):
            resolve_vr("quantum", True, True)


class TestVrEffectiveness:
    """The issue's headline: VR must reduce replications-to-target on the
    noisy imperfect-testing estimand (this same ratio is what
    benchmarks/bench_adaptive.py records and CI gates on)."""

    @pytest.mark.slow
    def test_stratified_control_beats_plain_on_e11_style_point(self):
        scenario = standard_scenario(0)
        kwargs = dict(
            oracle=ImperfectOracle(0.25),
            fixing=ImperfectFixing(0.25),
            rng=31,
        )

        def replications(vr):
            target = PrecisionTarget(
                rel_hw=0.05, budget=60_000, initial=256, vr=vr
            )
            report = adaptive_version_pfd(
                scenario.population,
                scenario.generator,
                scenario.profile,
                target,
                **kwargs,
            )
            assert report.only.converged
            return report.only.replications

        plain = replications("none")
        reduced = replications("stratified+control")
        assert reduced <= plain
