"""Tests for the adaptive controller: stopping, budgets, invariances,
and consistency with the fixed-n golden estimates."""

import math

import numpy as np
import pytest

from repro.adaptive import (
    PrecisionTarget,
    adaptive_marginal_system_pfd,
    adaptive_untested_joint_pfd,
    adaptive_version_pfd,
    run_adaptive,
)
from repro.adaptive.accumulators import moments_of
from repro.adaptive.controller import MetricSpec
from repro.core import ELModel, SameSuite
from repro.errors import ModelError
from repro.experiments.models import standard_scenario
from repro.mc import simulate_version_pfd
from repro.testing import ImperfectFixing, ImperfectOracle


def _noise_kernel(task):
    """Deterministic pseudo-noise chunk kernel for driver-level tests."""
    index, count, seed = task
    values = np.random.default_rng(seed).normal(2.0, 0.5, size=count)
    return index, count, {0: moments_of(values)}


def _spec(name="metric", **kwargs):
    return MetricSpec(name=name, kernel=_noise_kernel, **kwargs)


class TestDriver:
    def test_stops_when_target_met(self):
        target = PrecisionTarget(rel_hw=0.05, budget=100_000, initial=64)
        report = run_adaptive([_spec()], target, rng=0)
        metric = report.only
        assert metric.converged
        assert metric.estimate.half_width <= 0.05 * abs(metric.estimate.mean)
        assert metric.replications < 100_000

    def test_budget_exhaustion_reports_unconverged(self):
        target = PrecisionTarget(abs_hw=1e-6, budget=500, initial=64)
        report = run_adaptive([_spec()], target, rng=0)
        metric = report.only
        assert not metric.converged
        assert metric.replications == 500
        assert not report.converged

    def test_deterministic_in_seed(self):
        target = PrecisionTarget(rel_hw=0.1, budget=10_000, initial=64)
        a = run_adaptive([_spec()], target, rng=3)
        b = run_adaptive([_spec()], target, rng=3)
        assert a.only.estimate == b.only.estimate
        assert a.only.replications == b.only.replications

    def test_n_jobs_invariant_bitwise(self):
        target = PrecisionTarget(rel_hw=0.1, budget=10_000, initial=64)
        serial = run_adaptive([_spec()], target, rng=3, chunk_size=32)
        sharded = run_adaptive([_spec()], target, rng=3, chunk_size=32, n_jobs=3)
        assert serial.only.estimate == sharded.only.estimate

    def test_needs_bounded_budget(self):
        with pytest.raises(ModelError, match="bounded"):
            run_adaptive([_spec()], PrecisionTarget(rel_hw=0.1), rng=0)

    def test_duplicate_metric_names_rejected(self):
        target = PrecisionTarget(rel_hw=0.1, budget=1000)
        with pytest.raises(ModelError, match="duplicate"):
            run_adaptive([_spec(), _spec()], target, rng=0)

    def test_converged_metric_stops_while_other_continues(self):
        target = PrecisionTarget(rel_hw=0.02, abs_hw=None, budget=50_000, initial=64)

        def tight_kernel(task):
            index, count, seed = task
            values = np.random.default_rng(seed).normal(5.0, 0.01, size=count)
            return index, count, {0: moments_of(values)}

        report = run_adaptive(
            [
                MetricSpec(name="tight", kernel=tight_kernel),
                _spec(name="noisy"),
            ],
            target,
            rng=1,
        )
        assert report["tight"].converged
        assert report["noisy"].converged
        assert report["tight"].replications < report["noisy"].replications

    def test_payload_shape(self):
        target = PrecisionTarget(rel_hw=0.1, budget=2000, initial=64)
        payload = run_adaptive([_spec()], target, rng=0).to_payload()
        assert set(payload) == {
            "converged",
            "replications",
            "rounds",
            "target",
            "metrics",
        }
        metric = payload["metrics"]["metric"]
        assert metric["replications"] >= 64
        assert isinstance(metric["converged"], bool)


class TestAdaptersAgainstFixedN:
    """Adaptive runs must agree with the fixed-n estimators they replace."""

    def test_version_pfd_vr_none_matches_fixed_n_within_half_width(self):
        scenario = standard_scenario(0)
        fixed = simulate_version_pfd(
            scenario.population,
            scenario.generator,
            scenario.profile,
            n_replications=20_000,
            rng=123,
        )
        target = PrecisionTarget(
            rel_hw=0.05, budget=50_000, initial=256, vr="none"
        )
        report = adaptive_version_pfd(
            scenario.population,
            scenario.generator,
            scenario.profile,
            target,
            rng=7,
        )
        metric = report.only
        assert metric.converged
        tolerance = metric.estimate.half_width + 2.6 * fixed.std_error()
        assert abs(metric.estimate.mean - fixed.mean) <= tolerance

    @pytest.mark.parametrize(
        "vr", ["none", "control", "stratified", "stratified+control", "antithetic"]
    )
    def test_version_pfd_all_vr_modes_agree(self, vr):
        scenario = standard_scenario(0)
        target = PrecisionTarget(rel_hw=0.04, budget=60_000, initial=512, vr=vr)
        report = adaptive_version_pfd(
            scenario.population,
            scenario.generator,
            scenario.profile,
            target,
            oracle=ImperfectOracle(0.5),
            fixing=ImperfectFixing(0.5),
            rng=11,
        )
        metric = report.only
        assert metric.converged
        # ground truth from an independent large fixed-n run
        fixed = simulate_version_pfd(
            scenario.population,
            scenario.generator,
            scenario.profile,
            n_replications=30_000,
            rng=999,
            oracle=ImperfectOracle(0.5),
            fixing=ImperfectFixing(0.5),
        )
        tolerance = metric.estimate.half_width + 2.6 * fixed.std_error()
        assert abs(metric.estimate.mean - fixed.mean) <= tolerance

    def test_untested_joint_matches_analytic_exactly_within_ci(self):
        from repro.demand import DemandSpace, uniform_profile
        from repro.faults import clustered_universe
        from repro.populations import BernoulliFaultPopulation

        space = DemandSpace(80)
        profile = uniform_profile(space)
        universe = clustered_universe(
            space, n_faults=16, region_size=5, concentration=8.0, rng=2
        )
        population = BernoulliFaultPopulation.uniform(universe, 0.25)
        analytic = ELModel.from_population(population, profile).prob_both_fail()
        target = PrecisionTarget(rel_hw=0.03, budget=200_000, initial=512)
        report = adaptive_untested_joint_pfd(
            population, profile, target, rng=5
        )
        metric = report.only
        assert metric.converged
        # a 99% CI at 3% relative width must cover the exact analytic value
        assert metric.estimate.contains(analytic)

    def test_dead_oracle_control_variate_collapses_to_exact(self):
        scenario = standard_scenario(0)
        target = PrecisionTarget(
            rel_hw=0.05, budget=10_000, initial=128, vr="control"
        )
        report = adaptive_version_pfd(
            scenario.population,
            scenario.generator,
            scenario.profile,
            target,
            oracle=ImperfectOracle(0.0),
            fixing=ImperfectFixing(1.0),
            rng=1,
        )
        metric = report.only
        # d = 0: testing never changes anything, y == c exactly, so the
        # control variate nails the untested pfd with zero residual at the
        # very first round
        assert metric.replications == 128
        assert metric.estimate.mean == pytest.approx(
            scenario.population.pfd(scenario.profile), abs=1e-12
        )
        assert metric.estimate.half_width == pytest.approx(0.0, abs=1e-12)

    def test_system_pfd_adapter_runs_and_converges(self):
        scenario = standard_scenario(0)
        regime = SameSuite(scenario.generator)
        target = PrecisionTarget(rel_hw=0.1, budget=30_000, initial=256)
        report = adaptive_marginal_system_pfd(
            regime,
            scenario.population,
            scenario.profile,
            target,
            oracle=ImperfectOracle(0.5),
            fixing=ImperfectFixing(0.5),
            rng=2,
        )
        metric = report.only
        assert metric.converged
        assert 0.0 < metric.estimate.mean < 1.0

    def test_custom_policy_rejected(self):
        from repro.testing.oracle import Oracle

        class WeirdOracle(Oracle):
            def detects(self, version, demand, rng=None):
                return False

        scenario = standard_scenario(0)
        target = PrecisionTarget(rel_hw=0.1, budget=1000)
        with pytest.raises(ModelError):
            adaptive_version_pfd(
                scenario.population,
                scenario.generator,
                scenario.profile,
                target,
                oracle=WeirdOracle(),
                rng=0,
            )


class TestSimulatePrecisionKwarg:
    def test_simulate_version_pfd_precision_returns_estimator(self):
        scenario = standard_scenario(0)
        estimator = simulate_version_pfd(
            scenario.population,
            scenario.generator,
            scenario.profile,
            n_replications=30_000,
            rng=3,
            precision={"rel_hw": 0.05},
        )
        report = estimator.adaptive
        assert report.converged
        assert estimator.mean == report.only.estimate.mean
        assert estimator.std_error() == pytest.approx(
            report.only.estimate.std_error
        )
        # the estimator's normal interval reproduces the adaptive one at
        # the target's confidence
        low, high = estimator.normal_interval(report.target.confidence)
        assert (high - low) / 2 == pytest.approx(
            report.only.estimate.half_width
        )

    def test_scalar_engine_rejected_with_precision(self):
        scenario = standard_scenario(0)
        with pytest.raises(ModelError, match="scalar"):
            simulate_version_pfd(
                scenario.population,
                scenario.generator,
                scenario.profile,
                rng=0,
                engine="scalar",
                precision={"rel_hw": 0.1},
            )

    def test_proportion_rejects_explicit_vr(self):
        from repro.mc import simulate_untested_joint_on_demand

        scenario = standard_scenario(0)
        with pytest.raises(ModelError, match="proportion"):
            simulate_untested_joint_on_demand(
                scenario.population,
                0,
                rng=0,
                precision={"rel_hw": 0.2, "vr": "stratified"},
            )

    def test_x3_n_replications_knob_is_the_adaptive_budget(self):
        from repro.experiments import run_experiment

        result = run_experiment(
            "x3",
            seed=0,
            fast=True,
            params={
                "n_replications": 3000,
                "precision": {"rel_hw": 1e-6, "initial": 128},
            },
        )
        for payload in result.extra["adaptive"].values():
            metric = payload["metrics"]["campaign_pfd"]
            # an unreachable target runs each campaign to exactly the
            # user's replication budget, not the hardwired full count
            assert metric["replications"] <= 3000
            if not metric["converged"]:
                assert metric["replications"] == 3000

    def test_antithetic_accounting_with_odd_chunks(self):
        scenario = standard_scenario(0)
        target = PrecisionTarget(
            rel_hw=1e-9, budget=255, initial=255, vr="antithetic"
        )
        report = adaptive_version_pfd(
            scenario.population,
            scenario.generator,
            scenario.profile,
            target,
            rng=0,
            chunk_size=101,
        )
        metric = report.only
        # every dispatched chunk is a whole number of pairs: recorded
        # replications are even and match twice the observations
        assert metric.replications % 2 == 0
        assert metric.replications == 2 * metric.estimate.count
        assert metric.replications <= 256

    def test_proportion_precision_path(self):
        from repro.mc import simulate_untested_joint_on_demand

        scenario = standard_scenario(0)
        demand = int(np.argmax(scenario.population.difficulty()))
        estimator = simulate_untested_joint_on_demand(
            scenario.population,
            demand,
            n_replications=50_000,
            rng=4,
            precision={"rel_hw": 0.25},
        )
        report = estimator.adaptive
        assert report.only.kind == "proportion"
        theta = scenario.population.difficulty()[demand]
        assert estimator.count == report.only.replications
        if report.converged:
            low, high = estimator.wilson_interval(0.99)
            assert low <= theta * theta <= high


class TestExperimentsAdaptive:
    """The acceptance-criterion experiments: early stop + golden coverage."""

    @pytest.mark.parametrize(
        "experiment_id,fixed_full",
        [("e01", 20_000 * 3), ("x3", 1_500 * 3)],
    )
    def test_adaptive_run_stops_early_and_passes(
        self, experiment_id, fixed_full
    ):
        from repro.experiments import run_experiment

        result = run_experiment(
            experiment_id,
            seed=0,
            fast=True,
            params={"precision": {"rel_hw": 0.05}},
        )
        assert result.passed
        adaptive = result.extra["adaptive"]
        total = sum(entry["replications"] for entry in adaptive.values())
        assert total < fixed_full

    @pytest.mark.slow
    def test_e11_adaptive_stops_early_and_covers_golden(self):
        import json
        from pathlib import Path

        from repro.experiments import run_experiment

        result = run_experiment(
            "e11", seed=0, fast=True, params={"precision": {"rel_hw": 0.05}}
        )
        assert result.passed
        adaptive = result.extra["adaptive"]
        total = sum(
            metric["replications"]
            for point in adaptive.values()
            for run in point.values()
            for metric in run["metrics"].values()
        )
        # 7 grid points x 2 measurements at the full-mode fixed count
        assert total < 7 * 2 * 3000
        # CI coverage of the golden fixed-n measurements: the golden fast
        # run is itself noisy, so allow its own (~se) slack on top of the
        # adaptive half-width
        golden = json.loads(
            (
                Path(__file__).parents[1]
                / "experiments"
                / "golden"
                / "e11.json"
            ).read_text()
        )
        golden_rows = {row[0]: row for row in golden["rows"]}
        for label, point in adaptive.items():
            version_metric = point["version"]["metrics"]["version_pfd"]
            golden_measured = golden_rows[label][2]
            slack = version_metric["half_width"] + 0.01
            assert abs(version_metric["mean"] - golden_measured) <= slack
