"""Tests for repro.rng — seed normalisation, stream spawning, counter RNG."""

import numpy as np
import pytest

from repro.rng import (
    as_generator,
    counter_generator,
    counter_key,
    counter_uniforms,
    inverse_cdf_indices,
    philox_uniform,
    spawn,
    spawn_many,
    stream,
)


class TestInverseCdfIndices:
    def test_scalar_draw_in_range(self):
        cdf = np.array([0.2, 0.7, 1.0])
        for seed in range(20):
            index = inverse_cdf_indices(cdf, seed)
            assert 0 <= index < len(cdf)

    def test_block_shapes(self):
        cdf = np.array([0.5, 1.0])
        assert inverse_cdf_indices(cdf, 0, 7).shape == (7,)
        assert inverse_cdf_indices(cdf, 0, (3, 4)).shape == (3, 4)

    def test_clamped_when_cdf_tops_below_one(self):
        # probability vectors are validated only within a tolerance, so the
        # last CDF entry can sit below 1.0; draws above it must clamp
        cdf = np.array([0.3, 0.6])
        draws = inverse_cdf_indices(cdf, 123, 10_000)
        assert draws.max() == len(cdf) - 1

    def test_deterministic_under_seed(self):
        cdf = np.array([0.1, 0.4, 1.0])
        np.testing.assert_array_equal(
            inverse_cdf_indices(cdf, 9, 50), inverse_cdf_indices(cdf, 9, 50)
        )


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = as_generator(42).random(5)
        b = as_generator(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = as_generator(1).random(5)
        b = as_generator(2).random(5)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        generator = np.random.default_rng(0)
        assert as_generator(generator) is generator

    def test_seed_sequence_accepted(self):
        sequence = np.random.SeedSequence(7)
        generator = as_generator(sequence)
        assert isinstance(generator, np.random.Generator)

    def test_seed_sequence_matches_default_rng(self):
        # the SeedSequence arm is the default_rng fallthrough, not a
        # special case — same entropy, same stream
        a = as_generator(np.random.SeedSequence(7)).random(5)
        b = np.random.default_rng(np.random.SeedSequence(7)).random(5)
        np.testing.assert_array_equal(a, b)


class TestSpawn:
    def test_children_are_deterministic_given_parent_seed(self):
        children_a = spawn_many(as_generator(9), 3)
        children_b = spawn_many(as_generator(9), 3)
        for left, right in zip(children_a, children_b):
            np.testing.assert_array_equal(left.random(4), right.random(4))

    def test_children_are_mutually_different(self):
        children = spawn_many(as_generator(3), 4)
        draws = [tuple(child.random(3)) for child in children]
        assert len(set(draws)) == 4

    def test_spawn_single(self):
        child = spawn(as_generator(5))
        assert isinstance(child, np.random.Generator)

    def test_spawn_zero(self):
        assert spawn_many(as_generator(1), 0) == []

    def test_spawn_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_many(as_generator(1), -1)

    def test_uses_seed_sequence_spawning(self):
        # children must come from seed_seq.spawn, not from parent draws
        parent = np.random.default_rng(21)
        expected_children = parent.bit_generator.seed_seq.spawn(3)
        children = spawn_many(np.random.default_rng(21), 3)
        for child, child_seq in zip(children, expected_children):
            np.testing.assert_array_equal(
                child.random(4), np.random.default_rng(child_seq).random(4)
            )

    def test_does_not_consume_the_parent_stream(self):
        parent = as_generator(17)
        untouched = as_generator(17)
        spawn_many(parent, 5)
        np.testing.assert_array_equal(parent.random(6), untouched.random(6))

    def test_repeated_spawns_give_fresh_families(self):
        parent = as_generator(23)
        first = spawn_many(parent, 2)
        second = spawn_many(parent, 2)
        draws = [tuple(g.random(3)) for g in first + second]
        assert len(set(draws)) == 4

    def test_seedless_bit_generator_falls_back_to_parent_draws(self):
        # Philox(key=...) has no seed sequence: the fallback must still
        # produce children, deterministically, by consuming the parent
        def keyed():
            return np.random.Generator(np.random.Philox(key=99))

        children_a = spawn_many(keyed(), 3)
        children_b = spawn_many(keyed(), 3)
        for left, right in zip(children_a, children_b):
            np.testing.assert_array_equal(left.random(4), right.random(4))
        draws = [tuple(child.random(3)) for child in children_a]
        assert len(set(draws)) == 3


class TestStream:
    def test_stream_yields_independent_generators(self):
        generators = stream(11)
        first = next(generators)
        second = next(generators)
        assert not np.array_equal(first.random(4), second.random(4))

    def test_stream_reproducible(self):
        a = next(stream(13)).random(4)
        b = next(stream(13)).random(4)
        np.testing.assert_array_equal(a, b)


class TestCounterKey:
    def test_int_seed_is_deterministic(self):
        assert counter_key(42) == counter_key(42)

    def test_known_values(self):
        # splitmix64-mixed keys, pinned so any change to the mixing
        # function (which would silently re-randomise every compiled-engine
        # result) fails loudly
        assert counter_key(0) == 16294208416658607535
        assert counter_key(42) == 13679457532755275413

    def test_small_seeds_land_far_apart(self):
        keys = [counter_key(seed) for seed in range(64)]
        assert len(set(keys)) == 64
        # mixed keys should not preserve the tiny-integer structure
        assert all(key > 2**32 for key in keys)

    def test_generator_input_consumes_the_stream(self):
        generator = as_generator(5)
        first = counter_key(generator)
        second = counter_key(generator)
        assert first != second
        assert counter_key(as_generator(5)) == first

    def test_seed_sequence_input_is_deterministic(self):
        sequence = np.random.SeedSequence(11)
        assert counter_key(sequence) == counter_key(np.random.SeedSequence(11))

    def test_none_draws_fresh_entropy(self):
        assert counter_key(None) != counter_key(None)


class TestPhiloxUniform:
    def test_known_answers(self):
        # pinned Philox4x32-10 outputs: any change to the round function,
        # constants, or the 53-bit conversion shifts every compiled result
        cases = [
            ((0, 0, 0), 0.3990464708489645),
            ((42, 0, 0), 0.6129598811894158),
            ((42, 1, 0), 0.01005884472426255),
            ((42, 0, 1), 0.9877186509145105),
            ((2**64 - 1, 2**63, 12345), 0.8050375728590644),
        ]
        for (key, stream_id, lane), expected in cases:
            value = philox_uniform(
                np.uint64(key), np.uint64(stream_id), np.uint64(lane)
            )
            assert value == expected, (key, stream_id, lane)

    def test_unit_interval(self):
        values = [
            philox_uniform(np.uint64(7), np.uint64(s), np.uint64(l))
            for s in range(20)
            for l in range(20)
        ]
        assert all(0.0 <= v < 1.0 for v in values)
        # distinct (stream, lane) pairs must give distinct uniforms
        assert len(set(values)) == len(values)

    def test_vectorized_twin_is_bit_identical(self):
        key = counter_key(3)
        streams = np.arange(7, dtype=np.uint64)
        lanes = np.arange(5, dtype=np.uint64)
        block = counter_uniforms(key, streams[:, None], lanes[None, :])
        assert block.shape == (7, 5)
        for i, s in enumerate(streams):
            for j, l in enumerate(lanes):
                assert block[i, j] == philox_uniform(
                    np.uint64(key), s, l
                )

    def test_counter_uniforms_broadcasts(self):
        key = counter_key(8)
        row = counter_uniforms(key, 3, np.arange(4))
        assert row.shape == (4,)
        np.testing.assert_array_equal(
            row,
            counter_uniforms(
                key, np.full(4, 3, dtype=np.uint64), np.arange(4)
            ),
        )

    def test_distribution_is_roughly_uniform(self):
        key = counter_key(123)
        block = counter_uniforms(key, np.arange(500)[:, None], np.arange(20))
        assert abs(block.mean() - 0.5) < 0.01
        assert abs((block < 0.25).mean() - 0.25) < 0.01


class TestCounterGenerator:
    def test_deterministic_per_index(self):
        a = counter_generator(5, 3).random(6)
        b = counter_generator(5, 3).random(6)
        np.testing.assert_array_equal(a, b)

    def test_indices_give_independent_streams(self):
        draws = [tuple(counter_generator(5, i).random(4)) for i in range(6)]
        assert len(set(draws)) == 6

    def test_negative_index_raises(self):
        with pytest.raises(ValueError):
            counter_generator(5, -1)
