"""Tests for repro.rng — seed normalisation and stream spawning."""

import numpy as np
import pytest

from repro.rng import (
    as_generator,
    inverse_cdf_indices,
    spawn,
    spawn_many,
    stream,
)


class TestInverseCdfIndices:
    def test_scalar_draw_in_range(self):
        cdf = np.array([0.2, 0.7, 1.0])
        for seed in range(20):
            index = inverse_cdf_indices(cdf, seed)
            assert 0 <= index < len(cdf)

    def test_block_shapes(self):
        cdf = np.array([0.5, 1.0])
        assert inverse_cdf_indices(cdf, 0, 7).shape == (7,)
        assert inverse_cdf_indices(cdf, 0, (3, 4)).shape == (3, 4)

    def test_clamped_when_cdf_tops_below_one(self):
        # probability vectors are validated only within a tolerance, so the
        # last CDF entry can sit below 1.0; draws above it must clamp
        cdf = np.array([0.3, 0.6])
        draws = inverse_cdf_indices(cdf, 123, 10_000)
        assert draws.max() == len(cdf) - 1

    def test_deterministic_under_seed(self):
        cdf = np.array([0.1, 0.4, 1.0])
        np.testing.assert_array_equal(
            inverse_cdf_indices(cdf, 9, 50), inverse_cdf_indices(cdf, 9, 50)
        )


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = as_generator(42).random(5)
        b = as_generator(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = as_generator(1).random(5)
        b = as_generator(2).random(5)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        generator = np.random.default_rng(0)
        assert as_generator(generator) is generator

    def test_seed_sequence_accepted(self):
        sequence = np.random.SeedSequence(7)
        generator = as_generator(sequence)
        assert isinstance(generator, np.random.Generator)


class TestSpawn:
    def test_children_are_deterministic_given_parent_seed(self):
        children_a = spawn_many(as_generator(9), 3)
        children_b = spawn_many(as_generator(9), 3)
        for left, right in zip(children_a, children_b):
            np.testing.assert_array_equal(left.random(4), right.random(4))

    def test_children_are_mutually_different(self):
        children = spawn_many(as_generator(3), 4)
        draws = [tuple(child.random(3)) for child in children]
        assert len(set(draws)) == 4

    def test_spawn_single(self):
        child = spawn(as_generator(5))
        assert isinstance(child, np.random.Generator)

    def test_spawn_zero(self):
        assert spawn_many(as_generator(1), 0) == []

    def test_spawn_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_many(as_generator(1), -1)


class TestStream:
    def test_stream_yields_independent_generators(self):
        generators = stream(11)
        first = next(generators)
        second = next(generators)
        assert not np.array_equal(first.random(4), second.random(4))

    def test_stream_reproducible(self):
        a = next(stream(13)).random(4)
        b = next(stream(13)).random(4)
        np.testing.assert_array_equal(a, b)
