"""Tests for the post-testing conditional forms on MarginalDecomposition."""

import numpy as np
import pytest

from repro.core import IndependentSuites, SameSuite, marginal_system_pfd
from repro.errors import ProbabilityError
from repro.populations import BernoulliFaultPopulation
from repro.testing import EnumerableSuiteGenerator, TestSuite


class TestConditionalForms:
    def test_conditional_identity(
        self, bernoulli_population, enumerable_generator, profile
    ):
        decomposition = marginal_system_pfd(
            SameSuite(enumerable_generator), bernoulli_population, profile
        )
        conditional = decomposition.conditional_prob_a_fails_given_b_failed()
        assert conditional == pytest.approx(
            decomposition.system_pfd / decomposition.pfd_b
        )
        # dependence means conditioning on B's failure raises A's risk
        assert conditional > decomposition.pfd_a

    def test_amplification_ordering_same_vs_independent(
        self, bernoulli_population, enumerable_generator, profile
    ):
        """The shared suite amplifies dependence beyond the EL level."""
        same = marginal_system_pfd(
            SameSuite(enumerable_generator), bernoulli_population, profile
        )
        independent = marginal_system_pfd(
            IndependentSuites(enumerable_generator),
            bernoulli_population,
            profile,
        )
        assert (
            same.dependence_amplification()
            >= independent.dependence_amplification() - 1e-12
        )
        # and even the independent-suite pair is dependent (Var(Theta_T) > 0)
        assert independent.dependence_amplification() > 1.0

    def test_amplification_one_for_flat_difficulty(self, space, profile):
        """A constant tested difficulty gives exact independence."""
        from repro.faults import FaultUniverse

        universe = FaultUniverse.from_regions(
            space, [[2 * k, 2 * k + 1] for k in range(5)]
        )
        population = BernoulliFaultPopulation.uniform(universe, 0.3)
        # degenerate suite measure touching nothing: tested == untested,
        # theta constant (every demand covered by exactly one fault)
        generator = EnumerableSuiteGenerator(
            space, [TestSuite.empty(space)], [1.0]
        )
        decomposition = marginal_system_pfd(
            SameSuite(generator), population, profile
        )
        assert decomposition.dependence_amplification() == pytest.approx(1.0)

    def test_conditional_undefined_when_b_never_fails(self, space, profile):
        from repro.faults import FaultUniverse

        universe = FaultUniverse.from_regions(space, [[0]])
        population = BernoulliFaultPopulation(universe, [0.0])
        generator = EnumerableSuiteGenerator(
            space, [TestSuite.empty(space)], [1.0]
        )
        decomposition = marginal_system_pfd(
            SameSuite(generator), population, profile
        )
        with pytest.raises(ProbabilityError):
            decomposition.conditional_prob_a_fails_given_b_failed()
        assert decomposition.dependence_amplification() == 1.0

    def test_amplification_matches_simulation(
        self, bernoulli_population, enumerable_generator, profile
    ):
        """Direct simulation of the conditional probability agrees."""
        from repro.rng import as_generator, spawn_many
        from repro.testing import apply_testing

        decomposition = marginal_system_pfd(
            SameSuite(enumerable_generator), bernoulli_population, profile
        )
        predicted = decomposition.conditional_prob_a_fails_given_b_failed()

        rng = as_generator(17)
        joint_mass = 0.0
        b_mass = 0.0
        n_replications = 3000
        for replication in spawn_many(rng, n_replications):
            streams = spawn_many(replication, 3)
            version_a = bernoulli_population.sample(streams[0])
            version_b = bernoulli_population.sample(streams[1])
            suite = enumerable_generator.sample(streams[2])
            tested_a = apply_testing(version_a, suite).after
            tested_b = apply_testing(version_b, suite).after
            joint = tested_a.failure_mask & tested_b.failure_mask
            joint_mass += float(profile.probabilities[joint].sum())
            b_mass += tested_b.pfd(profile)
        simulated = joint_mass / b_mass
        assert simulated == pytest.approx(predicted, abs=0.05)
