"""Tests for the §4 bounds machinery."""

import numpy as np
import pytest

from repro.core import SameSuite
from repro.core.bounds import (
    BoundsReport,
    back_to_back_envelope,
    imperfect_system_bounds,
    imperfect_testing_bounds,
)
from repro.errors import ModelError
from repro.populations import FinitePopulation
from repro.testing import ImperfectFixing, ImperfectOracle, PerfectFixing, PerfectOracle
from repro.versions import Version


class TestBoundsReport:
    def test_holds(self):
        report = BoundsReport(0.1, 0.3, 0.2, 100, "x")
        assert report.holds()
        assert report.width == pytest.approx(0.2)

    def test_violations(self):
        low = BoundsReport(0.1, 0.3, 0.05, 100, "x")
        high = BoundsReport(0.1, 0.3, 0.35, 100, "x")
        assert not low.holds()
        assert not high.holds()
        assert low.holds(slack=0.06)
        assert high.holds(slack=0.06)


class TestImperfectTestingBounds:
    def test_perfect_components_hit_lower_bound(
        self, bernoulli_population, enumerable_generator, profile
    ):
        report = imperfect_testing_bounds(
            bernoulli_population,
            enumerable_generator,
            profile,
            PerfectOracle(),
            PerfectFixing(),
            n_replications=150,
            rng=0,
        )
        # the measurement is MC over versions/suites; allow noise
        assert report.measured == pytest.approx(report.lower, abs=0.05)
        assert report.holds(slack=0.05)

    def test_dead_oracle_hits_upper_bound(
        self, bernoulli_population, enumerable_generator, profile
    ):
        report = imperfect_testing_bounds(
            bernoulli_population,
            enumerable_generator,
            profile,
            ImperfectOracle(0.0),
            PerfectFixing(),
            n_replications=150,
            rng=1,
        )
        assert report.measured == pytest.approx(report.upper, abs=0.05)

    def test_intermediate_within_bounds(
        self, bernoulli_population, enumerable_generator, profile
    ):
        report = imperfect_testing_bounds(
            bernoulli_population,
            enumerable_generator,
            profile,
            ImperfectOracle(0.5),
            ImperfectFixing(0.5),
            n_replications=200,
            rng=2,
        )
        assert report.holds(slack=0.02)

    def test_replication_validation(
        self, bernoulli_population, enumerable_generator, profile
    ):
        with pytest.raises(ModelError):
            imperfect_testing_bounds(
                bernoulli_population,
                enumerable_generator,
                profile,
                PerfectOracle(),
                PerfectFixing(),
                n_replications=0,
            )


class TestImperfectSystemBounds:
    def test_within_envelope(
        self, bernoulli_population, enumerable_generator, profile
    ):
        report = imperfect_system_bounds(
            SameSuite(enumerable_generator),
            bernoulli_population,
            profile,
            ImperfectOracle(0.6),
            ImperfectFixing(0.7),
            n_replications=200,
            rng=3,
        )
        assert report.holds(slack=0.02)
        assert report.lower <= report.upper


class TestBackToBackEnvelope:
    def test_ordering_and_optimistic_identity(
        self, bernoulli_population, enumerable_generator, profile
    ):
        envelope = back_to_back_envelope(
            bernoulli_population,
            enumerable_generator,
            profile,
            n_replications=60,
            rng=4,
        )
        assert envelope.optimistic_matches_perfect
        assert envelope.ordering_holds

    def test_identical_channel_population_no_system_gain(
        self, universe, enumerable_generator, profile
    ):
        """With one fixed program in both channels, pessimistic back-to-back
        cannot detect anything, so the system pfd stays untested."""
        fixed = Version.with_all_faults(universe)
        population = FinitePopulation(universe, [fixed], [1.0])
        envelope = back_to_back_envelope(
            population,
            enumerable_generator,
            profile,
            n_replications=10,
            rng=5,
        )
        assert envelope.pessimistic_system_pfd == pytest.approx(
            envelope.untested_system_pfd
        )
        # while the optimistic run does improve the system
        assert envelope.optimistic_system_pfd < envelope.untested_system_pfd

    def test_version_reliability_improves_even_pessimistically(
        self, bernoulli_population, enumerable_generator, profile
    ):
        envelope = back_to_back_envelope(
            bernoulli_population,
            enumerable_generator,
            profile,
            n_replications=100,
            rng=6,
        )
        assert (
            envelope.pessimistic_version_pfd <= envelope.untested_version_pfd
        )
