"""Tests for the system wrappers."""

import numpy as np
import pytest

from repro.core import OneOutOfNSystem, OneOutOfTwoSystem
from repro.errors import IncompatibleSpaceError, ModelError
from repro.faults import FaultUniverse
from repro.versions import Version


class TestOneOutOfTwo:
    def test_fails_only_on_common_failures(self, universe):
        a = Version(universe, np.array([0, 1]))  # fails {0,1,2,3,4}
        b = Version(universe, np.array([1, 2]))  # fails {2,3,4,5}
        system = OneOutOfTwoSystem(a, b)
        np.testing.assert_array_equal(
            system.common_failure_demands, [2, 3, 4]
        )
        assert system.fails_on(3)
        assert not system.fails_on(0)
        assert not system.fails_on(5)

    def test_pfd(self, universe, profile):
        a = Version(universe, np.array([1]))
        b = Version(universe, np.array([2]))
        system = OneOutOfTwoSystem(a, b)
        assert system.pfd(profile) == pytest.approx(0.1)  # only demand 4

    def test_pfd_never_exceeds_channels(self, universe, profile, rng):
        for _ in range(30):
            a = Version(universe, np.flatnonzero(rng.random(3) < 0.5))
            b = Version(universe, np.flatnonzero(rng.random(3) < 0.5))
            system = OneOutOfTwoSystem(a, b)
            pfd_a, pfd_b = system.channel_pfds(profile)
            assert system.pfd(profile) <= min(pfd_a, pfd_b) + 1e-15

    def test_diversity_gain(self, universe, profile):
        a = Version(universe, np.array([0]))   # fails {0,1}
        b = Version(universe, np.array([2]))   # fails {4,5}
        system = OneOutOfTwoSystem(a, b)
        # disjoint failures: gain = min channel pfd
        assert system.diversity_gain(profile) == pytest.approx(0.2)

    def test_identical_channels_zero_gain(self, universe, profile):
        version = Version(universe, np.array([0, 1]))
        system = OneOutOfTwoSystem(version, version)
        assert system.diversity_gain(profile) == pytest.approx(0.0)
        assert system.pfd(profile) == pytest.approx(version.pfd(profile))

    def test_universe_mismatch_rejected(self, universe, space):
        other = FaultUniverse.from_regions(space, [[0]])
        with pytest.raises(IncompatibleSpaceError):
            OneOutOfTwoSystem(
                Version.correct(universe), Version.correct(other)
            )

    def test_with_channels(self, universe):
        system = OneOutOfTwoSystem(
            Version.with_all_faults(universe), Version.with_all_faults(universe)
        )
        replaced = system.with_channels(
            Version.correct(universe), Version.correct(universe)
        )
        assert not replaced.failure_mask.any()


class TestOneOutOfN:
    def test_single_channel(self, universe, profile):
        version = Version(universe, np.array([0]))
        system = OneOutOfNSystem.of([version])
        assert system.pfd(profile) == pytest.approx(version.pfd(profile))

    def test_three_channels(self, universe, profile):
        a = Version(universe, np.array([1]))   # {2,3,4}
        b = Version(universe, np.array([1, 2]))  # {2,3,4,5}
        c = Version(universe, np.array([2]))   # {4,5}
        system = OneOutOfNSystem.of([a, b, c])
        assert system.fails_on(4)
        assert not system.fails_on(2)
        assert system.pfd(profile) == pytest.approx(0.1)

    def test_more_channels_never_worse(self, universe, profile, rng):
        versions = [
            Version(universe, np.flatnonzero(rng.random(3) < 0.6))
            for _ in range(4)
        ]
        pfds = [
            OneOutOfNSystem.of(versions[: k + 1]).pfd(profile)
            for k in range(4)
        ]
        assert all(pfds[i] >= pfds[i + 1] - 1e-15 for i in range(3))

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            OneOutOfNSystem.of([])

    def test_non_version_rejected(self, universe):
        with pytest.raises(ModelError):
            OneOutOfNSystem.of([Version.correct(universe), "nope"])

    def test_mixed_universe_rejected(self, universe, space):
        other = FaultUniverse.from_regions(space, [[0]])
        with pytest.raises(IncompatibleSpaceError):
            OneOutOfNSystem.of(
                [Version.correct(universe), Version.correct(other)]
            )
