"""Tests for the Eckhardt–Lee model."""

import numpy as np
import pytest

from repro.core import ELModel
from repro.demand import DemandSpace, custom_profile, uniform_profile
from repro.errors import IncompatibleSpaceError, ProbabilityError


@pytest.fixture
def two_demand_model():
    space = DemandSpace(2)
    return ELModel(np.array([0.1, 0.3]), uniform_profile(space))


class TestConstruction:
    def test_wrong_length(self):
        space = DemandSpace(3)
        with pytest.raises(IncompatibleSpaceError):
            ELModel(np.array([0.1, 0.2]), uniform_profile(space))

    def test_out_of_range(self):
        space = DemandSpace(2)
        with pytest.raises(ProbabilityError):
            ELModel(np.array([0.1, 1.2]), uniform_profile(space))

    def test_from_population(self, bernoulli_population, profile):
        model = ELModel.from_population(bernoulli_population, profile)
        np.testing.assert_allclose(
            model.difficulty, bernoulli_population.difficulty()
        )


class TestHandComputedValues:
    def test_prob_fail(self, two_demand_model):
        assert two_demand_model.prob_fail() == pytest.approx(0.2)

    def test_prob_both_fail(self, two_demand_model):
        # (0.01 + 0.09)/2 = 0.05
        assert two_demand_model.prob_both_fail() == pytest.approx(0.05)

    def test_variance(self, two_demand_model):
        assert two_demand_model.variance() == pytest.approx(0.01)

    def test_decomposition_identity(self, two_demand_model):
        assert two_demand_model.prob_both_fail() == pytest.approx(
            two_demand_model.independence_prediction()
            + two_demand_model.variance()
        )

    def test_prob_both_fail_on_fixed_demand(self, two_demand_model):
        assert two_demand_model.prob_both_fail_on(1) == pytest.approx(0.09)

    def test_conditional_eq7(self, two_demand_model):
        # Var/E + E = 0.01/0.2 + 0.2 = 0.25
        value = two_demand_model.conditional_prob_fail_given_failed()
        assert value == pytest.approx(0.25)
        assert value >= two_demand_model.prob_fail()

    def test_prob_all_fail_three_versions(self, two_demand_model):
        # (0.001 + 0.027)/2 = 0.014
        assert two_demand_model.prob_all_fail(3) == pytest.approx(0.014)

    def test_prob_all_fail_one_version(self, two_demand_model):
        assert two_demand_model.prob_all_fail(1) == pytest.approx(0.2)

    def test_prob_all_fail_validation(self, two_demand_model):
        with pytest.raises(ProbabilityError):
            two_demand_model.prob_all_fail(0)


class TestInequality:
    def test_el_inequality_random_difficulties(self):
        rng = np.random.default_rng(4)
        space = DemandSpace(50)
        profile = uniform_profile(space)
        for _ in range(20):
            model = ELModel(rng.random(50), profile)
            assert (
                model.prob_both_fail()
                >= model.independence_prediction() - 1e-15
            )

    def test_equality_iff_constant(self):
        space = DemandSpace(5)
        model = ELModel(np.full(5, 0.3), uniform_profile(space))
        assert model.is_constant_difficulty()
        assert model.prob_both_fail() == pytest.approx(
            model.independence_prediction()
        )

    def test_constancy_only_on_support(self):
        """Difficulty variation outside the usage support is irrelevant."""
        space = DemandSpace(3)
        profile = custom_profile(space, [0.5, 0.5, 0.0])
        model = ELModel(np.array([0.3, 0.3, 0.9]), profile)
        assert model.is_constant_difficulty()
        assert model.variance() == pytest.approx(0.0)


class TestEdgeCases:
    def test_zero_difficulty(self):
        space = DemandSpace(4)
        model = ELModel(np.zeros(4), uniform_profile(space))
        assert model.prob_fail() == 0.0
        assert model.independence_excess_ratio() == 0.0
        with pytest.raises(ProbabilityError):
            model.conditional_prob_fail_given_failed()

    def test_certain_failure(self):
        space = DemandSpace(4)
        model = ELModel(np.ones(4), uniform_profile(space))
        assert model.prob_both_fail() == pytest.approx(1.0)
        assert model.variance() == pytest.approx(0.0)
