"""Tests for marginal_system_pfd (eqs. (22)-(25))."""

import numpy as np
import pytest

from repro.core import IndependentSuites, SameSuite, marginal_system_pfd
from repro.populations import BernoulliFaultPopulation


class TestDecomposition:
    def test_reconstruction_identity(
        self, bernoulli_population, enumerable_generator, profile
    ):
        for regime_class in (IndependentSuites, SameSuite):
            decomposition = marginal_system_pfd(
                regime_class(enumerable_generator),
                bernoulli_population,
                profile,
            )
            assert decomposition.reconstructed() == pytest.approx(
                decomposition.system_pfd
            )

    def test_independent_suites_no_suite_dependence(
        self, bernoulli_population, enumerable_generator, profile
    ):
        decomposition = marginal_system_pfd(
            IndependentSuites(enumerable_generator),
            bernoulli_population,
            profile,
        )
        assert decomposition.suite_dependence == pytest.approx(0.0, abs=1e-15)

    def test_same_suite_dependence_positive_same_pop(
        self, bernoulli_population, enumerable_generator, profile
    ):
        decomposition = marginal_system_pfd(
            SameSuite(enumerable_generator), bernoulli_population, profile
        )
        assert decomposition.suite_dependence > 0

    def test_eq23_geq_eq22(self, bernoulli_population, enumerable_generator, profile):
        same = marginal_system_pfd(
            SameSuite(enumerable_generator), bernoulli_population, profile
        )
        independent = marginal_system_pfd(
            IndependentSuites(enumerable_generator),
            bernoulli_population,
            profile,
        )
        assert same.system_pfd >= independent.system_pfd - 1e-15

    def test_channel_pfds_match_zeta(
        self, bernoulli_population, enumerable_generator, profile
    ):
        from repro.core import TestedPopulationView

        decomposition = marginal_system_pfd(
            SameSuite(enumerable_generator), bernoulli_population, profile
        )
        zeta = TestedPopulationView(
            bernoulli_population, enumerable_generator
        ).zeta()
        assert decomposition.pfd_a == pytest.approx(profile.expectation(zeta))
        assert decomposition.pfd_a == decomposition.pfd_b

    def test_conditional_independence_pfd_property(
        self, bernoulli_population, enumerable_generator, profile
    ):
        decomposition = marginal_system_pfd(
            SameSuite(enumerable_generator), bernoulli_population, profile
        )
        assert decomposition.conditional_independence_pfd == pytest.approx(
            decomposition.system_pfd - decomposition.suite_dependence
        )

    def test_forced_design_covariance_term(
        self, universe, enumerable_generator, profile
    ):
        pop_a = BernoulliFaultPopulation(universe, [0.5, 0.0, 0.3])
        pop_b = BernoulliFaultPopulation(universe, [0.2, 0.6, 0.0])
        decomposition = marginal_system_pfd(
            IndependentSuites(enumerable_generator), pop_a, profile, pop_b
        )
        # eq. (24): pfd = E[A]E[B] + Cov
        assert decomposition.system_pfd == pytest.approx(
            decomposition.independence_product
            + decomposition.difficulty_covariance
        )

    def test_exactness_flag(self, bernoulli_population, enumerable_generator, profile):
        decomposition = marginal_system_pfd(
            SameSuite(enumerable_generator), bernoulli_population, profile
        )
        assert decomposition.exact

    def test_against_brute_force(self, finite_population, enumerable_generator, profile):
        from repro.analytic import exact_marginal_system_pfd

        for regime_class in (IndependentSuites, SameSuite):
            regime = regime_class(enumerable_generator)
            decomposition = marginal_system_pfd(
                regime, finite_population, profile
            )
            truth = exact_marginal_system_pfd(regime, finite_population, profile)
            assert decomposition.system_pfd == pytest.approx(truth, abs=1e-12)
