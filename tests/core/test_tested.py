"""Tests for the tested-population quantities (paper eqs. (12)-(14))."""

import numpy as np
import pytest

from repro.core import SuiteMoments, TestedPopulationView, cross_suite_moments
from repro.core.score import (
    score_after_perfect_testing,
    score_before_testing,
)
from repro.errors import ModelError
from repro.populations import BernoulliFaultPopulation
from repro.testing import TestSuite
from repro.versions import Version


class TestScoreFunctions:
    def test_score_before(self, universe):
        version = Version(universe, np.array([0]))
        assert score_before_testing(version, 0) == 1
        assert score_before_testing(version, 5) == 0

    def test_score_after(self, universe, space):
        version = Version(universe, np.array([0]))
        suite = TestSuite.of(space, [1])
        assert score_after_perfect_testing(version, suite, 0) == 0

    def test_monotonicity(self, universe, space, rng):
        for _ in range(30):
            version = Version(universe, np.flatnonzero(rng.random(3) < 0.5))
            suite = TestSuite(space, rng.integers(0, 10, size=3))
            for demand in range(10):
                before = score_before_testing(version, demand)
                after = score_after_perfect_testing(version, suite, demand)
                assert before >= after


class TestXi:
    def test_xi_exact(self, bernoulli_population, enumerable_generator, space):
        view = TestedPopulationView(bernoulli_population, enumerable_generator)
        suite = TestSuite.of(space, [0])
        xi = view.xi(suite)
        np.testing.assert_allclose(
            xi, bernoulli_population.tested_difficulty([0])
        )


class TestVarsigma:
    def test_varsigma_enumerable_exact(
        self, bernoulli_population, enumerable_generator, universe
    ):
        """Hand-check eq. (12) for the version containing only fault 0.

        Fault 0 covers {0,1}; suites are {0} (p=.5), {2,4} (p=.3), {7}
        (p=.2).  Only suite {0} triggers it, so the version keeps failing
        on {0,1} with probability 0.5."""
        view = TestedPopulationView(bernoulli_population, enumerable_generator)
        version = Version(universe, np.array([0]))
        varsigma = view.varsigma(version)
        assert varsigma[0] == pytest.approx(0.5)
        assert varsigma[1] == pytest.approx(0.5)
        assert varsigma[2] == 0.0

    def test_varsigma_sampled_close_to_exact(
        self, bernoulli_population, operational_generator, universe
    ):
        view = TestedPopulationView(bernoulli_population, operational_generator)
        version = Version.with_all_faults(universe)
        sampled = view.varsigma(version, n_suites=3000, rng=1)
        # exact by suite-probability reasoning: fault survives iff no suite
        # demand lands in its region; suite = 4 iid uniform draws
        survive = lambda region_size: (1 - region_size / 10) ** 4
        assert sampled[0] == pytest.approx(survive(2), abs=0.05)
        assert sampled[2] == pytest.approx(survive(3), abs=0.05)

    def test_varsigma_needs_replications(self, bernoulli_population, operational_generator, universe):
        view = TestedPopulationView(bernoulli_population, operational_generator)
        with pytest.raises(ModelError):
            view.varsigma(Version.correct(universe), n_suites=0, rng=0)


class TestEta:
    def test_eta_hand_value(
        self, bernoulli_population, enumerable_generator, universe, profile, space
    ):
        view = TestedPopulationView(bernoulli_population, enumerable_generator)
        version = Version.with_all_faults(universe)
        suite = TestSuite.of(space, [0])  # removes fault 0; {2,3,4,5} remain
        assert view.eta(version, suite, profile) == pytest.approx(0.4)


class TestSuiteMoments:
    def test_exact_flag(self, bernoulli_population, enumerable_generator):
        view = TestedPopulationView(bernoulli_population, enumerable_generator)
        moments = view.suite_moments()
        assert moments.exact
        assert moments.n_suites == 3

    def test_zeta_hand_value(self, bernoulli_population, enumerable_generator):
        """zeta(0): fault 0 (p=.5) survives unless suite {0} (prob .5) runs.
        zeta(0) = .5 * 0 + .3 * .5 + .2 * .5 = 0.25."""
        view = TestedPopulationView(bernoulli_population, enumerable_generator)
        moments = view.suite_moments()
        assert moments.zeta[0] == pytest.approx(0.25)

    def test_second_moment_hand_value(self, bernoulli_population, enumerable_generator):
        """E[xi(0,T)^2] = .5*0 + .3*.25 + .2*.25 = 0.125."""
        view = TestedPopulationView(bernoulli_population, enumerable_generator)
        moments = view.suite_moments()
        assert moments.second_moment[0] == pytest.approx(0.125)

    def test_variance_identity(self, bernoulli_population, enumerable_generator):
        moments = TestedPopulationView(
            bernoulli_population, enumerable_generator
        ).suite_moments()
        np.testing.assert_allclose(
            moments.variance,
            moments.second_moment - moments.zeta**2,
            atol=1e-15,
        )

    def test_variance_non_negative(self, bernoulli_population, operational_generator):
        moments = TestedPopulationView(
            bernoulli_population, operational_generator
        ).suite_moments(n_suites=200, rng=3)
        assert np.all(moments.variance >= 0)

    def test_sampled_converges_to_exact(self, bernoulli_population, space, profile):
        """Sampling from an enumerable measure converges to enumeration."""
        from repro.testing import EnumerableSuiteGenerator

        suites = [TestSuite.of(space, [0]), TestSuite.of(space, [4])]
        generator = EnumerableSuiteGenerator(space, suites, [0.5, 0.5])
        view = TestedPopulationView(bernoulli_population, generator)
        exact = view.suite_moments()

        class SamplingOnly:
            space = generator.space

            def enumerate(self):
                from repro.errors import NotEnumerableError

                raise NotEnumerableError("test stub")

            def sample(self, rng):
                return generator.sample(rng)

            def sample_many(self, count, rng):
                return generator.sample_many(count, rng)

        sampled_view = TestedPopulationView(bernoulli_population, SamplingOnly())
        sampled = sampled_view.suite_moments(n_suites=4000, rng=5)
        assert not sampled.exact
        np.testing.assert_allclose(sampled.zeta, exact.zeta, atol=0.03)


class TestEfficiency:
    def test_efficiency_non_negative(
        self, bernoulli_population, enumerable_generator
    ):
        view = TestedPopulationView(bernoulli_population, enumerable_generator)
        assert np.all(view.efficiency() >= -1e-15)

    def test_marginal_pfd(self, bernoulli_population, enumerable_generator, profile):
        view = TestedPopulationView(bernoulli_population, enumerable_generator)
        assert view.marginal_pfd(profile) == pytest.approx(
            profile.expectation(view.zeta())
        )


class TestCrossSuiteMoments:
    def test_same_population_reduces_to_second_moment(
        self, bernoulli_population, enumerable_generator
    ):
        cross = cross_suite_moments(
            bernoulli_population, bernoulli_population, enumerable_generator
        )
        moments = TestedPopulationView(
            bernoulli_population, enumerable_generator
        ).suite_moments()
        np.testing.assert_allclose(cross.cross_moment, moments.second_moment)

    def test_covariance_identity(self, universe, enumerable_generator):
        pop_a = BernoulliFaultPopulation(universe, [0.5, 0.0, 0.3])
        pop_b = BernoulliFaultPopulation(universe, [0.2, 0.6, 0.0])
        cross = cross_suite_moments(pop_a, pop_b, enumerable_generator)
        np.testing.assert_allclose(
            cross.covariance,
            cross.cross_moment - cross.zeta_a * cross.zeta_b,
            atol=1e-15,
        )
