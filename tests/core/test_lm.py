"""Tests for the Littlewood–Miller model."""

import numpy as np
import pytest

from repro.core import ELModel, LMModel
from repro.demand import DemandSpace, uniform_profile
from repro.errors import IncompatibleSpaceError, ProbabilityError
from repro.populations import BernoulliFaultPopulation, Methodology, MethodologyPair


@pytest.fixture
def complementary_model():
    """A hard where B easy and vice versa: negative covariance."""
    space = DemandSpace(2)
    return LMModel(
        np.array([0.4, 0.0]), np.array([0.0, 0.4]), uniform_profile(space)
    )


class TestConstruction:
    def test_length_validation(self):
        space = DemandSpace(3)
        with pytest.raises(IncompatibleSpaceError):
            LMModel(np.array([0.1]), np.zeros(3), uniform_profile(space))

    def test_range_validation(self):
        space = DemandSpace(2)
        with pytest.raises(ProbabilityError):
            LMModel(np.array([0.1, -0.2]), np.zeros(2), uniform_profile(space))

    def test_from_pair(self, universe, profile):
        pop_a = BernoulliFaultPopulation(universe, [0.5, 0.0, 0.0])
        pop_b = BernoulliFaultPopulation(universe, [0.0, 0.5, 0.0])
        pair = MethodologyPair(Methodology("A", pop_a), Methodology("B", pop_b))
        model = LMModel.from_pair(pair, profile)
        assert model.prob_fail_a() == pytest.approx(0.1)
        assert model.prob_fail_b() == pytest.approx(0.15)


class TestHandComputedValues:
    def test_negative_covariance(self, complementary_model):
        # E[AB] = 0, E[A]E[B] = 0.04 -> cov = -0.04
        assert complementary_model.covariance() == pytest.approx(-0.04)

    def test_prob_both_fail(self, complementary_model):
        assert complementary_model.prob_both_fail() == pytest.approx(0.0)

    def test_beats_independence(self, complementary_model):
        assert complementary_model.beats_independence()
        assert (
            complementary_model.prob_both_fail()
            < complementary_model.independence_prediction()
        )

    def test_decomposition_identity(self, complementary_model):
        assert complementary_model.prob_both_fail() == pytest.approx(
            complementary_model.independence_prediction()
            + complementary_model.covariance()
        )

    def test_fixed_demand_product(self, complementary_model):
        assert complementary_model.prob_both_fail_on(0) == 0.0

    def test_conditional_eq10(self):
        space = DemandSpace(2)
        model = LMModel(
            np.array([0.2, 0.4]), np.array([0.1, 0.3]), uniform_profile(space)
        )
        conditional = model.conditional_prob_a_fails_given_b_failed()
        expected = model.prob_both_fail() / model.prob_fail_b()
        assert conditional == pytest.approx(expected)

    def test_conditional_requires_positive_b(self, complementary_model):
        space = DemandSpace(2)
        model = LMModel(
            np.array([0.2, 0.4]), np.zeros(2), uniform_profile(space)
        )
        with pytest.raises(ProbabilityError):
            model.conditional_prob_a_fails_given_b_failed()


class TestRelationToEL:
    def test_identical_methodologies_collapse_to_el(self, profile):
        rng = np.random.default_rng(8)
        theta = rng.random(10) * 0.5
        lm = LMModel(theta, theta, profile)
        el = ELModel(theta, profile)
        assert lm.prob_both_fail() == pytest.approx(el.prob_both_fail())
        assert lm.covariance() == pytest.approx(el.variance())

    def test_cauchy_schwarz_bound(self, profile):
        rng = np.random.default_rng(9)
        for _ in range(20):
            model = LMModel(rng.random(10), rng.random(10), profile)
            assert model.worst_case_is_el()
