"""Tests for joint_failure_probability (eqs. (15)-(21))."""

import numpy as np
import pytest

from repro.core import (
    ForcedTestingDiversity,
    IndependentSuites,
    SameSuite,
    joint_failure_probability,
)
from repro.populations import BernoulliFaultPopulation


class TestDecompositionStructure:
    def test_independent_regime_zero_excess(
        self, bernoulli_population, enumerable_generator
    ):
        decomposition = joint_failure_probability(
            IndependentSuites(enumerable_generator), bernoulli_population
        )
        assert decomposition.conditional_independence_holds
        np.testing.assert_allclose(
            decomposition.joint,
            decomposition.zeta_a * decomposition.zeta_b,
        )

    def test_same_suite_positive_excess(
        self, bernoulli_population, enumerable_generator
    ):
        decomposition = joint_failure_probability(
            SameSuite(enumerable_generator), bernoulli_population
        )
        assert not decomposition.conditional_independence_holds
        assert decomposition.max_excess > 0
        assert np.all(decomposition.excess >= -1e-15)

    def test_same_suite_forced_design(self, universe, enumerable_generator):
        pop_a = BernoulliFaultPopulation(universe, [0.5, 0.0, 0.3])
        pop_b = BernoulliFaultPopulation(universe, [0.2, 0.6, 0.0])
        decomposition = joint_failure_probability(
            SameSuite(enumerable_generator), pop_a, pop_b
        )
        np.testing.assert_allclose(
            decomposition.excess,
            decomposition.joint - decomposition.zeta_a * decomposition.zeta_b,
            atol=1e-15,
        )

    def test_unknown_regime_rejected(self, bernoulli_population):
        with pytest.raises(TypeError):
            joint_failure_probability("not a regime", bernoulli_population)

    def test_joint_on_accessor(self, bernoulli_population, enumerable_generator):
        decomposition = joint_failure_probability(
            SameSuite(enumerable_generator), bernoulli_population
        )
        assert decomposition.joint_on(0) == pytest.approx(0.125)

    def test_probability_range(self, bernoulli_population, enumerable_generator):
        for regime_class in (IndependentSuites, SameSuite):
            decomposition = joint_failure_probability(
                regime_class(enumerable_generator), bernoulli_population
            )
            assert np.all(decomposition.joint >= 0)
            assert np.all(decomposition.joint <= 1)


class TestAgainstEnumeration:
    """The derived formulas must match brute-force eq. (15) sums."""

    def test_all_regimes_match_enumeration(
        self, finite_population, enumerable_generator, space
    ):
        from repro.analytic import exact_joint_per_demand
        from repro.testing import EnumerableSuiteGenerator, TestSuite

        other_generator = EnumerableSuiteGenerator(
            space,
            [TestSuite.of(space, [1]), TestSuite.of(space, [3, 5])],
            [0.7, 0.3],
        )
        regimes = [
            IndependentSuites(enumerable_generator),
            SameSuite(enumerable_generator),
            ForcedTestingDiversity(enumerable_generator, other_generator),
        ]
        for regime in regimes:
            derived = joint_failure_probability(regime, finite_population)
            truth = exact_joint_per_demand(regime, finite_population)
            np.testing.assert_allclose(
                derived.joint, truth, atol=1e-12, err_msg=regime.label
            )

    def test_same_suite_exceeds_independent(
        self, finite_population, enumerable_generator
    ):
        same = joint_failure_probability(
            SameSuite(enumerable_generator), finite_population
        )
        independent = joint_failure_probability(
            IndependentSuites(enumerable_generator), finite_population
        )
        assert np.all(same.joint >= independent.joint - 1e-15)
