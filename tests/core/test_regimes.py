"""Tests for the testing-regime objects."""

import numpy as np
import pytest

from repro.core import ForcedTestingDiversity, IndependentSuites, SameSuite
from repro.demand import DemandSpace, uniform_profile
from repro.errors import IncompatibleSpaceError
from repro.testing import OperationalSuiteGenerator


class TestSameSuite:
    def test_draws_are_shared(self, enumerable_generator, rng):
        regime = SameSuite(enumerable_generator)
        suite_a, suite_b = regime.draw_suites(rng)
        assert suite_a is suite_b

    def test_flags(self, enumerable_generator):
        regime = SameSuite(enumerable_generator)
        assert regime.shares_suite
        assert regime.label == "same suite"

    def test_joint_per_demand_same_pop(
        self, bernoulli_population, enumerable_generator
    ):
        regime = SameSuite(enumerable_generator)
        joint = regime.joint_per_demand(
            bernoulli_population, bernoulli_population
        )
        # hand value from test_tested: E[xi(0,T)^2] = 0.125
        assert joint[0] == pytest.approx(0.125)


class TestIndependentSuites:
    def test_draws_differ_statistically(self, operational_generator):
        regime = IndependentSuites(operational_generator)
        rng = np.random.default_rng(0)
        distinct = 0
        for _ in range(20):
            suite_a, suite_b = regime.draw_suites(rng)
            if not np.array_equal(suite_a.demands, suite_b.demands):
                distinct += 1
        assert distinct > 10

    def test_flags(self, enumerable_generator):
        regime = IndependentSuites(enumerable_generator)
        assert not regime.shares_suite

    def test_joint_is_zeta_squared(
        self, bernoulli_population, enumerable_generator
    ):
        regime = IndependentSuites(enumerable_generator)
        joint = regime.joint_per_demand(
            bernoulli_population, bernoulli_population
        )
        assert joint[0] == pytest.approx(0.25**2)


class TestForcedTestingDiversity:
    def test_space_compatibility(self, profile):
        gen_a = OperationalSuiteGenerator(profile, 2)
        gen_b = OperationalSuiteGenerator(uniform_profile(DemandSpace(5)), 2)
        with pytest.raises(IncompatibleSpaceError):
            ForcedTestingDiversity(gen_a, gen_b)

    def test_draws_from_respective_generators(self, space, profile):
        gen_a = OperationalSuiteGenerator(profile, 2)
        gen_b = OperationalSuiteGenerator(profile, 5)
        regime = ForcedTestingDiversity(gen_a, gen_b)
        suite_a, suite_b = regime.draw_suites(np.random.default_rng(0))
        assert len(suite_a) == 2
        assert len(suite_b) == 5

    def test_joint_product_form(
        self, bernoulli_population, enumerable_generator, space, profile
    ):
        from repro.testing import EnumerableSuiteGenerator, TestSuite

        other = EnumerableSuiteGenerator(
            space, [TestSuite.of(space, [4])], [1.0]
        )
        regime = ForcedTestingDiversity(enumerable_generator, other)
        joint = regime.joint_per_demand(
            bernoulli_population, bernoulli_population
        )
        from repro.core import TestedPopulationView

        zeta_a = TestedPopulationView(
            bernoulli_population, enumerable_generator
        ).zeta()
        zeta_b = TestedPopulationView(bernoulli_population, other).zeta()
        np.testing.assert_allclose(joint, zeta_a * zeta_b)
