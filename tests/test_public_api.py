"""Tests of the public API surface: exports resolve and doctests run."""

import doctest
import importlib
import pkgutil

import pytest

import repro


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing {name!r}"

    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_subpackage_all_names_resolve(self):
        for module_name in (
            "repro.demand",
            "repro.faults",
            "repro.versions",
            "repro.populations",
            "repro.testing",
            "repro.core",
            "repro.analytic",
            "repro.mc",
            "repro.growth",
            "repro.extensions",
            "repro.experiments",
            "repro.store",
            "repro.sweeps",
            "repro.adaptive",
        ):
            module = importlib.import_module(module_name)
            for name in getattr(module, "__all__", []):
                assert hasattr(module, name), f"{module_name}.{name} missing"

    def test_every_module_importable(self):
        failures = []
        for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            if info.name.endswith("__main__"):
                continue
            try:
                importlib.import_module(info.name)
            except Exception as error:  # pragma: no cover - failure reporting
                failures.append((info.name, error))
        assert not failures, failures


DOCTEST_MODULES = [
    "repro",
    "repro.core.el",
    "repro.core.lm",
    "repro.demand.space",
    "repro.populations.bernoulli",
    "repro.extensions.stopping",
]


@pytest.mark.parametrize("module_name", DOCTEST_MODULES)
def test_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module_name}"
    assert results.attempted > 0, f"no doctests found in {module_name}"
