"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.demand import DemandSpace, UsageProfile, uniform_profile, zipf_profile
from repro.faults import FaultUniverse
from repro.populations import BernoulliFaultPopulation, FinitePopulation
from repro.testing import EnumerableSuiteGenerator, OperationalSuiteGenerator, TestSuite
from repro.versions import Version


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite the golden experiment snapshots "
        "(tests/experiments/golden/) instead of asserting against them",
    )


@pytest.fixture
def space() -> DemandSpace:
    """A small demand space shared by most unit tests."""
    return DemandSpace(10)


@pytest.fixture
def profile(space: DemandSpace) -> UsageProfile:
    """Uniform usage over the small space."""
    return uniform_profile(space)


@pytest.fixture
def skewed_profile(space: DemandSpace) -> UsageProfile:
    """Zipf usage over the small space."""
    return zipf_profile(space, exponent=1.0)


@pytest.fixture
def universe(space: DemandSpace) -> FaultUniverse:
    """Three faults with known, partially overlapping regions.

    fault 0: {0, 1}
    fault 1: {2, 3, 4}
    fault 2: {4, 5}
    Demand 4 is covered by faults 1 and 2; demands 6-9 by none.
    """
    return FaultUniverse.from_regions(space, [[0, 1], [2, 3, 4], [4, 5]])


@pytest.fixture
def bernoulli_population(universe: FaultUniverse) -> BernoulliFaultPopulation:
    """Bernoulli population with distinct per-fault probabilities."""
    return BernoulliFaultPopulation(universe, [0.5, 0.25, 0.4])


@pytest.fixture
def finite_population(universe: FaultUniverse) -> FinitePopulation:
    """A four-version finite population over the shared universe."""
    versions = [
        Version.correct(universe),
        Version(universe, np.array([0])),
        Version(universe, np.array([1, 2])),
        Version.with_all_faults(universe),
    ]
    return FinitePopulation(universe, versions, [0.4, 0.3, 0.2, 0.1])


@pytest.fixture
def enumerable_generator(space: DemandSpace) -> EnumerableSuiteGenerator:
    """Three explicitly enumerated suites with unequal probabilities."""
    suites = [
        TestSuite.of(space, [0]),
        TestSuite.of(space, [2, 4]),
        TestSuite.of(space, [7]),
    ]
    return EnumerableSuiteGenerator(space, suites, [0.5, 0.3, 0.2])


@pytest.fixture
def operational_generator(profile: UsageProfile) -> OperationalSuiteGenerator:
    """Operational suites of 4 i.i.d. demands."""
    return OperationalSuiteGenerator(profile, 4)


@pytest.fixture
def rng() -> np.random.Generator:
    """A fixed-seed generator for deterministic tests."""
    return np.random.default_rng(12345)
