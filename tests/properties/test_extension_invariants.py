"""Property-based tests for the §5 extension invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.demand import DemandSpace, uniform_profile
from repro.extensions import (
    ClarificationProcess,
    DevelopmentCampaign,
    MistakeActivity,
    SharedTestingActivity,
    SpecificationMistake,
    classical_pfd_upper_bound,
    clarification_effect,
    tests_needed_for_target,
)
from repro.faults import FaultUniverse
from repro.populations import BernoulliFaultPopulation
from repro.testing import OperationalSuiteGenerator
from repro.versions import Version


@st.composite
def small_models(draw):
    n_demands = draw(st.integers(min_value=4, max_value=12))
    space = DemandSpace(n_demands)
    n_faults = draw(st.integers(min_value=1, max_value=4))
    regions = []
    for _ in range(n_faults):
        region = draw(
            st.sets(
                st.integers(min_value=0, max_value=n_demands - 1),
                min_size=1,
                max_size=n_demands,
            )
        )
        regions.append(sorted(region))
    universe = FaultUniverse.from_regions(space, regions)
    probs = draw(
        st.lists(
            st.floats(min_value=0.05, max_value=0.95),
            min_size=n_faults,
            max_size=n_faults,
        )
    )
    return universe, BernoulliFaultPopulation(universe, np.array(probs))


class TestClarificationInvariants:
    @given(model=small_models(), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_penalty_never_negative_and_always_helps(self, model, data):
        """Shared clarifications cannot beat per-team ones (eq. (20)), and
        any clarification weakly improves on none."""
        universe, population = model
        space = universe.space
        n_regions = data.draw(st.integers(min_value=1, max_value=3))
        regions = []
        for _ in range(n_regions):
            region = data.draw(
                st.sets(
                    st.integers(min_value=0, max_value=space.size - 1),
                    min_size=1,
                    max_size=space.size,
                )
            )
            regions.append(sorted(region))
        mass = data.draw(st.floats(min_value=0.2, max_value=1.0))
        probabilities = [mass / n_regions] * n_regions
        process = ClarificationProcess(space, regions, probabilities)
        effect = clarification_effect(
            process, population, uniform_profile(space)
        )
        assert effect.dependence_penalty >= -1e-12
        assert effect.clarification_helps
        assert effect.per_team_pfd <= effect.untested_pfd + 1e-12

    @given(model=small_models())
    @settings(max_examples=30, deadline=None)
    def test_deterministic_clarification_zero_penalty(self, model):
        universe, population = model
        space = universe.space
        process = ClarificationProcess(space, [[0]], [1.0])
        effect = clarification_effect(
            process, population, uniform_profile(space)
        )
        assert abs(effect.dependence_penalty) <= 1e-12


class TestMistakeInvariants:
    @given(model=small_models(), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_mistake_raises_difficulty_everywhere_on_region(self, model, data):
        universe, population = model
        fault_id = data.draw(
            st.integers(min_value=0, max_value=len(universe) - 1)
        )
        mistake = SpecificationMistake((fault_id,))
        mistaken = mistake.apply_to(population)
        theta_before = population.difficulty()
        theta_after = mistaken.difficulty()
        region = universe[fault_id].mask
        assert np.all(theta_after >= theta_before - 1e-12)
        assert np.all(theta_after[region] == 1.0)

    @given(model=small_models(), data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_blind_testing_never_removes_mistake(self, model, data):
        universe, population = model
        space = universe.space
        fault_id = data.draw(
            st.integers(min_value=0, max_value=len(universe) - 1)
        )
        mistake = SpecificationMistake((fault_id,))
        seed = data.draw(st.integers(min_value=0, max_value=10**6))
        rng = np.random.default_rng(seed)
        version = mistake.apply_to(population).sample(rng)
        from repro.testing import TestSuite, apply_testing

        outcome = apply_testing(
            version,
            TestSuite(space, space.demands),
            mistake.blind_oracle(),
            mistake.blind_fixing(),
            rng=rng,
        )
        assert fault_id in outcome.after.fault_ids.tolist()


class TestCampaignInvariants:
    @given(model=small_models(), data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_only_mistakes_degrade(self, model, data):
        universe, population = model
        space = universe.space
        profile = uniform_profile(space)
        generator = OperationalSuiteGenerator(profile, 3)
        mistake_id = data.draw(
            st.integers(min_value=0, max_value=len(universe) - 1)
        )
        campaign = DevelopmentCampaign(
            [
                SharedTestingActivity(generator),
                MistakeActivity(SpecificationMistake((mistake_id,))),
                SharedTestingActivity(generator),
            ]
        )
        seed = data.draw(st.integers(min_value=0, max_value=10**6))
        rng = np.random.default_rng(seed)
        version_a = population.sample(rng)
        version_b = population.sample(rng)
        trajectory = campaign.run(version_a, version_b, profile, rng=seed)
        for step in trajectory.degrading_steps():
            assert step.kind == "common mistake"


class TestStoppingInvariants:
    @given(
        target=st.floats(min_value=1e-5, max_value=0.2),
        confidence=st.floats(min_value=0.5, max_value=0.999),
    )
    @settings(max_examples=60, deadline=None)
    def test_tests_needed_round_trip(self, target, confidence):
        n = tests_needed_for_target(target, confidence)
        assert classical_pfd_upper_bound(n, confidence) <= target + 1e-12
        if n > 1:
            assert classical_pfd_upper_bound(n - 1, confidence) > target
