"""Property-based tests (hypothesis) for the paper's core invariants.

Strategies build random small models — demand spaces, fault universes,
Bernoulli populations, suites — and check the inequalities and identities
that the paper derives for *all* models, not just the experiment scenarios:

* score monotonicity ``υ(π,x,∅) ≥ υ(π,x,t)``;
* ``θ(x) ≥ ξ(x,t) ≥ 0`` demand-wise;
* ``E[Θ²] ≥ E[Θ]²`` (EL inequality);
* same-suite joint ≥ independent-suite joint, per demand and marginally;
* closed-form ζ equals enumeration-based ζ on enumerable models;
* back-to-back detection nested across output models.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytic import BernoulliExactEngine
from repro.core import (
    ELModel,
    IndependentSuites,
    SameSuite,
    joint_failure_probability,
)
from repro.demand import DemandSpace, UsageProfile, uniform_profile
from repro.faults import FaultUniverse
from repro.populations import BernoulliFaultPopulation
from repro.testing import (
    EnumerableSuiteGenerator,
    TestSuite,
    apply_testing,
    back_to_back_testing,
    BackToBackComparator,
)
from repro.versions import (
    Version,
    optimistic_outputs,
    pessimistic_outputs,
    shared_fault_outputs,
)

MAX_DEMANDS = 12
MAX_FAULTS = 5


@st.composite
def fault_models(draw):
    """(universe, presence_probs) over a random small demand space."""
    n_demands = draw(st.integers(min_value=2, max_value=MAX_DEMANDS))
    space = DemandSpace(n_demands)
    n_faults = draw(st.integers(min_value=1, max_value=MAX_FAULTS))
    regions = []
    for _ in range(n_faults):
        region = draw(
            st.sets(
                st.integers(min_value=0, max_value=n_demands - 1),
                min_size=1,
                max_size=n_demands,
            )
        )
        regions.append(sorted(region))
    universe = FaultUniverse.from_regions(space, regions)
    probs = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0),
            min_size=n_faults,
            max_size=n_faults,
        )
    )
    return universe, np.array(probs)


@st.composite
def suites_for(draw, space_size: int):
    demands = draw(
        st.lists(
            st.integers(min_value=0, max_value=space_size - 1),
            min_size=0,
            max_size=space_size,
        )
    )
    return demands


@st.composite
def enumerable_models(draw):
    """(universe, population, generator) fully enumerable."""
    universe, probs = draw(fault_models())
    population = BernoulliFaultPopulation(universe, probs)
    space = universe.space
    n_suites = draw(st.integers(min_value=1, max_value=3))
    suites = []
    for _ in range(n_suites):
        demands = draw(suites_for(space.size))
        suites.append(TestSuite.of(space, demands))
    weights = draw(
        st.lists(
            st.floats(min_value=0.1, max_value=1.0),
            min_size=n_suites,
            max_size=n_suites,
        )
    )
    weight_array = np.array(weights)
    generator = EnumerableSuiteGenerator(
        space, suites, weight_array / weight_array.sum()
    )
    return universe, population, generator


class TestScoreMonotonicity:
    @given(model=fault_models(), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_testing_never_raises_a_score(self, model, data):
        universe, probs = model
        version = Version(
            universe, np.flatnonzero(probs > 0.5).astype(np.int64)
        )
        demands = data.draw(suites_for(universe.space.size))
        suite = TestSuite.of(universe.space, demands)
        outcome = apply_testing(version, suite)
        assert np.all(outcome.after.failure_mask <= version.failure_mask)

    @given(model=fault_models(), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_longer_suite_never_worse(self, model, data):
        universe, probs = model
        version = Version(
            universe, np.flatnonzero(probs > 0.3).astype(np.int64)
        )
        demands = data.draw(suites_for(universe.space.size))
        extra = data.draw(suites_for(universe.space.size))
        short = TestSuite.of(universe.space, demands)
        long = TestSuite.of(universe.space, demands + extra)
        after_short = apply_testing(version, short).after
        after_long = apply_testing(version, long).after
        assert np.all(after_long.failure_mask <= after_short.failure_mask)


class TestDifficultyInvariants:
    @given(model=fault_models(), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_xi_bounded_by_theta(self, model, data):
        universe, probs = model
        population = BernoulliFaultPopulation(universe, probs)
        theta = population.difficulty()
        demands = data.draw(suites_for(universe.space.size))
        xi = population.tested_difficulty(demands)
        assert np.all(xi >= -1e-15)
        assert np.all(xi <= theta + 1e-12)
        assert np.all(theta <= 1.0 + 1e-15)

    @given(model=fault_models())
    @settings(max_examples=60, deadline=None)
    def test_el_inequality(self, model):
        universe, probs = model
        population = BernoulliFaultPopulation(universe, probs)
        el = ELModel.from_population(
            population, uniform_profile(universe.space)
        )
        assert el.prob_both_fail() >= el.independence_prediction() - 1e-12

    @given(model=fault_models())
    @settings(max_examples=40, deadline=None)
    def test_difficulty_matches_enumeration(self, model):
        universe, probs = model
        population = BernoulliFaultPopulation(universe, probs)
        theta = np.zeros(universe.space.size)
        for version, probability in population.enumerate():
            theta += probability * version.failure_mask
        np.testing.assert_allclose(
            theta, population.difficulty(), atol=1e-10
        )


class TestRegimeOrdering:
    @given(model=enumerable_models())
    @settings(max_examples=40, deadline=None)
    def test_same_suite_dominates_independent(self, model):
        _universe, population, generator = model
        same = joint_failure_probability(SameSuite(generator), population)
        independent = joint_failure_probability(
            IndependentSuites(generator), population
        )
        assert np.all(same.joint >= independent.joint - 1e-12)

    @given(model=enumerable_models())
    @settings(max_examples=40, deadline=None)
    def test_joint_probabilities_valid(self, model):
        _universe, population, generator = model
        for regime in (SameSuite(generator), IndependentSuites(generator)):
            decomposition = joint_failure_probability(regime, population)
            assert np.all(decomposition.joint >= -1e-15)
            assert np.all(decomposition.joint <= 1.0 + 1e-15)

    @given(model=enumerable_models())
    @settings(max_examples=40, deadline=None)
    def test_variance_excess_identity(self, model):
        """Same-suite excess equals Var_T(xi) computed independently."""
        _universe, population, generator = model
        decomposition = joint_failure_probability(SameSuite(generator), population)
        zeta = np.zeros(population.space.size)
        second = np.zeros(population.space.size)
        for suite, probability in generator.enumerate():
            xi = population.tested_difficulty(suite.unique_demands)
            zeta += probability * xi
            second += probability * xi**2
        np.testing.assert_allclose(
            decomposition.excess, second - zeta**2, atol=1e-10
        )


class TestClosedFormAgainstEnumeration:
    @given(model=fault_models(), n_tests=st.integers(min_value=0, max_value=6))
    @settings(max_examples=30, deadline=None)
    def test_zeta_closed_form_matches_brute_force(self, model, n_tests):
        """Inclusion-exclusion zeta equals averaging xi over every possible
        i.i.d. suite (enumerated demand-by-demand via dynamic programming is
        overkill; use direct enumeration of suites for tiny spaces)."""
        universe, probs = model
        space = universe.space
        if space.size**n_tests > 3000:
            return  # keep enumeration tractable
        profile = uniform_profile(space)
        population = BernoulliFaultPopulation(universe, probs)
        engine = BernoulliExactEngine(universe, profile)
        closed = engine.zeta(population, n_tests)
        total = np.zeros(space.size)
        count = 0
        import itertools

        for combo in itertools.product(range(space.size), repeat=n_tests):
            total += population.tested_difficulty(list(set(combo)))
            count += 1
        np.testing.assert_allclose(closed, total / count, atol=1e-10)


class TestBackToBackNesting:
    @given(model=fault_models(), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_detection_nested_outcomes(self, model, data):
        """Post-test failure masks are ordered: optimistic <= shared-fault
        <= pessimistic (more detection, fewer residual failures)."""
        universe, probs = model
        rng = np.random.default_rng(data.draw(st.integers(0, 10**6)))
        version_a = Version(
            universe, np.flatnonzero(rng.random(len(universe)) < 0.5)
        )
        version_b = Version(
            universe, np.flatnonzero(rng.random(len(universe)) < 0.5)
        )
        demands = data.draw(suites_for(universe.space.size))
        suite = TestSuite.of(universe.space, demands)
        masks = {}
        for label, outputs in (
            ("optimistic", optimistic_outputs()),
            ("shared", shared_fault_outputs()),
            ("pessimistic", pessimistic_outputs()),
        ):
            outcome_a, outcome_b = back_to_back_testing(
                version_a, version_b, suite, BackToBackComparator(outputs)
            )
            masks[label] = (
                outcome_a.after.failure_mask,
                outcome_b.after.failure_mask,
            )
        for channel in (0, 1):
            assert np.all(
                masks["optimistic"][channel] <= masks["shared"][channel]
            )
            assert np.all(
                masks["shared"][channel] <= masks["pessimistic"][channel]
            )
