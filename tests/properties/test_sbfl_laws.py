"""Property-based tests (hypothesis) for the SBFL metric laws.

The suspiciousness metrics are pure functions of the per-component
spectrum quadruple, so a handful of algebraic laws must hold for *every*
spectrum, not just the experiment scenarios:

* permutation invariance — shuffling the tests never changes any score
  or the resulting ranking;
* single-fault agreement — when exactly the tests covering one component
  fail (and no other component is covered by a failing test), Ochiai and
  DStar both rank that component first;
* degenerate spectra — all-pass, all-fail and never-covered spectra
  produce finite scores for every metric;
* deterministic tie-break — equal scores rank by ascending component id,
  so a ranking is a pure function of the spectrum.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coverage.sbfl import (
    SBFL_METRICS,
    rank_components,
    spectrum_counts,
    suspiciousness,
    top_component,
)


@st.composite
def spectra(draw):
    """A random (failing, covered) spectrum: T tests over K components."""
    n_tests = draw(st.integers(min_value=1, max_value=12))
    n_components = draw(st.integers(min_value=1, max_value=6))
    failing = draw(
        st.lists(st.booleans(), min_size=n_tests, max_size=n_tests)
    )
    covered = draw(
        st.lists(
            st.lists(
                st.booleans(), min_size=n_components, max_size=n_components
            ),
            min_size=n_tests,
            max_size=n_tests,
        )
    )
    return np.array(failing, dtype=bool), np.array(covered, dtype=bool)


@settings(max_examples=200, deadline=None)
@given(spectra(), st.sampled_from(SBFL_METRICS), st.randoms(use_true_random=False))
def test_ranking_is_permutation_invariant(spectrum, metric, random):
    """Scores and rankings depend on the spectrum *set*, not test order."""
    failing, covered = spectrum
    order = list(range(len(failing)))
    random.shuffle(order)
    baseline = suspiciousness(metric, *spectrum_counts(failing, covered))
    shuffled = suspiciousness(
        metric, *spectrum_counts(failing[order], covered[order])
    )
    np.testing.assert_allclose(shuffled, baseline, rtol=1e-12, atol=0.0)
    assert np.array_equal(
        rank_components(shuffled), rank_components(baseline)
    )


@settings(max_examples=200, deadline=None)
@given(
    st.integers(min_value=2, max_value=6),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=0, max_value=4),
)
def test_ochiai_and_dstar_agree_on_single_fault_spectra(
    n_components, n_failing, n_passing
):
    """One component covered by every failing test and by no passing
    test (all other components only ever covered by passing tests):
    both metrics must put the faulty component first."""
    faulty = 0
    n_tests = n_failing + n_passing
    failing = np.arange(n_tests) < n_failing
    covered = np.zeros((n_tests, n_components), dtype=bool)
    covered[:n_failing, faulty] = True
    covered[n_failing:, 1:] = True
    counts = spectrum_counts(failing, covered)
    ochiai_rank = rank_components(suspiciousness("ochiai", *counts))
    dstar_rank = rank_components(suspiciousness("dstar", *counts))
    assert ochiai_rank[0] == faulty
    assert dstar_rank[0] == faulty
    assert top_component(suspiciousness("ochiai", *counts)) == faulty


@settings(max_examples=200, deadline=None)
@given(spectra(), st.sampled_from(SBFL_METRICS))
def test_scores_are_always_finite_and_nonnegative(spectrum, metric):
    failing, covered = spectrum
    scores = suspiciousness(metric, *spectrum_counts(failing, covered))
    assert np.all(np.isfinite(scores))
    assert np.all(scores >= 0.0)


@settings(max_examples=100, deadline=None)
@given(
    st.integers(min_value=1, max_value=10),
    st.integers(min_value=1, max_value=6),
    st.sampled_from(SBFL_METRICS),
    st.sampled_from(["all_pass", "all_fail", "never_covered"]),
)
def test_degenerate_spectra_stay_finite(n_tests, n_components, metric, kind):
    """The documented edge cases: no failing tests, no passing tests, a
    coverage matrix that never exercises anything."""
    failing = {
        "all_pass": np.zeros(n_tests, dtype=bool),
        "all_fail": np.ones(n_tests, dtype=bool),
        "never_covered": np.ones(n_tests, dtype=bool),
    }[kind]
    covered = (
        np.zeros((n_tests, n_components), dtype=bool)
        if kind == "never_covered"
        else np.ones((n_tests, n_components), dtype=bool)
    )
    scores = suspiciousness(metric, *spectrum_counts(failing, covered))
    assert np.all(np.isfinite(scores))


@settings(max_examples=200, deadline=None)
@given(
    st.lists(
        st.sampled_from([0.0, 0.25, 0.5, 1.0]), min_size=1, max_size=8
    )
)
def test_ties_break_to_the_lowest_component_id(scores):
    """Equal scores must rank by ascending id — the ranking is a pure
    function of the scores, with no hidden randomness."""
    ranking = rank_components(np.array(scores))
    assert sorted(ranking) == list(range(len(scores)))
    for left, right in zip(ranking, ranking[1:]):
        assert (scores[left], -left) > (scores[right], -right)
    assert top_component(np.array(scores)) == ranking[0]
