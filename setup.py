"""Legacy setup shim.

Kept so that ``pip install -e . --no-use-pep517`` works in offline
environments that lack the ``wheel`` package (PEP 660 editable installs
need to build a wheel; ``setup.py develop`` does not).  All project
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
