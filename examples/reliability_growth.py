"""Reliability growth of a 1-out-of-2 system under debugging.

Reproduces the study style of the paper's reference [5] (Djambazov &
Popov, ISSRE'95): version and system pfd as functions of testing effort,
under every regime, plus a staged-testing trace of one concrete version
pair — the practitioner's acceptance-campaign view.

Run:  python examples/reliability_growth.py

Catalog: the machinery behind experiment ``e14`` (docs/experiments.md).
"""

from __future__ import annotations

import numpy as np

import repro
from repro.growth import (
    diminishing_returns_holds,
    halving_effort,
    marginal_gains,
    run_staged_testing,
    system_growth_curves,
    version_growth_curve,
)


def main() -> None:
    space = repro.DemandSpace(120)
    profile = repro.uniform_profile(space)
    universe = repro.zipf_sized_universe(
        space, n_faults=15, max_region_size=24, exponent=1.0, rng=13
    )
    population = repro.BernoulliFaultPopulation.uniform(universe, 0.35)

    sizes = [0, 5, 10, 20, 40, 80, 160, 320]
    version = version_growth_curve(population, profile, sizes)
    systems = system_growth_curves(population, profile, sizes)

    print("exact growth curves (pfd per demand):\n")
    print(f"{'tests':>6}{'version':>12}{'1oo2 indep':>12}{'1oo2 common':>13}")
    for i, n in enumerate(sizes):
        print(
            f"{n:>6}{version.values[i]:>12.5f}"
            f"{systems['independent suites'].values[i]:>12.2e}"
            f"{systems['same suite'].values[i]:>13.2e}"
        )
    print(f"\nversion pfd halves by n = {halving_effort(version)} tests")
    print(
        "diminishing returns hold along the version curve: "
        f"{diminishing_returns_holds(version, tolerance=1e-9)}"
    )
    gains = marginal_gains(version)
    print(
        f"marginal gain per test: {gains[0]:.2e} (early) -> {gains[-1]:.2e} "
        "(late)"
    )

    # one concrete pair through four staged campaigns (shared suite)
    rng = np.random.default_rng(1)
    version_a = population.sample(rng)
    version_b = population.sample(rng)
    generator = repro.OperationalSuiteGenerator(profile, 30)
    stages = []
    for stage_rng in range(4):
        suite = generator.sample(np.random.default_rng(100 + stage_rng))
        stages.append((suite, suite))  # shared acceptance suite per stage
    trajectory = run_staged_testing(version_a, version_b, stages, profile)

    print("\none concrete pair, four shared 30-test campaigns:")
    print(
        f"{'stage':>6}{'pfd A':>10}{'pfd B':>10}{'system':>10}"
        f"{'faults A':>10}{'faults B':>10}{'found A':>9}{'found B':>9}"
    )
    for record in trajectory.records:
        print(
            f"{record.stage:>6}{record.pfd_a:>10.4f}{record.pfd_b:>10.4f}"
            f"{record.system_pfd:>10.4f}{record.faults_a:>10}"
            f"{record.faults_b:>10}{record.detected_a:>9}{record.detected_b:>9}"
        )
    print(f"\nmonotone improvement: {trajectory.is_monotone()}")


if __name__ == "__main__":
    main()
