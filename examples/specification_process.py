"""The specification process: clarifications, mistakes, and when to stop.

Exercises the §5 extensions end-to-end on one development story:

1. the project plans a two-channel system and asks how many operational
   tests would *demonstrate* its pfd target (stopping rules, ref. [3]);
2. during development an ambiguity is found — should the clarification be
   broadcast to both teams (cheap, but a shared event) or left to each
   team to rediscover (diverse, but risky)?
3. worse: suppose the broadcast instruction is *wrong* — a common mistake —
   and the acceptance oracle was written from the same document.

Run:  python examples/specification_process.py

Catalog: the machinery behind experiments ``x1``-``x3`` (docs/experiments.md).
"""

from __future__ import annotations

import repro
from repro.extensions import (
    ClarificationProcess,
    SpecificationMistake,
    clarification_effect,
    classical_pfd_upper_bound,
    mistake_effect,
    tests_needed_for_target,
)


def main() -> None:
    space = repro.DemandSpace(100)
    profile = repro.uniform_profile(space)
    universe = repro.clustered_universe(
        space, n_faults=16, region_size=5, concentration=5.0, rng=9
    )
    population = repro.BernoulliFaultPopulation.uniform(universe, 0.3)
    generator = repro.OperationalSuiteGenerator(profile, 40)

    # 1. how much testing would *demonstrate* the target?
    print("--- stopping rules (ref. [3] flavour) ---")
    for target in (1e-2, 1e-3, 1e-4):
        needed = tests_needed_for_target(target, confidence=0.90)
        print(
            f"to claim pfd < {target:g} at 90% confidence: "
            f"{needed} failure-free demands"
        )
    print(
        "after our 40-demand campaign, a failure-free run demonstrates only "
        f"pfd < {classical_pfd_upper_bound(40, 0.90):.3f} at 90%"
    )

    # 2. the clarification decision
    print("\n--- a discovered ambiguity: broadcast or not? ---")
    candidates = [list(range(10, 22)), list(range(55, 67))]
    process = ClarificationProcess(space, candidates, [0.5, 0.5])
    effect = clarification_effect(process, population, profile)
    print(f"no clarification:            system pfd = {effect.untested_pfd:.5f}")
    print(f"per-team rediscovery:        system pfd = {effect.per_team_pfd:.5f}")
    print(f"broadcast to both teams:     system pfd = {effect.shared_pfd:.5f}")
    print(
        f"dependence cost of the broadcast: {effect.dependence_penalty:.5f} "
        "(the eq. (20) penalty, exactly)"
    )

    # 3. the broadcast was wrong
    print("\n--- the instruction was wrong: a common mistake ---")
    mistake = SpecificationMistake((0,))
    outcome = mistake_effect(
        mistake, population, generator, profile, n_replications=200, rng=4
    )
    print(f"clean system, tested:                    {outcome.clean_pfd:.5f}")
    print(
        "with the mistake, independent oracle:    "
        f"{outcome.mistaken_correct_oracle_pfd:.5f}"
    )
    print(
        "with the mistake, oracle shares it:      "
        f"{outcome.mistaken_blind_oracle_pfd:.5f}"
    )
    print(
        f"common-mode floor Q(R_m):                {outcome.mistake_region_mass:.5f}"
    )
    print(
        "\nReading: a blind oracle turns the mistake into a permanent "
        "common-mode failure —\nno amount of shared acceptance testing gets "
        "the system below the floor.  Only an\nindependently written oracle "
        "(or a diverse specification review) removes it."
    )


if __name__ == "__main__":
    main()
