"""Forced design diversity: when do two methodologies beat independence?

Reproduces the LM-model story (paper eqs. (8)-(10)) and its testing
extension (eqs. (21), (24)-(25)) on a controllable family of models: two
development methodologies whose fault sets overlap by a chosen amount.
Shows the difficulty covariance crossing zero as the overlap is removed and
the fault placement made complementary — and what each case means for the
choice between common-suite and independent-suite testing.

Run:  python examples/forced_diversity.py

Catalog: the machinery behind experiments ``e02``/``e10`` (docs/experiments.md).
"""

from __future__ import annotations

import numpy as np

import repro
from repro.analytic import BernoulliExactEngine
from repro.core import LMModel
from repro.experiments.models import forced_design_scenario


def describe(label: str, scenario) -> None:
    model = LMModel.from_difficulties(
        scenario.population_a.difficulty(),
        scenario.population_b.difficulty(),
        scenario.profile,
    )
    engine = BernoulliExactEngine(scenario.universe, scenario.profile)
    n_tests = scenario.generator.size
    independent = engine.system_pfd_independent_suites(
        scenario.population_a, n_tests, scenario.population_b
    )
    common = engine.system_pfd_same_suite(
        scenario.population_a, n_tests, scenario.population_b
    )
    suite_cov = common - independent
    print(f"\n=== {label} ===")
    print(f"P(A fails) = {model.prob_fail_a():.4f}, P(B fails) = {model.prob_fail_b():.4f}")
    print(f"untested P(both fail)      = {model.prob_both_fail():.6f}")
    print(f"  independence prediction  = {model.independence_prediction():.6f}")
    print(f"  Cov(Theta_A, Theta_B)    = {model.covariance():+.6f}")
    verdict = "beats" if model.beats_independence() else "does not beat"
    print(f"  -> forced diversity {verdict} the independence benchmark")
    print(f"tested ({n_tests} tests): independent suites pfd = {independent:.2e}")
    print(f"tested ({n_tests} tests): common suite pfd       = {common:.2e}")
    print(f"  Sum Cov_T(xi_A, xi_B) Q  = {suite_cov:+.2e}")
    winner = "independent suites" if suite_cov > 0 else "the common suite"
    print(f"  -> the cheaper-to-run regime to prefer here: {winner}")


def main() -> None:
    describe(
        "identical methodologies (EL worst case)",
        forced_design_scenario(seed=3, n_shared=8, n_unique_each=0),
    )
    describe(
        "half the faults shared",
        forced_design_scenario(seed=3, n_shared=4, n_unique_each=4),
    )
    describe(
        "disjoint fault sets, scattered placement",
        forced_design_scenario(seed=3, n_shared=0, n_unique_each=8),
    )
    describe(
        "disjoint fault sets, complementary placement, skewed usage",
        forced_design_scenario(
            seed=3,
            n_shared=0,
            n_unique_each=8,
            disjoint_unique_regions=True,
            usage_zipf_exponent=1.2,
        ),
    )
    print(
        "\nSummary: the covariance terms — Cov(Theta_A, Theta_B) before "
        "testing and\nSum Cov_T(xi_A, xi_B) Q(x) under a shared campaign — "
        "are what forced diversity\nbuys or fails to buy.  Negative "
        "difficulty covariance needs methodologies whose\nhard demands are "
        "each other's easy demands, not merely different fault sets."
    )


if __name__ == "__main__":
    main()
