"""Acceptance testing of a 2-channel protection system (paper §3.3–3.4).

Scenario: a regulator requires a two-version protection system to pass a
common acceptance test suite before deployment — "acceptance testing for
fault-tolerant software, for instance, is based on the same test suite".
This script quantifies what that shared campaign does to the delivered
system, demand by demand and marginally, and how large the suite has to be
before the induced dependence dominates the residual failure probability.

Run:  python examples/acceptance_testing.py

Catalog: the machinery behind experiments ``e09``/``e13`` (docs/experiments.md).
"""

from __future__ import annotations

import numpy as np

import repro
from repro.analytic import BernoulliExactEngine


def main() -> None:
    space = repro.DemandSpace(150)
    profile = repro.uniform_profile(space)
    universe = repro.clustered_universe(
        space, n_faults=20, region_size=6, concentration=5.0, rng=7
    )
    population = repro.BernoulliFaultPopulation.uniform(universe, 0.3)
    engine = BernoulliExactEngine(universe, profile)

    print("acceptance campaign size vs delivered 1oo2 system pfd (exact):\n")
    header = (
        f"{'tests':>6}  {'channel pfd':>12}  {'indep suites':>13}  "
        f"{'common suite':>13}  {'dependence %':>13}"
    )
    print(header)
    print("-" * len(header))
    for n_tests in (0, 10, 25, 50, 100, 200, 400, 800):
        version = engine.version_pfd(population, n_tests)
        independent = engine.system_pfd_independent_suites(population, n_tests)
        common = engine.system_pfd_same_suite(population, n_tests)
        share = 100.0 * (common - independent) / common if common > 0 else 0.0
        print(
            f"{n_tests:>6}  {version:>12.6f}  {independent:>13.2e}  "
            f"{common:>13.2e}  {share:>12.1f}%"
        )

    print(
        "\nReading: both regimes improve with testing, but the common-suite "
        "system converges\ntowards being dominated by testing-induced "
        "dependence — the better tested the\nsystem, the larger the share "
        "of its residual risk that the shared campaign causes."
    )

    # where does the dependence live? the worst demands after a 100-test
    # campaign
    variance = engine.xi_variance(population, 100)
    zeta = engine.zeta(population, 100)
    worst = np.argsort(variance)[::-1][:5]
    print("\nworst demands after a 100-test campaign (eq. (20) per demand):")
    print(f"{'demand':>7}  {'zeta':>9}  {'zeta^2':>9}  {'Var_T(xi)':>10}  {'joint':>9}")
    for demand in worst:
        print(
            f"{int(demand):>7}  {zeta[demand]:>9.5f}  {zeta[demand]**2:>9.2e}  "
            f"{variance[demand]:>10.2e}  {zeta[demand]**2 + variance[demand]:>9.2e}"
        )


if __name__ == "__main__":
    main()
