"""Quickstart: build a diversity model and ask the paper's questions.

Walks the full modelling pipeline on a small synthetic system:

1. a demand space with an operational profile,
2. a fault universe (failure regions) and a version population,
3. the static EL quantities (difficulty, coincident-failure probability),
4. a testing process and the dynamic quantities (ζ, system pfd per regime).

Run:  python examples/quickstart.py

Catalog: docs/experiments.md maps every experiment id to its paper claim.
"""

from __future__ import annotations

import numpy as np

import repro


def main() -> None:
    # 1. the usage environment: 200 demands, heavy-tailed operational profile
    space = repro.DemandSpace(200)
    profile = repro.zipf_profile(space, exponent=0.8)

    # 2. faults cluster around anchor demands, versions draw faults i.i.d.
    universe = repro.clustered_universe(
        space, n_faults=25, region_size=6, concentration=6.0, rng=42
    )
    population = repro.BernoulliFaultPopulation.uniform(universe, 0.25)
    print(universe.describe())
    print(f"expected faults per version: {population.expected_fault_count():.1f}")

    # 3. the static Eckhardt-Lee view
    model = repro.ELModel.from_population(population, profile)
    print("\n--- untested (Eckhardt-Lee) ---")
    print(f"P(one version fails)            = {model.prob_fail():.4f}")
    print(f"P(both fail), actual            = {model.prob_both_fail():.4f}")
    print(f"P(both fail), naive independence= {model.independence_prediction():.4f}")
    print(
        "the independence assumption is optimistic by "
        f"{100 * model.independence_excess_ratio():.0f}% (Var(Theta) = "
        f"{model.variance():.5f})"
    )

    # 4. now let both versions be debugged with 100 operational tests
    generator = repro.OperationalSuiteGenerator(profile, 100)
    same_suite = repro.SameSuite(generator)
    independent = repro.IndependentSuites(generator)

    print("\n--- after testing (100 operational tests per channel) ---")
    for regime in (independent, same_suite):
        result = repro.marginal_system_pfd(
            regime, population, profile, n_suites=2000, rng=1
        )
        print(
            f"{regime.label:<20} system pfd = {result.system_pfd:.6f} "
            f"(channel pfd {result.pfd_a:.4f}, "
            f"suite-dependence term {result.suite_dependence:.6f})"
        )

    print(
        "\nSharing the test suite made the pair less reliable — the paper's "
        "eq. (23) penalty\nE_Q[Var_T(xi(X,T))] is the entire gap between the "
        "two lines above."
    )


if __name__ == "__main__":
    main()
