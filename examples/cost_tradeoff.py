"""The §3.4.1 cost trade-off: one long shared campaign or two short ones?

The paper sketches two budget extremes for testing a two-version system:

* test **generation** dominates the budget — then merge the two generated
  suites and run all of it on both versions (a 2n common campaign);
* test **execution** dominates — then each version can afford only n runs,
  and the question is whether they should share the suite.

This script prices both decisions across effort levels, exactly, and
locates where the diminishing returns squeeze the merged-campaign
advantage.

Run:  python examples/cost_tradeoff.py

Catalog: the machinery behind experiment ``e13`` (docs/experiments.md).
"""

from __future__ import annotations

import repro
from repro.analytic import BernoulliExactEngine


def main() -> None:
    space = repro.DemandSpace(150)
    profile = repro.uniform_profile(space)
    universe = repro.clustered_universe(
        space, n_faults=18, region_size=6, concentration=5.0, rng=5
    )
    population = repro.BernoulliFaultPopulation.uniform(universe, 0.3)
    engine = BernoulliExactEngine(universe, profile)

    print(
        "system pfd under three spending plans (generation cost = 2 suites "
        "in every row):\n"
    )
    header = (
        f"{'n':>5}  {'two indep n-suites':>19}  {'common n-suite':>15}  "
        f"{'merged common 2n':>17}  {'merged advantage':>17}"
    )
    print(header)
    print("-" * len(header))
    for n in (5, 10, 20, 40, 80, 160, 320):
        independent_n = engine.system_pfd_independent_suites(population, n)
        same_n = engine.system_pfd_same_suite(population, n)
        same_2n = engine.system_pfd_same_suite(population, 2 * n)
        advantage = independent_n - same_2n
        print(
            f"{n:>5}  {independent_n:>19.3e}  {same_n:>15.3e}  "
            f"{same_2n:>17.3e}  {advantage:>17.3e}"
        )

    print(
        "\nReading:\n"
        "* equal execution budget (column 2 vs 3): independent suites "
        "always win —\n  sharing the campaign only adds dependence "
        "(eq. (23)).\n"
        "* equal generation budget (column 2 vs 4): running the merged "
        "double-length\n  campaign on both versions wins despite the "
        "dependence it induces — more\n  faults removed beats diversity "
        "preserved, exactly as §3.4.1 argues.\n"
        "* the merged advantage shrinks with n (last column): the law of "
        "diminishing\n  returns — once the versions are reliable, the "
        "second half of the long\n  campaign finds almost nothing, and the "
        "two plans converge."
    )


if __name__ == "__main__":
    main()
