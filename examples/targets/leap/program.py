"""Calendar arithmetic — leap years, month lengths, day-of-year.

A mutation-campaign corpus target: modular arithmetic and boundary
comparisons give the AST mutator plenty of off-by-one opportunities.
"""

_MONTH_DAYS = (31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31)


def is_leap(year):
    """Gregorian leap-year rule."""
    if year % 400 == 0:
        return True
    if year % 100 == 0:
        return False
    return year % 4 == 0


def days_in_month(year, month):
    """Number of days in ``month`` (1-12) of ``year``."""
    if month < 1 or month > 12:
        raise ValueError("month out of range")
    days = _MONTH_DAYS[month - 1]
    if month == 2 and is_leap(year):
        days = days + 1
    return days


def day_of_year(year, month, day):
    """Ordinal day number (1-366) of a calendar date."""
    if day < 1 or day > days_in_month(year, month):
        raise ValueError("day out of range")
    total = day
    for earlier in range(1, month):
        total = total + days_in_month(year, earlier)
    return total


def days_in_year(year):
    """365 or 366."""
    if is_leap(year):
        return 366
    return 365
