"""Test suite the mutation campaign runs against the calendar target."""

import pytest

from program import day_of_year, days_in_month, days_in_year, is_leap


def test_leap_divisible_by_four():
    assert is_leap(2024)
    assert not is_leap(2023)


def test_century_rule():
    assert not is_leap(1900)
    assert is_leap(2000)


def test_february_lengths():
    assert days_in_month(2023, 2) == 28
    assert days_in_month(2024, 2) == 29


def test_month_lengths_non_february():
    assert days_in_month(2023, 1) == 31
    assert days_in_month(2023, 4) == 30
    assert days_in_month(2023, 12) == 31


def test_month_out_of_range():
    with pytest.raises(ValueError):
        days_in_month(2023, 0)
    with pytest.raises(ValueError):
        days_in_month(2023, 13)


def test_day_of_year_january():
    assert day_of_year(2023, 1, 1) == 1
    assert day_of_year(2023, 1, 31) == 31


def test_day_of_year_crosses_february():
    assert day_of_year(2023, 3, 1) == 60
    assert day_of_year(2024, 3, 1) == 61


def test_day_of_year_end_of_year():
    assert day_of_year(2023, 12, 31) == 365
    assert day_of_year(2024, 12, 31) == 366


def test_day_out_of_range():
    with pytest.raises(ValueError):
        day_of_year(2023, 2, 29)
    with pytest.raises(ValueError):
        day_of_year(2023, 1, 0)


def test_days_in_year():
    assert days_in_year(2023) == 365
    assert days_in_year(2024) == 366
