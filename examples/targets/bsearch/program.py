"""Binary search over a sorted list — loop-bound mutation territory.

A mutation-campaign corpus target.  The ``lo < hi`` loop guards are the
interesting sites: several of their mutants loop forever, which is how the
campaign runner's per-mutant timeout path gets exercised by real data.
"""


def insertion_index(items, value):
    """Leftmost index where ``value`` can be inserted keeping order."""
    lo = 0
    hi = len(items)
    while lo < hi:
        mid = (lo + hi) // 2
        if items[mid] < value:
            lo = mid + 1
        else:
            hi = mid
    return lo


def find(items, value):
    """Index of ``value`` in sorted ``items``, or -1."""
    index = insertion_index(items, value)
    if index < len(items) and items[index] == value:
        return index
    return -1


def contains(items, value):
    """True iff ``value`` occurs in sorted ``items``."""
    return find(items, value) >= 0


def count_occurrences(items, value):
    """How many times ``value`` occurs in sorted ``items``."""
    first = insertion_index(items, value)
    last = first
    while last < len(items) and items[last] == value:
        last = last + 1
    return last - first
