"""Test suite the mutation campaign runs against the binary-search target."""

from program import contains, count_occurrences, find, insertion_index


def test_insertion_index_empty():
    assert insertion_index([], 5) == 0


def test_insertion_index_front_and_back():
    assert insertion_index([2, 4, 6], 1) == 0
    assert insertion_index([2, 4, 6], 7) == 3


def test_insertion_index_between():
    assert insertion_index([2, 4, 6], 3) == 1
    assert insertion_index([2, 4, 6], 5) == 2


def test_insertion_index_is_leftmost_on_ties():
    assert insertion_index([1, 3, 3, 3, 9], 3) == 1


def test_find_present():
    assert find([1, 3, 5, 7], 1) == 0
    assert find([1, 3, 5, 7], 7) == 3
    assert find([1, 3, 5, 7], 5) == 2


def test_find_absent():
    assert find([1, 3, 5, 7], 4) == -1
    assert find([], 4) == -1


def test_contains():
    assert contains([1, 2, 3], 2)
    assert not contains([1, 2, 3], 0)


def test_count_occurrences():
    assert count_occurrences([1, 3, 3, 3, 9], 3) == 3
    assert count_occurrences([1, 3, 3, 3, 9], 9) == 1
    assert count_occurrences([1, 3, 3, 3, 9], 2) == 0


def test_count_occurrences_whole_list():
    assert count_occurrences([4, 4, 4], 4) == 3
