"""Test suite the mutation campaign runs against the statistics target."""

import pytest

from program import mean, median, value_range, variance


def test_mean_basic():
    assert mean([1, 2, 3, 4]) == 2.5
    assert mean([7]) == 7


def test_mean_empty_rejected():
    with pytest.raises(ValueError):
        mean([])


def test_variance_known_value():
    assert variance([2, 4, 4, 4, 5, 5, 7, 9]) == pytest.approx(32 / 7)


def test_variance_constant_sequence_is_zero():
    assert variance([3, 3, 3]) == 0


def test_variance_needs_two_values():
    with pytest.raises(ValueError):
        variance([1])


def test_median_odd():
    assert median([5, 1, 3]) == 3


def test_median_even_averages_middle_pair():
    assert median([4, 1, 3, 2]) == 2.5


def test_median_single():
    assert median([9]) == 9


def test_median_empty_rejected():
    with pytest.raises(ValueError):
        median([])


def test_value_range():
    assert value_range([3, 9, 4]) == 6
    assert value_range([5]) == 0


def test_value_range_empty_rejected():
    with pytest.raises(ValueError):
        value_range([])
