"""Streaming descriptive statistics — arithmetic-dense corpus target.

A mutation-campaign corpus target: means, sample variance and medians are
built from small arithmetic expressions where most operator mutants are
observably wrong (and a few are classically equivalent, so the target also
feeds the surviving-mutant tail of the measured distribution).
"""


def mean(values):
    """Arithmetic mean of a non-empty sequence."""
    if not values:
        raise ValueError("mean of empty sequence")
    total = 0.0
    for value in values:
        total = total + value
    return total / len(values)


def variance(values):
    """Unbiased sample variance (n - 1 denominator); needs >= 2 values."""
    if len(values) < 2:
        raise ValueError("variance needs at least two values")
    center = mean(values)
    total = 0.0
    for value in values:
        deviation = value - center
        total = total + deviation * deviation
    return total / (len(values) - 1)


def median(values):
    """Median of a non-empty sequence (average of the middle pair)."""
    if not values:
        raise ValueError("median of empty sequence")
    ordered = sorted(values)
    middle = len(ordered) // 2
    if len(ordered) % 2 == 1:
        return ordered[middle]
    return (ordered[middle - 1] + ordered[middle]) / 2


def value_range(values):
    """max - min of a non-empty sequence."""
    if not values:
        raise ValueError("range of empty sequence")
    return max(values) - min(values)
