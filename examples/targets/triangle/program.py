"""Triangle classification — the classic mutation-testing target.

A corpus program for the mutation campaign harness (`repro.mutation`):
small, pure, branch-heavy, with arithmetic and comparison operators that
the AST mutator can rewrite.  `test_program.py` next to it is the suite
the campaign measures kill rates against.
"""


def classify(a, b, c):
    """Classify a triangle by its side lengths.

    Returns one of ``"invalid"``, ``"equilateral"``, ``"isosceles"`` or
    ``"scalene"``.  A triangle is invalid when any side is non-positive or
    the triangle inequality fails.
    """
    sides = sorted((a, b, c))
    if sides[0] <= 0:
        return "invalid"
    if sides[0] + sides[1] <= sides[2]:
        return "invalid"
    if a == b and b == c:
        return "equilateral"
    if a == b or b == c or a == c:
        return "isosceles"
    return "scalene"


def perimeter(a, b, c):
    """Perimeter of a valid triangle; raises ValueError otherwise."""
    if classify(a, b, c) == "invalid":
        raise ValueError("not a triangle")
    return a + b + c


def is_right(a, b, c):
    """True iff the (valid) triangle is right-angled (Pythagoras)."""
    if classify(a, b, c) == "invalid":
        return False
    x, y, z = sorted((a, b, c))
    return x * x + y * y == z * z
