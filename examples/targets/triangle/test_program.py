"""Test suite the mutation campaign runs against the triangle target."""

import pytest

from program import classify, is_right, perimeter


def test_equilateral():
    assert classify(3, 3, 3) == "equilateral"


def test_isosceles_each_pair():
    assert classify(3, 3, 2) == "isosceles"
    assert classify(2, 3, 3) == "isosceles"
    assert classify(3, 2, 3) == "isosceles"


def test_scalene():
    assert classify(4, 5, 6) == "scalene"


def test_zero_and_negative_sides_invalid():
    assert classify(0, 3, 3) == "invalid"
    assert classify(-1, 3, 3) == "invalid"


def test_triangle_inequality_boundary():
    assert classify(1, 2, 3) == "invalid"  # degenerate: a + b == c
    assert classify(2, 2, 3) == "isosceles"


def test_inequality_applies_to_largest_side():
    assert classify(10, 2, 3) == "invalid"


def test_perimeter_of_valid_triangle():
    assert perimeter(3, 4, 5) == 12


def test_perimeter_rejects_invalid():
    with pytest.raises(ValueError):
        perimeter(1, 1, 5)


def test_right_triangle():
    assert is_right(3, 4, 5)
    assert is_right(5, 4, 3)


def test_not_right_triangle():
    assert not is_right(3, 4, 6)


def test_right_rejects_invalid():
    assert not is_right(0, 4, 5)
