"""Back-to-back testing: what cross-checking buys and what it cannot see.

Paper §4.2: back-to-back testing needs no oracle — the two versions *are*
each other's oracle — but coincident identical failures are invisible to
it.  This script traces a version pair through increasing back-to-back
campaigns under the three output models (optimistic / shared-fault /
pessimistic) and shows the §4.2 envelope: version reliability always
improves, while system reliability improvement depends entirely on whether
coincident failures are distinguishable.

Run:  python examples/back_to_back.py

Catalog: the machinery behind experiment ``e12`` (docs/experiments.md).
"""

from __future__ import annotations

import numpy as np

import repro
from repro.core.bounds import back_to_back_envelope
from repro.growth import back_to_back_growth_curves


def main() -> None:
    space = repro.DemandSpace(120)
    profile = repro.uniform_profile(space)
    universe = repro.zipf_sized_universe(
        space, n_faults=15, max_region_size=20, exponent=1.0, rng=11
    )
    population = repro.BernoulliFaultPopulation.uniform(universe, 0.35)

    # the envelope at one campaign size
    generator = repro.OperationalSuiteGenerator(profile, 60)
    envelope = back_to_back_envelope(
        population, generator, profile, n_replications=300, rng=1
    )
    print("back-to-back testing, 60-test campaign (300 simulated pairs):\n")
    rows = [
        ("untested", envelope.untested_system_pfd, envelope.untested_version_pfd),
        ("pessimistic outputs", envelope.pessimistic_system_pfd,
         envelope.pessimistic_version_pfd),
        ("shared-fault outputs", envelope.shared_fault_system_pfd,
         envelope.shared_fault_version_pfd),
        ("optimistic outputs", envelope.optimistic_system_pfd,
         envelope.optimistic_version_pfd),
        ("perfect oracle (reference)", envelope.perfect_system_pfd, float("nan")),
    ]
    print(f"{'configuration':<28}{'system pfd':>12}{'version pfd':>13}")
    for label, system, version in rows:
        print(f"{label:<28}{system:>12.5f}{version:>13.5f}")
    print(
        f"\noptimistic == perfect oracle: {envelope.optimistic_matches_perfect} "
        "(coincident failures always mismatch)"
    )

    # growth curves: how the gap evolves with campaign size
    sizes = [0, 10, 25, 50, 100, 200]
    print("\nsystem pfd vs campaign size (shared-fault output model):")
    curves = back_to_back_growth_curves(
        population,
        profile,
        sizes,
        repro.shared_fault_outputs(),
        n_replications=150,
        rng=2,
    )
    pess = back_to_back_growth_curves(
        population,
        profile,
        sizes,
        repro.pessimistic_outputs(),
        n_replications=150,
        rng=2,
    )
    print(f"{'tests':>6}{'shared-fault':>14}{'pessimistic':>13}")
    for i, n in enumerate(sizes):
        print(
            f"{n:>6}{curves['system'].values[i]:>14.5f}"
            f"{pess['system'].values[i]:>13.5f}"
        )
    print(
        "\nReading: under the pessimistic model the system curve flattens "
        "well above zero —\nfaults the channels share produce identical "
        "wrong answers, and no amount of\ncross-checking will ever flag "
        "them.  That residue is exactly the coincident-\nfailure "
        "probability the earlier models quantify."
    )


if __name__ == "__main__":
    main()
